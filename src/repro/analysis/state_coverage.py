"""State-coverage inference from packet traces (the PRETT substitute).

The paper measures state coverage "by analyzing the packet trace captured
using PRETT" (§IV.D) — a protocol reverse-engineering tool that infers
which protocol states the target traversed from the message sequences on
the wire. This module reimplements that inference for L2CAP: it replays a
fuzzer-side trace through a reference model of a Bluetooth 5.2 acceptor
and collects every state the target can be shown to have entered.

The inference is deliberately wire-only: it uses no access to the virtual
device's internals, so it measures exactly what PRETT measures. Tests
cross-check it against the device's ground-truth state history.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.analysis.sniffer import Direction
from repro.l2cap.constants import (
    CommandCode,
    ConfigResult,
    ConnectionResult,
)
from repro.l2cap.states import ChannelState

if TYPE_CHECKING:
    from repro.analysis.sniffer import PacketSniffer, TracedPacket


@dataclasses.dataclass
class _MirrorChannel:
    """Wire-inferred mirror of one target channel."""

    target_cid: int
    our_cid: int
    state: ChannelState
    target_config_requested: bool = False
    target_config_done: bool = False
    our_config_done: bool = False


class StateCoverageAnalyzer:
    """Infers the set of target L2CAP states exercised by a trace."""

    def __init__(self) -> None:
        self.visited: set[ChannelState] = {ChannelState.CLOSED}
        self._channels: dict[int, _MirrorChannel] = {}  # keyed by target CID
        self._our_cid_index: dict[int, _MirrorChannel] = {}
        self._pending_connects: dict[int, tuple[int, bool]] = {}  # id -> (scid, is_create)
        self._pending_moves: dict[int, int] = {}  # identifier -> icid
        self._target_disconnect_scids: set[int] = set()

    # -- public -----------------------------------------------------------------

    def feed(self, entry: TracedPacket) -> None:
        """Consume one trace entry in order."""
        if entry.direction is Direction.SENT:
            self._on_sent(entry.packet)
        else:
            self._on_received(entry.packet)

    def observe_sent(self, packet) -> None:
        """Streaming entry point: one fuzzer→target packet, in order."""
        self._on_sent(packet)

    def observe_received(self, packet) -> None:
        """Streaming entry point: one target→fuzzer packet, in order."""
        self._on_received(packet)

    def analyze(self, sniffer: PacketSniffer) -> frozenset[ChannelState]:
        """Replay a whole sniffer trace and return the states covered."""
        sniffer.require_trace("StateCoverageAnalyzer.analyze()")
        for entry in sniffer.trace:
            self.feed(entry)
        return self.coverage()

    def coverage(self) -> frozenset[ChannelState]:
        """States the target demonstrably entered."""
        return frozenset(self.visited)

    @property
    def coverage_count(self) -> int:
        """Number of covered states (the Fig. 10 bar heights)."""
        return len(self.visited)

    # -- sent-side inference -------------------------------------------------------

    def _on_sent(self, packet) -> None:
        # Dispatch through a value-keyed table: most fuzz packets touch
        # no inference rule, and one dict miss beats seven comparisons.
        handler = self._SENT_HANDLERS.get(packet.code)
        if handler is not None:
            handler(self, packet)

    def _sent_connection_req(self, packet) -> None:
        self._pending_connects[packet.identifier] = (
            packet.fields.get("scid", 0),
            False,
        )

    def _sent_create_channel_req(self, packet) -> None:
        self._pending_connects[packet.identifier] = (
            packet.fields.get("scid", 0),
            True,
        )

    def _sent_config_req(self, packet) -> None:
        channel = self._channels.get(packet.fields.get("dcid", 0))
        if channel is not None and channel.state in (
            ChannelState.WAIT_CONFIG,
            ChannelState.WAIT_CONFIG_REQ_RSP,
        ):
            if not channel.target_config_requested:
                # Target received our config req before sending its own:
                # it must pass through WAIT_SEND_CONFIG to emit it.
                self.visited.add(ChannelState.WAIT_SEND_CONFIG)

    def _sent_move_req(self, packet) -> None:
        self._pending_moves[packet.identifier] = packet.fields.get("icid", 0)

    def _sent_disconnection_rsp(self, packet) -> None:
        scid = packet.fields.get("dcid", 0)
        if scid in self._target_disconnect_scids:
            self._target_disconnect_scids.discard(scid)
            self._drop_by_target_cid(scid)
            self.visited.add(ChannelState.CLOSED)

    def _on_sent_config_rsp(self, packet) -> None:
        """Our response to the target's own Configuration Request."""
        channel = self._our_cid_lookup_for_config_rsp(packet)
        if channel is None:
            return
        result = packet.fields.get("result", 0)
        if result == ConfigResult.PENDING:
            self.visited.add(ChannelState.WAIT_IND_FINAL_RSP)
            channel.state = ChannelState.WAIT_IND_FINAL_RSP
        elif result in (ConfigResult.REJECTED, ConfigResult.UNACCEPTABLE_PARAMETERS):
            pass  # the target may now initiate disconnect; seen on receive
        else:
            channel.target_config_done = True
            if not channel.our_config_done:
                # The target's own request is fully answered; it now waits
                # for ours (Core 5.2: WAIT_CONFIG_REQ).
                self.visited.add(ChannelState.WAIT_CONFIG_REQ)
                channel.state = ChannelState.WAIT_CONFIG_REQ
            self._maybe_open(channel)

    def _our_cid_lookup_for_config_rsp(self, packet) -> _MirrorChannel | None:
        # In our CONFIG_RSP the scid field names the *target's* source CID.
        return self._channels.get(packet.fields.get("scid", 0))

    # -- received-side inference -----------------------------------------------------

    def _on_received(self, packet) -> None:
        handler = self._RECEIVED_HANDLERS.get(packet.code)
        if handler is not None:
            handler(self, packet)

    def _received_disconnection_req(self, packet) -> None:
        # Target-initiated disconnect: it is now in WAIT_DISCONNECT.
        self.visited.add(ChannelState.WAIT_DISCONNECT)
        self._target_disconnect_scids.add(packet.fields.get("scid", 0))

    def _received_disconnection_rsp(self, packet) -> None:
        self._drop_by_target_cid(packet.fields.get("dcid", 0))
        self.visited.add(ChannelState.CLOSED)

    def _received_move_confirmation_rsp(self, packet) -> None:
        channel = self._channels.get(packet.fields.get("icid", 0))
        if channel is not None and channel.state is ChannelState.WAIT_MOVE_CONFIRM:
            channel.state = ChannelState.OPEN
            self.visited.add(ChannelState.OPEN)

    def _on_received_connection_rsp(self, packet) -> None:
        pending = self._pending_connects.pop(packet.identifier, None)
        if pending is None:
            return
        our_cid, is_create = pending
        if packet.fields.get("result") != ConnectionResult.SUCCESS:
            return
        target_cid = packet.fields.get("dcid", 0)
        # A successful accept proves the target sat in its passive-open
        # state (WAIT_CONNECT / WAIT_CREATE, paper Table II) and moved on
        # to WAIT_CONFIG.
        self.visited.add(
            ChannelState.WAIT_CREATE if is_create else ChannelState.WAIT_CONNECT
        )
        self.visited.add(ChannelState.WAIT_CONFIG)
        channel = _MirrorChannel(
            target_cid=target_cid, our_cid=our_cid, state=ChannelState.WAIT_CONFIG
        )
        self._channels[target_cid] = channel
        self._our_cid_index[our_cid] = channel

    def _on_received_config_req(self, packet) -> None:
        """The target sent its own Configuration Request."""
        channel = self._our_cid_index.get(packet.fields.get("dcid", 0))
        if channel is None:
            return
        channel.target_config_requested = True
        if not channel.our_config_done and not channel.target_config_done:
            # Target asked before anything completed: it waits for both
            # our request and our response.
            self.visited.add(ChannelState.WAIT_CONFIG_REQ_RSP)
            channel.state = ChannelState.WAIT_CONFIG_REQ_RSP
        elif channel.our_config_done:
            self.visited.add(ChannelState.WAIT_CONFIG_RSP)
            channel.state = ChannelState.WAIT_CONFIG_RSP

    def _on_received_config_rsp(self, packet) -> None:
        """The target answered our Configuration Request."""
        channel = self._channels.get(packet.fields.get("scid", 0))
        if channel is None:
            # The scid in the target's response names *our* CID.
            channel = self._our_cid_index.get(packet.fields.get("scid", 0))
        if channel is None:
            return
        if packet.fields.get("result") == ConfigResult.SUCCESS:
            channel.our_config_done = True
            if not channel.target_config_done and channel.target_config_requested:
                # The target answered us but its own request is pending:
                # it waits for our response (WAIT_CONFIG_RSP).
                self.visited.add(ChannelState.WAIT_CONFIG_RSP)
                channel.state = ChannelState.WAIT_CONFIG_RSP
            self._maybe_open(channel)

    def _on_received_move_rsp(self, packet) -> None:
        icid = self._pending_moves.pop(packet.identifier, None)
        if icid is None:
            return
        if packet.fields.get("result") == 0:  # success
            self.visited.add(ChannelState.WAIT_MOVE)
            self.visited.add(ChannelState.WAIT_MOVE_CONFIRM)
            channel = self._channels.get(icid)
            if channel is not None:
                channel.state = ChannelState.WAIT_MOVE_CONFIRM

    # -- shared ------------------------------------------------------------------

    def _maybe_open(self, channel: _MirrorChannel) -> None:
        if channel.our_config_done and channel.target_config_done:
            channel.state = ChannelState.OPEN
            self.visited.add(ChannelState.OPEN)

    def _drop_by_target_cid(self, target_cid: int) -> None:
        channel = self._channels.pop(target_cid, None)
        if channel is not None:
            self._our_cid_index.pop(channel.our_cid, None)


#: Inference rules keyed by command-code value, resolved once.
StateCoverageAnalyzer._SENT_HANDLERS = {
    int(CommandCode.CONNECTION_REQ): StateCoverageAnalyzer._sent_connection_req,
    int(CommandCode.CREATE_CHANNEL_REQ): StateCoverageAnalyzer._sent_create_channel_req,
    int(CommandCode.CONFIGURATION_REQ): StateCoverageAnalyzer._sent_config_req,
    int(CommandCode.CONFIGURATION_RSP): StateCoverageAnalyzer._on_sent_config_rsp,
    int(CommandCode.MOVE_CHANNEL_REQ): StateCoverageAnalyzer._sent_move_req,
    int(CommandCode.DISCONNECTION_RSP): StateCoverageAnalyzer._sent_disconnection_rsp,
}

StateCoverageAnalyzer._RECEIVED_HANDLERS = {
    int(CommandCode.CONNECTION_RSP): StateCoverageAnalyzer._on_received_connection_rsp,
    int(CommandCode.CREATE_CHANNEL_RSP): (
        StateCoverageAnalyzer._on_received_connection_rsp
    ),
    int(CommandCode.CONFIGURATION_REQ): StateCoverageAnalyzer._on_received_config_req,
    int(CommandCode.CONFIGURATION_RSP): StateCoverageAnalyzer._on_received_config_rsp,
    int(CommandCode.DISCONNECTION_REQ): (
        StateCoverageAnalyzer._received_disconnection_req
    ),
    int(CommandCode.DISCONNECTION_RSP): (
        StateCoverageAnalyzer._received_disconnection_rsp
    ),
    int(CommandCode.MOVE_CHANNEL_RSP): StateCoverageAnalyzer._on_received_move_rsp,
    int(CommandCode.MOVE_CHANNEL_CONFIRMATION_RSP): (
        StateCoverageAnalyzer._received_move_confirmation_rsp
    ),
}


def state_coverage(sniffer: PacketSniffer) -> frozenset[ChannelState]:
    """One-shot helper: the covered states inferred from a sniffer.

    Reads the sniffer's streaming analyzer (fed at observe time), so it
    is O(1) at report time and works whether or not the per-packet trace
    was retained. Identical to replaying the trace: the stream sees the
    same packets in the same order.
    """
    return sniffer.coverage()


def packets_to_coverage(sniffer: PacketSniffer, target_count: int) -> int | None:
    """Transmitted packets until the stream demonstrates *target_count* states.

    Returns the number of fuzzer→target packets on the wire when the
    wire-inferred coverage first reached *target_count* — the
    packets-to-coverage metric the corpus feedback benchmark compares
    schedulers on. None when the campaign never got there. Served from
    the sniffer's streamed coverage-unlock log, so it needs no retained
    trace.
    """
    if target_count <= 1:
        # The analyzer starts with CLOSED covered, so the first
        # observation of any direction already demonstrates the target —
        # mirroring the historical replay, which returned the sent-count
        # after the first trace entry.
        return sniffer.first_observation_sent
    for count, sent in sniffer.coverage_unlocks:
        if count >= target_count:
            return sent
    return None


def coverage_report(covered: frozenset, universe=None) -> dict:
    """Summarise coverage the way Fig. 10 / Fig. 11 present it.

    :param universe: the full state space the coverage is measured
        against; defaults to the 19 L2CAP channel states. Pass a
        protocol target's ``state_universe()`` for non-L2CAP campaigns.
    """
    if universe is None:
        universe = tuple(ChannelState)
    return {
        "count": len(covered),
        "total": len(universe),
        "states": sorted(state.value for state in covered),
        "missing": sorted(
            state.value for state in universe if state not in covered
        ),
    }
