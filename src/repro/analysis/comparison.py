"""Four-fuzzer comparison harness (paper §IV.C and §IV.D).

Runs L2Fuzz, Defensics, BFuzz and BSS against the same target under the
paper's controlled conditions — the D2 reference phone, a fixed budget of
transmitted packets, bugs disarmed so the run is not cut short (the paper
measured ratios and detection in separate experiments) — and derives from
each packet trace:

* Table VII — MP Ratio, PR Ratio, mutation efficiency and pps;
* Fig. 8 — cumulative malformed packets vs transmitted;
* Fig. 9 — cumulative rejections vs received;
* Fig. 10 / Fig. 11 — state-coverage counts and per-state maps.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.metrics import (
    CumulativePoint,
    MutationEfficiency,
    measure,
    mp_curve,
    pr_curve,
)
from repro.analysis.sniffer import PacketSniffer
from repro.analysis.state_coverage import state_coverage
from repro.baselines.base import BaselineFuzzer
from repro.baselines.bfuzz import BfuzzFuzzer
from repro.baselines.bss import BssFuzzer
from repro.baselines.defensics import DefensicsFuzzer
from repro.core.config import FuzzConfig
from repro.core.packet_queue import PacketQueue
from repro.hci.transport import SimClock, VirtualLink
from repro.l2cap.states import ChannelState
from repro.testbed.profiles import D2, DeviceProfile
from repro.testbed.session import FuzzSession, L2FUZZ_PPS


@dataclasses.dataclass(frozen=True)
class FuzzerRunResult:
    """Trace-derived results for one fuzzer's run."""

    name: str
    efficiency: MutationEfficiency
    mp_points: tuple[CumulativePoint, ...]
    pr_points: tuple[CumulativePoint, ...]
    coverage: frozenset[ChannelState]

    @property
    def coverage_count(self) -> int:
        """The Fig. 10 bar height for this fuzzer."""
        return len(self.coverage)


def run_l2fuzz_trial(
    profile: DeviceProfile = D2,
    max_packets: int = 100_000,
    seed: int = 0x1202,
    sample_every: int = 1000,
) -> FuzzerRunResult:
    """Run L2Fuzz under the comparison conditions.

    The trial consumes only streamed analysis (counters, sampled curves,
    incremental coverage), so the campaign runs without retaining the
    per-packet trace — same metrics, a fraction of the allocation.
    """
    session = FuzzSession(
        profile=profile,
        config=FuzzConfig(seed=seed, max_packets=max_packets),
        armed=False,
        zero_latency=True,
        pps=L2FUZZ_PPS,
        retain_trace=False,
        sample_every=sample_every,
    )
    session.run()
    sniffer = session.fuzzer.sniffer
    return FuzzerRunResult(
        name="L2Fuzz",
        efficiency=measure(sniffer, session.clock.now),
        mp_points=tuple(mp_curve(sniffer, sample_every)),
        pr_points=tuple(pr_curve(sniffer, sample_every)),
        coverage=state_coverage(sniffer),
    )


def run_baseline_trial(
    fuzzer_cls: type[BaselineFuzzer],
    profile: DeviceProfile = D2,
    max_packets: int = 100_000,
    seed: int = 0x1202,
    sample_every: int = 1000,
) -> FuzzerRunResult:
    """Run one baseline fuzzer under the comparison conditions (streaming)."""
    clock = SimClock()
    device = profile.build(clock=clock, armed=False, zero_latency=True)
    link = VirtualLink(clock=clock, tx_cost=1.0 / fuzzer_cls.pps)
    device.attach_to(link)
    queue = PacketQueue(
        link, PacketSniffer(retain_trace=False, sample_every=sample_every)
    )
    fuzzer = fuzzer_cls(queue, seed=seed)
    fuzzer.run(max_packets)
    sniffer = queue.sniffer
    return FuzzerRunResult(
        name=fuzzer_cls.name,
        efficiency=measure(sniffer, clock.now),
        mp_points=tuple(mp_curve(sniffer, sample_every)),
        pr_points=tuple(pr_curve(sniffer, sample_every)),
        coverage=state_coverage(sniffer),
    )


#: The four fuzzers in the paper's presentation order.
FUZZER_ORDER = ("L2Fuzz", "Defensics", "BFuzz", "BSS")


def run_comparison(
    profile: DeviceProfile = D2,
    max_packets: int = 100_000,
    seed: int = 0x1202,
    sample_every: int = 1000,
) -> dict[str, FuzzerRunResult]:
    """Run all four fuzzers; return results keyed by fuzzer name."""
    results = {
        "L2Fuzz": run_l2fuzz_trial(profile, max_packets, seed, sample_every),
    }
    for fuzzer_cls in (DefensicsFuzzer, BfuzzFuzzer, BssFuzzer):
        results[fuzzer_cls.name] = run_baseline_trial(
            fuzzer_cls, profile, max_packets, seed, sample_every
        )
    return results


def table7_rows(results: dict[str, FuzzerRunResult]) -> list[dict]:
    """Render paper Table VII from comparison results."""
    return [
        results[name].efficiency.as_table_row(name)
        for name in FUZZER_ORDER
        if name in results
    ]


def figure10_bars(results: dict[str, FuzzerRunResult]) -> dict[str, int]:
    """Render paper Fig. 10: state-coverage count per fuzzer."""
    return {
        name: results[name].coverage_count
        for name in FUZZER_ORDER
        if name in results
    }


def figure11_maps(results: dict[str, FuzzerRunResult]) -> dict[str, list[str]]:
    """Render paper Fig. 11: the per-fuzzer highlighted state sets."""
    return {
        name: sorted(state.value for state in results[name].coverage)
        for name in FUZZER_ORDER
        if name in results
    }
