"""The paper's two evaluation metrics (§IV.A).

* **Mutation efficiency** — ``MP Ratio * (1 - PR Ratio)`` where

  - ``MP Ratio = #Transmitted Malformed Packets / #Transmitted Packets``
  - ``PR Ratio = #Received Rejection Packets / #Received Packets``

  "the minimum percentage of malformed packets transmitted without
  rejection."

* **State coverage** — the number of L2CAP states a fuzzer exercises
  (computed in :mod:`repro.analysis.state_coverage`).

This module also produces the cumulative series behind Fig. 8 and
Fig. 9: malformed-vs-transmitted and rejections-vs-received curves.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.sniffer import Direction, PacketSniffer


@dataclasses.dataclass(frozen=True)
class MutationEfficiency:
    """Result of a mutation-efficiency measurement (paper Table VII)."""

    transmitted: int
    malformed: int
    received: int
    rejections: int
    elapsed_seconds: float

    @property
    def mp_ratio(self) -> float:
        """Malformed Packet Ratio: malformed / transmitted."""
        if not self.transmitted:
            return 0.0
        return self.malformed / self.transmitted

    @property
    def pr_ratio(self) -> float:
        """Packet Rejection Ratio: rejections / received."""
        if not self.received:
            return 0.0
        return self.rejections / self.received

    @property
    def mutation_efficiency(self) -> float:
        """MP Ratio * (1 - PR Ratio)."""
        return self.mp_ratio * (1.0 - self.pr_ratio)

    @property
    def packets_per_second(self) -> float:
        """Transmission throughput over simulated time."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.transmitted / self.elapsed_seconds

    def as_table_row(self, fuzzer_name: str) -> dict:
        """Render as one row of paper Table VII."""
        return {
            "fuzzer": fuzzer_name,
            "mp_ratio": round(100.0 * self.mp_ratio, 2),
            "pr_ratio": round(100.0 * self.pr_ratio, 2),
            "mutation_efficiency": round(100.0 * self.mutation_efficiency, 2),
            "pps": round(self.packets_per_second, 2),
        }


def measure(sniffer: PacketSniffer, elapsed_seconds: float) -> MutationEfficiency:
    """Compute the Table VII metrics from a sniffer trace."""
    return MutationEfficiency(
        transmitted=sniffer.transmitted_count(),
        malformed=sniffer.malformed_count(),
        received=sniffer.received_count(),
        rejections=sniffer.rejection_count(),
        elapsed_seconds=elapsed_seconds,
    )


@dataclasses.dataclass(frozen=True)
class CumulativePoint:
    """One sample of a cumulative curve."""

    x: int
    y: int


def mp_curve(sniffer: PacketSniffer, sample_every: int = 1000) -> list[CumulativePoint]:
    """Fig. 8 series: cumulative malformed packets vs transmitted packets.

    With a retained trace any *sample_every* can be replayed; a streaming
    sniffer (``retain_trace=False``) serves its incrementally sampled
    series instead, which pins *sample_every* to the sniffer's own.

    :param sample_every: emit one point per this many transmitted packets
        (the final point is always included).
    """
    if not sniffer.retain_trace or sample_every == sniffer.sample_every:
        # The streamed series was built at observe time from the same
        # packets in the same order; replaying the trace reproduces it
        # point for point, so serve the stream whenever the sampling
        # grain matches (and always when there is no trace).
        return [
            CumulativePoint(x, y) for x, y in sniffer.streamed_mp_curve(sample_every)
        ]
    points: list[CumulativePoint] = []
    transmitted = 0
    malformed = 0
    for entry in sniffer.trace:
        if entry.direction is not Direction.SENT:
            continue
        transmitted += 1
        if entry.malformed:
            malformed += 1
        if transmitted % sample_every == 0:
            points.append(CumulativePoint(transmitted, malformed))
    if not points or points[-1].x != transmitted:
        points.append(CumulativePoint(transmitted, malformed))
    return points


def pr_curve(sniffer: PacketSniffer, sample_every: int = 1000) -> list[CumulativePoint]:
    """Fig. 9 series: cumulative rejection packets vs received packets.

    Streaming sniffers are served from the incremental series, exactly
    like :func:`mp_curve`.
    """
    if not sniffer.retain_trace or sample_every == sniffer.sample_every:
        return [
            CumulativePoint(x, y) for x, y in sniffer.streamed_pr_curve(sample_every)
        ]
    points: list[CumulativePoint] = []
    received = 0
    rejections = 0
    for entry in sniffer.trace:
        if entry.direction is not Direction.RECEIVED:
            continue
        received += 1
        if entry.rejection:
            rejections += 1
        if received % sample_every == 0:
            points.append(CumulativePoint(received, rejections))
    if not points or points[-1].x != received:
        points.append(CumulativePoint(received, rejections))
    return points


def render_ascii_curve(
    points: list[CumulativePoint], width: int = 60, label: str = ""
) -> str:
    """Render a cumulative curve as a one-line-per-sample ASCII sketch.

    Useful for eyeballing the Fig. 8/9 shapes from a terminal.
    """
    if not points:
        return f"{label}: (no data)"
    max_y = max(point.y for point in points) or 1
    lines = [f"{label}  (final: x={points[-1].x}, y={points[-1].y})"]
    step = max(1, len(points) // 20)
    for point in points[::step]:
        bar = "#" * int(width * point.y / max_y)
        lines.append(f"{point.x:>8} | {bar}")
    return "\n".join(lines)
