"""Measurement substrate: trace capture, metrics, state coverage."""

from repro.analysis.metrics import (
    CumulativePoint,
    MutationEfficiency,
    measure,
    mp_curve,
    pr_curve,
)
# NOTE: repro.analysis.experiments is intentionally not imported here —
# it depends on the testbed (which depends back on repro.core); import it
# directly as `repro.analysis.experiments`.
from repro.analysis.sniffer import Direction, PacketSniffer, TracedPacket, is_rejection
from repro.analysis.state_coverage import (
    StateCoverageAnalyzer,
    coverage_report,
    state_coverage,
)
from repro.analysis.traceio import dump_trace, load_trace, read_trace, save_trace

__all__ = [
    "CumulativePoint",
    "Direction",
    "MutationEfficiency",
    "PacketSniffer",
    "StateCoverageAnalyzer",
    "TracedPacket",
    "coverage_report",
    "dump_trace",
    "is_rejection",
    "load_trace",
    "measure",
    "mp_curve",
    "pr_curve",
    "read_trace",
    "save_trace",
    "state_coverage",
]
