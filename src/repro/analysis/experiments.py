"""Multi-seed experiment statistics.

The paper reports single campaign runs; a reproduction should show the
results are not seed-luck. This module sweeps campaign seeds, aggregates
the per-seed metrics, and reports mean/spread — plus the
transition-coverage comparison that stands in for code coverage (§V
cites Frankenstein's coverage measurement as desirable future work).
"""

from __future__ import annotations

import dataclasses
import statistics

from repro.analysis.state_coverage import state_coverage
from repro.core.config import FuzzConfig
from repro.testbed.profiles import D2, DeviceProfile
from repro.testbed.session import FuzzSession


@dataclasses.dataclass(frozen=True)
class MetricSummary:
    """Mean/spread of one scalar metric across seeds."""

    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        """Arithmetic mean."""
        return statistics.fmean(self.values)

    @property
    def stdev(self) -> float:
        """Sample standard deviation (0 for a single value)."""
        if len(self.values) < 2:
            return 0.0
        return statistics.stdev(self.values)

    @property
    def minimum(self) -> float:
        """Smallest observed value."""
        return min(self.values)

    @property
    def maximum(self) -> float:
        """Largest observed value."""
        return max(self.values)

    def as_dict(self) -> dict:
        """Render for tables."""
        return {
            "mean": round(self.mean, 4),
            "stdev": round(self.stdev, 4),
            "min": round(self.minimum, 4),
            "max": round(self.maximum, 4),
        }


@dataclasses.dataclass(frozen=True)
class SeedSweepResult:
    """Aggregated outcome of a seed sweep."""

    seeds: tuple[int, ...]
    mp_ratio: MetricSummary
    pr_ratio: MetricSummary
    mutation_efficiency: MetricSummary
    coverage_counts: tuple[int, ...]
    transition_branches: tuple[int, ...]

    @property
    def coverage_is_stable(self) -> bool:
        """True when every seed reached the same state-coverage count."""
        return len(set(self.coverage_counts)) == 1


def seed_sweep(
    profile: DeviceProfile = D2,
    seeds: tuple[int, ...] = (1, 2, 3, 4, 5),
    max_packets: int = 8_000,
) -> SeedSweepResult:
    """Run one disarmed campaign per seed and aggregate the metrics."""
    mp, pr, eff = [], [], []
    coverage_counts, branches = [], []
    for seed in seeds:
        session = FuzzSession(
            profile,
            FuzzConfig(seed=seed, max_packets=max_packets),
            armed=False,
            zero_latency=True,
        )
        report = session.run()
        mp.append(report.efficiency.mp_ratio)
        pr.append(report.efficiency.pr_ratio)
        eff.append(report.efficiency.mutation_efficiency)
        coverage_counts.append(len(state_coverage(session.fuzzer.sniffer)))
        branches.append(len(session.device.engine.transition_coverage()))
    return SeedSweepResult(
        seeds=tuple(seeds),
        mp_ratio=MetricSummary(tuple(mp)),
        pr_ratio=MetricSummary(tuple(pr)),
        mutation_efficiency=MetricSummary(tuple(eff)),
        coverage_counts=tuple(coverage_counts),
        transition_branches=tuple(branches),
    )


def transition_coverage_comparison(
    profile: DeviceProfile = D2, max_packets: int = 8_000, seed: int = 0x1202
) -> dict[str, int]:
    """Frankenstein-style proxy: distinct dispatcher branches each fuzzer
    exercises on the same target (higher = deeper stack exploration)."""
    from repro.analysis.comparison import run_baseline_trial  # noqa: F401
    from repro.baselines.bfuzz import BfuzzFuzzer
    from repro.baselines.bss import BssFuzzer
    from repro.baselines.defensics import DefensicsFuzzer
    from repro.core.packet_queue import PacketQueue
    from repro.hci.transport import SimClock, VirtualLink

    results: dict[str, int] = {}

    session = FuzzSession(
        profile,
        FuzzConfig(seed=seed, max_packets=max_packets),
        armed=False,
        zero_latency=True,
    )
    session.run()
    results["L2Fuzz"] = len(session.device.engine.transition_coverage())

    for fuzzer_cls in (DefensicsFuzzer, BfuzzFuzzer, BssFuzzer):
        clock = SimClock()
        device = profile.build(clock=clock, armed=False, zero_latency=True)
        link = VirtualLink(clock=clock, tx_cost=1.0 / fuzzer_cls.pps)
        device.attach_to(link)
        fuzzer = fuzzer_cls(PacketQueue(link), seed=seed)
        fuzzer.run(max_packets)
        results[fuzzer_cls.name] = len(device.engine.transition_coverage())
    return results
