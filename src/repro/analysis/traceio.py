"""Trace serialisation: save and reload packet captures.

Campaign traces are the primary evaluation artefact (every metric and
the state-coverage inference derive from them), so they can be exported
to JSON Lines — one classified packet per line, with the raw frame hex —
and reloaded later for offline analysis, exactly like keeping the
Wireshark capture of a physical run.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator

from repro.analysis.sniffer import Direction, PacketSniffer, TracedPacket
from repro.errors import PacketDecodeError
from repro.l2cap.packets import L2capPacket


def entry_to_dict(entry: TracedPacket) -> dict:
    """Render one trace entry as a JSON-ready dict."""
    return {
        "t": round(entry.sim_time, 6),
        "dir": entry.direction.value,
        "raw": entry.packet.encode().hex(),
        "cmd": entry.packet.command_name
        if not entry.packet.is_data_frame
        else f"DATA_0x{entry.packet.header_cid:04X}",
        "malformed": entry.malformed,
        "rejection": entry.rejection,
    }


def dict_to_entry(record: dict) -> TracedPacket:
    """Rebuild a trace entry from its dict form.

    :raises KeyError: on missing fields.
    :raises PacketDecodeError: on undecodable raw bytes.
    """
    return TracedPacket(
        sim_time=float(record["t"]),
        direction=Direction(record["dir"]),
        packet=L2capPacket.decode(bytes.fromhex(record["raw"])),
        malformed=bool(record["malformed"]),
        rejection=bool(record["rejection"]),
    )


def packets_to_hex(packets: Iterable[L2capPacket]) -> list[str]:
    """Serialise a packet sequence as raw-frame hex strings.

    The hex frames are the corpus subsystem's canonical packet
    representation: byte-exact, JSON-safe, and the sole input to corpus
    content-hash IDs.
    """
    return [packet.encode().hex() for packet in packets]


def packets_from_hex(frames: Iterable[str]) -> list[L2capPacket]:
    """Decode a hex-frame sequence back into packets.

    :raises PacketDecodeError: on undecodable frames.
    :raises ValueError: on non-hex input.
    """
    return [L2capPacket.decode(bytes.fromhex(frame)) for frame in frames]


def dump_trace(sniffer: PacketSniffer) -> str:
    """Serialise a sniffer's whole trace as JSON Lines.

    :raises ValueError: if the sniffer did not retain its trace.
    """
    sniffer.require_trace("dump_trace()")
    return "\n".join(json.dumps(entry_to_dict(entry)) for entry in sniffer.trace)


def iter_load(lines: Iterable[str]) -> Iterator[TracedPacket]:
    """Parse JSONL lines back into trace entries (skipping blanks)."""
    for line in lines:
        line = line.strip()
        if not line:
            continue
        yield dict_to_entry(json.loads(line))


def load_trace(text: str) -> list[TracedPacket]:
    """Parse a whole JSONL document into a trace list."""
    return list(iter_load(text.splitlines()))


def rebuild_sniffer(entries: Iterable[TracedPacket]) -> PacketSniffer:
    """Re-observe a saved trace through a fresh sniffer.

    The sniffer re-derives its classifications and CID bookkeeping from
    the raw frames, so metrics computed on a reloaded trace match the
    original run — the round-trip property the tests pin down.
    """
    sniffer = PacketSniffer()
    for entry in entries:
        if entry.direction is Direction.SENT:
            sniffer.observe_sent(entry.packet, entry.sim_time)
        else:
            sniffer.observe_received(entry.packet, entry.sim_time)
    return sniffer


def save_trace(sniffer: PacketSniffer, path) -> int:
    """Write a trace to *path*; returns the number of entries written."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_trace(sniffer))
        handle.write("\n")
    return len(sniffer.trace)


def read_trace(path) -> PacketSniffer:
    """Load a trace file back into a fully classified sniffer."""
    with open(path, encoding="utf-8") as handle:
        return rebuild_sniffer(iter_load(handle))
