"""Packet-trace capture and classification (the Wireshark substitute).

The paper's two evaluation metrics are computed purely from a packet
trace (§IV.A): malformed and rejected packets were "captured and analyzed
using Wireshark". :class:`PacketSniffer` plays that role: it observes
every frame in both directions and classifies

* transmitted packets as **malformed** — any deviation from a spec-clean
  encoding, including channel-endpoint values that ignore the dynamic
  allocation *observed on the wire* (the sniffer tracks which CIDs the
  target actually handed out, exactly as a Wireshark analyst would), and
* received packets as **rejections** — Command Reject responses plus
  refusal results in response commands.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.l2cap.constants import (
    CommandCode,
    ConfigResult,
    ConnectionResult,
    InfoResult,
    MoveResult,
)
from repro.l2cap.packets import L2capPacket
from repro.l2cap.validation import is_malformed


class Direction(enum.Enum):
    """Which way a frame travelled, from the fuzzer's vantage point."""

    SENT = "sent"
    RECEIVED = "received"


@dataclasses.dataclass(frozen=True)
class TracedPacket:
    """One classified trace entry."""

    sim_time: float
    direction: Direction
    packet: L2capPacket
    malformed: bool
    rejection: bool


#: Result values in a Connection/Create-Channel Response that constitute a
#: refusal of the request.
_CONNECTION_REFUSALS = frozenset(
    {
        ConnectionResult.REFUSED_PSM_NOT_SUPPORTED,
        ConnectionResult.REFUSED_SECURITY_BLOCK,
        ConnectionResult.REFUSED_NO_RESOURCES,
        ConnectionResult.REFUSED_CONTROLLER_ID_NOT_SUPPORTED,
        ConnectionResult.REFUSED_INVALID_SCID,
        ConnectionResult.REFUSED_SCID_ALREADY_ALLOCATED,
    }
)

_CONFIG_REFUSALS = frozenset(
    {
        ConfigResult.UNACCEPTABLE_PARAMETERS,
        ConfigResult.REJECTED,
        ConfigResult.UNKNOWN_OPTIONS,
        ConfigResult.FLOW_SPEC_REJECTED,
    }
)

_MOVE_REFUSALS = frozenset(
    {
        MoveResult.REFUSED_CONTROLLER_ID_NOT_SUPPORTED,
        MoveResult.REFUSED_NEW_CONTROLLER_ID_IS_SAME,
        MoveResult.REFUSED_CONFIGURATION_NOT_SUPPORTED,
        MoveResult.REFUSED_COLLISION,
        MoveResult.REFUSED_NOT_ALLOWED,
    }
)


def is_rejection(packet: L2capPacket) -> bool:
    """Classify a received packet as a rejection (PR-Ratio numerator)."""
    code = packet.code
    result = packet.fields.get("result")
    if code == CommandCode.COMMAND_REJECT:
        return True
    if code in (CommandCode.CONNECTION_RSP, CommandCode.CREATE_CHANNEL_RSP):
        return result in _CONNECTION_REFUSALS
    if code == CommandCode.CONFIGURATION_RSP:
        return result in _CONFIG_REFUSALS
    if code == CommandCode.MOVE_CHANNEL_RSP:
        return result in _MOVE_REFUSALS
    if code == CommandCode.INFORMATION_RSP:
        return result == InfoResult.NOT_SUPPORTED
    if code in (
        CommandCode.LE_CREDIT_BASED_CONNECTION_RSP,
        CommandCode.CREDIT_BASED_CONNECTION_RSP,
        CommandCode.CREDIT_BASED_RECONFIGURE_RSP,
    ):
        return bool(result)
    return False


class PacketSniffer:
    """Observes both directions of a fuzzing session and keeps the trace.

    The sniffer maintains the set of dynamic CIDs the *target* has handed
    out, learned from successful Connection / Create-Channel responses
    and pruned on disconnections — the wire-visible ground truth against
    which "ignores dynamic allocation" is judged.
    """

    def __init__(self) -> None:
        self.trace: list[TracedPacket] = []
        self._target_cids: set[int] = set()
        self._sent = 0
        self._malformed = 0
        self._received = 0
        self._rejections = 0

    # -- observation -------------------------------------------------------------

    def observe_sent(self, packet: L2capPacket, sim_time: float) -> TracedPacket:
        """Record one fuzzer→target packet."""
        malformed = is_malformed(packet, allocated_cids=frozenset(self._target_cids))
        entry = TracedPacket(sim_time, Direction.SENT, packet, malformed, False)
        self.trace.append(entry)
        self._sent += 1
        if malformed:
            self._malformed += 1
        self._learn_from_sent(packet)
        return entry

    def observe_received(self, packet: L2capPacket, sim_time: float) -> TracedPacket:
        """Record one target→fuzzer packet."""
        rejection = is_rejection(packet)
        entry = TracedPacket(sim_time, Direction.RECEIVED, packet, False, rejection)
        self.trace.append(entry)
        self._received += 1
        if rejection:
            self._rejections += 1
        self._learn_from_received(packet)
        return entry

    def _learn_from_received(self, packet: L2capPacket) -> None:
        code = packet.code
        result = packet.fields.get("result")
        if code in (CommandCode.CONNECTION_RSP, CommandCode.CREATE_CHANNEL_RSP):
            if result == ConnectionResult.SUCCESS:
                dcid = packet.fields.get("dcid", 0)
                if dcid:
                    self._target_cids.add(dcid)
        elif code == CommandCode.DISCONNECTION_RSP:
            dcid = packet.fields.get("dcid", 0)
            self._target_cids.discard(dcid)
        elif code == CommandCode.DISCONNECTION_REQ:
            scid = packet.fields.get("scid", 0)
            self._target_cids.discard(scid)

    def _learn_from_sent(self, packet: L2capPacket) -> None:
        if packet.code == CommandCode.DISCONNECTION_REQ:
            # If the target answers, its CID will be dropped on the RSP;
            # nothing to learn from the request itself.
            return

    # -- views ------------------------------------------------------------------

    @property
    def observed_target_cids(self) -> frozenset[int]:
        """Dynamic CIDs the target currently has allocated (wire view)."""
        return frozenset(self._target_cids)

    def sent(self) -> list[TracedPacket]:
        """All fuzzer→target entries."""
        return [entry for entry in self.trace if entry.direction is Direction.SENT]

    def received(self) -> list[TracedPacket]:
        """All target→fuzzer entries."""
        return [entry for entry in self.trace if entry.direction is Direction.RECEIVED]

    def transmitted_count(self) -> int:
        """Total packets the fuzzer transmitted."""
        return self._sent

    def malformed_count(self) -> int:
        """Transmitted packets classified as malformed."""
        return self._malformed

    def received_count(self) -> int:
        """Total packets received from the target."""
        return self._received

    def rejection_count(self) -> int:
        """Received packets classified as rejections."""
        return self._rejections

    def clear(self) -> None:
        """Drop the trace, the counters and the learned CID set."""
        self.trace.clear()
        self._target_cids.clear()
        self._sent = 0
        self._malformed = 0
        self._received = 0
        self._rejections = 0
