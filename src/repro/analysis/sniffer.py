"""Packet-trace capture and classification (the Wireshark substitute).

The paper's two evaluation metrics are computed purely from a packet
trace (§IV.A): malformed and rejected packets were "captured and analyzed
using Wireshark". :class:`PacketSniffer` plays that role: it observes
every frame in both directions and classifies

* transmitted packets as **malformed** — any deviation from a spec-clean
  encoding, including channel-endpoint values that ignore the dynamic
  allocation *observed on the wire* (the sniffer tracks which CIDs the
  target actually handed out, exactly as a Wireshark analyst would), and
* received packets as **rejections** — Command Reject responses plus
  refusal results in response commands.

Analysis is **streaming**: every observation is fed incrementally into a
state-coverage analyzer and into cumulative MP/PR sample series, so the
paper's metrics never require replaying the whole trace. Retention of
the per-packet trace itself is opt-in (``retain_trace``) — fleet workers
turn it off and a million-packet campaign runs in bounded memory.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.l2cap.constants import (
    CommandCode,
    ConfigResult,
    ConnectionResult,
    InfoResult,
    MoveResult,
)
from repro.l2cap.packets import L2capPacket
from repro.l2cap.validation import is_malformed


class Direction(enum.Enum):
    """Which way a frame travelled, from the fuzzer's vantage point."""

    SENT = "sent"
    RECEIVED = "received"


@dataclasses.dataclass(frozen=True, slots=True)
class TracedPacket:
    """One classified trace entry."""

    sim_time: float
    direction: Direction
    packet: L2capPacket
    malformed: bool
    rejection: bool


#: Result values in a Connection/Create-Channel Response that constitute a
#: refusal of the request.
_CONNECTION_REFUSALS = frozenset(
    {
        ConnectionResult.REFUSED_PSM_NOT_SUPPORTED,
        ConnectionResult.REFUSED_SECURITY_BLOCK,
        ConnectionResult.REFUSED_NO_RESOURCES,
        ConnectionResult.REFUSED_CONTROLLER_ID_NOT_SUPPORTED,
        ConnectionResult.REFUSED_INVALID_SCID,
        ConnectionResult.REFUSED_SCID_ALREADY_ALLOCATED,
    }
)

_CONFIG_REFUSALS = frozenset(
    {
        ConfigResult.UNACCEPTABLE_PARAMETERS,
        ConfigResult.REJECTED,
        ConfigResult.UNKNOWN_OPTIONS,
        ConfigResult.FLOW_SPEC_REJECTED,
    }
)

_MOVE_REFUSALS = frozenset(
    {
        MoveResult.REFUSED_CONTROLLER_ID_NOT_SUPPORTED,
        MoveResult.REFUSED_NEW_CONTROLLER_ID_IS_SAME,
        MoveResult.REFUSED_CONFIGURATION_NOT_SUPPORTED,
        MoveResult.REFUSED_COLLISION,
        MoveResult.REFUSED_NOT_ALLOWED,
    }
)


#: Response commands judged by membership of their result in a refusal
#: set, keyed by command-code value (one dict hit per received packet).
_RESULT_REFUSALS: dict[int, frozenset] = {
    int(CommandCode.CONNECTION_RSP): _CONNECTION_REFUSALS,
    int(CommandCode.CREATE_CHANNEL_RSP): _CONNECTION_REFUSALS,
    int(CommandCode.CONFIGURATION_RSP): _CONFIG_REFUSALS,
    int(CommandCode.MOVE_CHANNEL_RSP): _MOVE_REFUSALS,
}

#: Credit-based responses: any non-zero result refuses the operation.
_NONZERO_RESULT_REJECTS = frozenset(
    {
        int(CommandCode.LE_CREDIT_BASED_CONNECTION_RSP),
        int(CommandCode.CREDIT_BASED_CONNECTION_RSP),
        int(CommandCode.CREDIT_BASED_RECONFIGURE_RSP),
    }
)


def is_rejection(packet: L2capPacket) -> bool:
    """Classify a received packet as a rejection (PR-Ratio numerator)."""
    code = packet.code
    if code == CommandCode.COMMAND_REJECT:
        return True
    refusals = _RESULT_REFUSALS.get(code)
    if refusals is not None:
        return packet.fields.get("result") in refusals
    if code == CommandCode.INFORMATION_RSP:
        return packet.fields.get("result") == InfoResult.NOT_SUPPORTED
    if code in _NONZERO_RESULT_REJECTS:
        return bool(packet.fields.get("result"))
    return False


_StateCoverageAnalyzer = None


def _analyzer_cls():
    """Resolve the streaming coverage analyzer lazily.

    ``state_coverage`` imports this module for :class:`Direction`, so the
    reverse import happens at first sniffer construction instead of at
    module load to keep the import graph acyclic.
    """
    global _StateCoverageAnalyzer
    if _StateCoverageAnalyzer is None:
        from repro.analysis.state_coverage import StateCoverageAnalyzer

        _StateCoverageAnalyzer = StateCoverageAnalyzer
    return _StateCoverageAnalyzer


class PacketSniffer:
    """Observes both directions of a fuzzing session, streaming analysis.

    The sniffer maintains the set of dynamic CIDs the *target* has handed
    out, learned from successful Connection / Create-Channel responses
    and pruned on disconnections — the wire-visible ground truth against
    which "ignores dynamic allocation" is judged.

    Every observation is additionally pushed through a streaming
    :class:`~repro.analysis.state_coverage.StateCoverageAnalyzer` and
    into cumulative MP/PR sample series, so coverage and the Fig. 8/9
    curves are available without replaying the trace.

    :param retain_trace: keep every :class:`TracedPacket` in
        :attr:`trace`. True (the default) preserves the Wireshark-style
        capture for offline analysis and corpus write-back; False bounds
        memory for fleet-scale campaigns — only running counters, the
        streaming analyzer and the sampled curves are kept.
    :param sample_every: granularity of the streamed Fig. 8/9 series
        (one point per this many packets in the matching direction).
    """

    def __init__(self, retain_trace: bool = True, sample_every: int = 1000) -> None:
        self.retain_trace = retain_trace
        self.sample_every = sample_every
        self.trace: list[TracedPacket] = []
        self._target_cids: set[int] = set()
        self._target_cids_view = frozenset()
        self._sent = 0
        self._malformed = 0
        self._received = 0
        self._rejections = 0
        self._coverage = _analyzer_cls()()
        self._coverage_unlocks: list[tuple[int, int]] = []
        self._last_coverage_count = self._coverage.coverage_count
        self._first_observation_sent: int | None = None
        self._mp_samples: list[tuple[int, int]] = []
        self._pr_samples: list[tuple[int, int]] = []

    # -- observation -------------------------------------------------------------

    def observe_sent(self, packet: L2capPacket, sim_time: float) -> TracedPacket | None:
        """Record one fuzzer→target packet.

        Returns the trace entry, or None when the trace is not retained
        (a streaming sniffer has no per-packet object to keep).
        """
        malformed = is_malformed(packet, allocated_cids=self._target_cids_view)
        entry = None
        if self.retain_trace:
            entry = TracedPacket(sim_time, Direction.SENT, packet, malformed, False)
            self.trace.append(entry)
        self._sent += 1
        if malformed:
            self._malformed += 1
        if self._sent % self.sample_every == 0:
            self._mp_samples.append((self._sent, self._malformed))
        self._coverage.observe_sent(packet)
        self._record_coverage()
        return entry

    def observe_received(
        self, packet: L2capPacket, sim_time: float
    ) -> TracedPacket | None:
        """Record one target→fuzzer packet (entry None when streaming)."""
        rejection = is_rejection(packet)
        entry = None
        if self.retain_trace:
            entry = TracedPacket(sim_time, Direction.RECEIVED, packet, False, rejection)
            self.trace.append(entry)
        self._received += 1
        if rejection:
            self._rejections += 1
        if self._received % self.sample_every == 0:
            self._pr_samples.append((self._received, self._rejections))
        self._learn_from_received(packet)
        self._coverage.observe_received(packet)
        self._record_coverage()
        return entry

    def _record_coverage(self) -> None:
        """Track coverage unlocks as (state count, sent packets so far)."""
        if self._first_observation_sent is None:
            self._first_observation_sent = self._sent
        count = len(self._coverage.visited)
        if count > self._last_coverage_count:
            self._last_coverage_count = count
            self._coverage_unlocks.append((count, self._sent))

    def _learn_from_received(self, packet: L2capPacket) -> None:
        code = packet.code
        result = packet.fields.get("result")
        cids = self._target_cids
        if code in (CommandCode.CONNECTION_RSP, CommandCode.CREATE_CHANNEL_RSP):
            if result == ConnectionResult.SUCCESS:
                dcid = packet.fields.get("dcid", 0)
                if dcid and dcid not in cids:
                    cids.add(dcid)
                    self._target_cids_view = frozenset(cids)
        elif code == CommandCode.DISCONNECTION_RSP:
            dcid = packet.fields.get("dcid", 0)
            if dcid in cids:
                cids.discard(dcid)
                self._target_cids_view = frozenset(cids)
        elif code == CommandCode.DISCONNECTION_REQ:
            scid = packet.fields.get("scid", 0)
            if scid in cids:
                cids.discard(scid)
                self._target_cids_view = frozenset(cids)

    # Nothing is learned from sent packets: even a sent Disconnection
    # Request only drops the target's CID once the response confirms it.

    # -- views ------------------------------------------------------------------

    @property
    def observed_target_cids(self) -> frozenset[int]:
        """Dynamic CIDs the target currently has allocated (wire view)."""
        return self._target_cids_view

    def require_trace(self, consumer: str) -> None:
        """Fail fast when a full-trace consumer meets a streaming sniffer.

        :raises ValueError: if the trace was not retained.
        """
        if not self.retain_trace:
            raise ValueError(
                f"{consumer} needs the retained packet trace, but this "
                "sniffer was created with retain_trace=False; re-run with "
                "trace retention enabled"
            )

    def sent(self) -> list[TracedPacket]:
        """All fuzzer→target entries (requires a retained trace)."""
        self.require_trace("PacketSniffer.sent()")
        return [entry for entry in self.trace if entry.direction is Direction.SENT]

    def received(self) -> list[TracedPacket]:
        """All target→fuzzer entries (requires a retained trace)."""
        self.require_trace("PacketSniffer.received()")
        return [entry for entry in self.trace if entry.direction is Direction.RECEIVED]

    # -- streaming views ---------------------------------------------------------

    def coverage(self):
        """Wire-inferred target state coverage, maintained incrementally."""
        return self._coverage.coverage()

    @property
    def coverage_count(self) -> int:
        """Number of states the streaming analyzer has inferred so far."""
        return self._coverage.coverage_count

    @property
    def coverage_unlocks(self) -> tuple[tuple[int, int], ...]:
        """(coverage count, sent packets) at each new coverage high-water."""
        return tuple(self._coverage_unlocks)

    @property
    def first_observation_sent(self) -> int | None:
        """Sent-count after the very first observation (None if none yet)."""
        return self._first_observation_sent

    def _streamed_curve(
        self,
        samples: list[tuple[int, int]],
        total: int,
        positive: int,
        sample_every: int,
    ) -> list[tuple[int, int]]:
        if sample_every != self.sample_every:
            raise ValueError(
                f"streamed curves were sampled every {self.sample_every} "
                f"packets; cannot resample at {sample_every} without the "
                "retained trace"
            )
        points = list(samples)
        if not points or points[-1][0] != total:
            points.append((total, positive))
        return points

    def streamed_mp_curve(self, sample_every: int = 1000) -> list[tuple[int, int]]:
        """Fig. 8 series from the streaming counters (no trace replay)."""
        return self._streamed_curve(
            self._mp_samples, self._sent, self._malformed, sample_every
        )

    def streamed_pr_curve(self, sample_every: int = 1000) -> list[tuple[int, int]]:
        """Fig. 9 series from the streaming counters (no trace replay)."""
        return self._streamed_curve(
            self._pr_samples, self._received, self._rejections, sample_every
        )

    def counters(self) -> dict[str, int]:
        """One-shot snapshot of every running counter (telemetry view).

        Reads the numbers the sniffer already maintains per observation —
        no extra hot-path work, just a dict built at the flush point.
        """
        return {
            "sent": self._sent,
            "malformed": self._malformed,
            "received": self._received,
            "rejections": self._rejections,
            "coverage_states": self._coverage.coverage_count,
            "coverage_unlocks": len(self._coverage_unlocks),
        }

    def transmitted_count(self) -> int:
        """Total packets the fuzzer transmitted."""
        return self._sent

    def malformed_count(self) -> int:
        """Transmitted packets classified as malformed."""
        return self._malformed

    def received_count(self) -> int:
        """Total packets received from the target."""
        return self._received

    def rejection_count(self) -> int:
        """Received packets classified as rejections."""
        return self._rejections

    def clear(self) -> None:
        """Drop the trace, counters, CID set and streaming analysis."""
        self.trace.clear()
        self._target_cids.clear()
        self._target_cids_view = frozenset()
        self._sent = 0
        self._malformed = 0
        self._received = 0
        self._rejections = 0
        self._coverage = _analyzer_cls()()
        self._coverage_unlocks.clear()
        self._last_coverage_count = self._coverage.coverage_count
        self._first_observation_sent = None
        self._mp_samples.clear()
        self._pr_samples.clear()
