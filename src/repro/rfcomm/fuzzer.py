"""RFCOMM fuzzer: the L2Fuzz methodology transferred to another protocol.

Paper §V ("Applicability to other protocols"): RFCOMM has its own state
machine and its own core-field split, so *state guiding* and *core field
mutating* apply unchanged. This module demonstrates exactly that:

* **state guiding** — the fuzzer walks the mux states with valid frames
  (SABM on DLCI 0 → control connected → SABM on a data DLCI → data
  connected), and fuzzes each state with the frames valid there;
* **core field mutating** — only the DLCI (the channel-selecting core
  field) is mutated; the FCS and length (dependent fields) stay valid so
  the mux parses the frame; a garbage tail is appended beyond the
  declared frame end.
"""

from __future__ import annotations

import dataclasses
import random

from repro.core.packet_queue import PacketQueue
from repro.errors import TransportError
from repro.l2cap.packets import L2capPacket
from repro.rfcomm.constants import CONTROL_DLCI, FrameType, MAX_DLCI
from repro.rfcomm.frames import RfcommFrame, disc, sabm, uih


@dataclasses.dataclass
class RfcommFuzzReport:
    """Outcome of an RFCOMM fuzzing pass."""

    frames_sent: int = 0
    accepted: int = 0  # UA or data echo came back
    rejected: int = 0  # DM came back
    crashed: bool = False
    crash_error: str | None = None


class RfcommFuzzer:
    """Fuzzes a target's RFCOMM mux over an open L2CAP channel.

    :param queue: packet queue to the target.
    :param our_cid: our L2CAP CID of the RFCOMM channel.
    :param target_cid: the target's CID of the RFCOMM channel.
    :param seed: RNG seed.
    :param max_garbage: garbage-tail cap (kept small, like the paper's).
    """

    def __init__(
        self,
        queue: PacketQueue,
        our_cid: int,
        target_cid: int,
        seed: int = 0x1202,
        max_garbage: int = 12,
    ) -> None:
        self.queue = queue
        self.our_cid = our_cid
        self.target_cid = target_cid
        self.rng = random.Random(seed)
        self.max_garbage = max_garbage
        self.report = RfcommFuzzReport()

    # -- state guiding -----------------------------------------------------------------

    def open_control_channel(self) -> bool:
        """Valid SABM on DLCI 0 (the mandatory first transition)."""
        return self._expect_ua(sabm(CONTROL_DLCI))

    def open_data_dlci(self, dlci: int) -> bool:
        """Valid SABM on a data DLCI."""
        return self._expect_ua(sabm(dlci))

    def close_dlci(self, dlci: int) -> bool:
        """Valid DISC."""
        return self._expect_ua(disc(dlci))

    # -- core field mutating -----------------------------------------------------------

    def mutate_frame(self, frame_type: int) -> bytes:
        """Build one malformed frame: DLCI mutated, D kept valid, garbage.

        Mirrors Algorithm 1: the core field (DLCI) gets a random value
        over its full range (ignoring which DLCIs are actually open), the
        dependent fields (length, FCS) stay correct so the frame parses,
        and a garbage tail rides beyond the declared end.
        """
        dlci = self.rng.randrange(0, MAX_DLCI + 1)
        if frame_type == FrameType.UIH:
            payload = bytes(self.rng.getrandbits(8) for _ in range(4))
            frame = uih(dlci, payload)
        else:
            frame = RfcommFrame(dlci, frame_type)
        garbage = bytes(
            self.rng.getrandbits(8)
            for _ in range(self.rng.randint(4, self.max_garbage))
        )
        return frame.encode() + garbage

    def fuzz_state(self, frame_types: tuple[int, ...], per_type: int = 5) -> None:
        """Send *per_type* mutated frames of each valid type, classifying
        the responses; stops early if the target dies."""
        for frame_type in frame_types:
            for _ in range(per_type):
                raw = self.mutate_frame(frame_type)
                if not self._send_raw(raw):
                    return

    def run(self, per_type: int = 5) -> RfcommFuzzReport:
        """Full guided pass: fuzz each mux state with its valid frames."""
        # State 1: everything disconnected — only SABM is valid.
        self.fuzz_state((FrameType.SABM,), per_type)
        if self.report.crashed:
            return self.report
        # State 2: control channel up.
        if self.open_control_channel():
            self.fuzz_state((FrameType.SABM, FrameType.UIH), per_type)
        if self.report.crashed:
            return self.report
        # State 3: a data DLCI up — UIH and DISC become valid.
        if self.open_data_dlci(dlci=3):
            self.fuzz_state((FrameType.UIH, FrameType.DISC), per_type)
        return self.report

    # -- plumbing -----------------------------------------------------------------------

    def _send_raw(self, payload: bytes) -> bool:
        """Ship one RFCOMM frame as an L2CAP data frame. False = target died."""
        packet = L2capPacket(
            code=0, identifier=0, header_cid=self.target_cid, tail=payload,
            fill_defaults=False,
        )
        try:
            responses = self.queue.exchange(packet)
        except TransportError as error:
            self.report.frames_sent += 1
            self.report.crashed = True
            self.report.crash_error = error.message
            return False
        self.report.frames_sent += 1
        for response in responses:
            if response.header_cid != self.our_cid:
                continue
            self._classify(response.tail)
        return True

    def _classify(self, payload: bytes) -> None:
        from repro.errors import PacketDecodeError

        try:
            frame = RfcommFrame.decode(payload)
        except PacketDecodeError:
            return
        if frame.frame_type == FrameType.DM:
            self.report.rejected += 1
        elif frame.frame_type in (FrameType.UA, FrameType.UIH):
            self.report.accepted += 1

    def _expect_ua(self, frame: RfcommFrame) -> bool:
        try:
            packet = L2capPacket(
                code=0, identifier=0, header_cid=self.target_cid,
                tail=frame.encode(), fill_defaults=False,
            )
            responses = self.queue.exchange(packet)
        except TransportError as error:
            self.report.crashed = True
            self.report.crash_error = error.message
            return False
        for response in responses:
            if response.header_cid != self.our_cid:
                continue
            try:
                reply = RfcommFrame.decode(response.tail)
            except Exception:
                continue
            if reply.frame_type == FrameType.UA and reply.dlci == frame.dlci:
                return True
        return False
