"""RFCOMM multiplexer: the device-side state machine.

Each DLCI runs a small connection state machine (DISCONNECTED →
CONNECTED → DISCONNECTED); DLCI 0 is the control channel and must be up
before any data DLCI can connect — the stateful structure that makes the
paper's state-guiding technique applicable here too (§V).

The mux plugs into the host stack as the data handler for PSM 0x0003.
An optional injected bug reproduces the paper's thesis on this layer:
a UIH frame to a connected DLCI whose payload ends in a garbage pattern
the length field does not cover crashes permissive implementations.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import PacketDecodeError, TargetCrashedError
from repro.rfcomm.constants import CONTROL_DLCI, FrameType, MAX_DLCI
from repro.rfcomm.frames import RfcommFrame, dm, ua
from repro.stack.crash import CrashKind, CrashReport, DumpKind


class DlciState(enum.Enum):
    """Per-DLCI connection states."""

    DISCONNECTED = "DISCONNECTED"
    CONNECTED = "CONNECTED"


@dataclasses.dataclass
class DlciEntry:
    """Bookkeeping for one DLCI."""

    dlci: int
    state: DlciState = DlciState.DISCONNECTED


class RfcommMux:
    """Device-side RFCOMM multiplexer.

    :param server_channels: RFCOMM server channels the device exposes
        (each maps to DLCI ``channel << 1 | 1`` from the responder view).
    :param vulnerable: inject the UIH overflow bug (crashes on a data
        frame with a short declared length and a long garbage tail).
    :param strict_fcs: reject frames with a bad FCS (all real muxes do;
        False models a broken implementation for ablation).
    """

    def __init__(
        self,
        server_channels: tuple[int, ...] = (1,),
        vulnerable: bool = False,
        strict_fcs: bool = True,
        service_handlers: dict | None = None,
    ) -> None:
        self.vulnerable = vulnerable
        self.strict_fcs = strict_fcs
        #: Per-DLCI upper-layer services (payload in → payload out), e.g.
        #: an OBEX server; DLCIs without a handler run serial loopback.
        self.service_handlers = dict(service_handlers or {})
        self._dlcis: dict[int, DlciEntry] = {CONTROL_DLCI: DlciEntry(CONTROL_DLCI)}
        for channel in server_channels:
            dlci = (channel << 1) | 1
            self._dlcis[dlci & MAX_DLCI] = DlciEntry(dlci & MAX_DLCI)
            self._dlcis[(channel << 1) & MAX_DLCI] = DlciEntry((channel << 1) & MAX_DLCI)
        self.state_history: list[tuple[int, DlciState]] = []
        self.frames_rejected = 0
        self.frames_accepted = 0

    # -- public ---------------------------------------------------------------------

    def handle_payload(self, payload: bytes) -> bytes:
        """L2CAP data-handler entry point: one frame in, one frame out."""
        try:
            frame = RfcommFrame.decode(payload)
        except PacketDecodeError:
            self.frames_rejected += 1
            return b""  # undecodable frames are dropped (no DLCI to answer on)
        response = self._dispatch(frame, raw=payload)
        if response is None:
            return b""
        return response.encode()

    def dlci_state(self, dlci: int) -> DlciState:
        """Current state of *dlci* (DISCONNECTED when unknown)."""
        entry = self._dlcis.get(dlci)
        return entry.state if entry is not None else DlciState.DISCONNECTED

    def visited_states(self) -> frozenset[tuple[int, DlciState]]:
        """All (dlci, state) pairs entered so far."""
        return frozenset(self.state_history)

    # -- dispatch -------------------------------------------------------------------

    def _set_state(self, entry: DlciEntry, state: DlciState) -> None:
        entry.state = state
        self.state_history.append((entry.dlci, state))

    def _dispatch(self, frame: RfcommFrame, raw: bytes) -> RfcommFrame | None:
        entry = self._dlcis.get(frame.dlci)
        if frame.frame_type == FrameType.SABM:
            return self._on_sabm(frame, entry)
        if frame.frame_type == FrameType.DISC:
            return self._on_disc(frame, entry)
        if frame.frame_type == FrameType.UIH:
            return self._on_uih(frame, entry, raw)
        # Unsolicited UA/DM from a peer: ignored.
        self.frames_rejected += 1
        return None

    def _on_sabm(self, frame: RfcommFrame, entry: DlciEntry | None) -> RfcommFrame:
        if entry is None:
            self.frames_rejected += 1
            return dm(frame.dlci)
        if frame.dlci != CONTROL_DLCI and (
            self.dlci_state(CONTROL_DLCI) is not DlciState.CONNECTED
        ):
            # Data DLCIs require the control channel first.
            self.frames_rejected += 1
            return dm(frame.dlci)
        self.frames_accepted += 1
        self._set_state(entry, DlciState.CONNECTED)
        return ua(frame.dlci)

    def _on_disc(self, frame: RfcommFrame, entry: DlciEntry | None) -> RfcommFrame:
        if entry is None or entry.state is not DlciState.CONNECTED:
            self.frames_rejected += 1
            return dm(frame.dlci)
        self.frames_accepted += 1
        self._set_state(entry, DlciState.DISCONNECTED)
        return ua(frame.dlci)

    def _on_uih(
        self, frame: RfcommFrame, entry: DlciEntry | None, raw: bytes
    ) -> RfcommFrame | None:
        if entry is None or entry.state is not DlciState.CONNECTED:
            self.frames_rejected += 1
            return dm(frame.dlci)
        self.frames_accepted += 1
        self._check_bug(frame, raw)
        if frame.dlci == CONTROL_DLCI:
            return None  # mux control messages are absorbed
        from repro.rfcomm.frames import uih

        handler = self.service_handlers.get(frame.dlci)
        if handler is not None:
            response_payload = handler(frame.payload)
            if not response_payload:
                return None
            return uih(frame.dlci, response_payload)
        # Serial-port loopback service: echo the payload.
        return uih(frame.dlci, frame.payload)

    def _check_bug(self, frame: RfcommFrame, raw: bytes) -> None:
        """The injected UIH overflow: declared length shorter than the
        frame, with at least four bytes of uncovered tail."""
        if not self.vulnerable:
            return
        # Bytes beyond the declared frame (header + payload + FCS) are the
        # garbage tail; four or more overrun the reassembly buffer.
        uncovered = len(raw) - (3 + len(frame.payload) + 1)
        if uncovered >= 4:
            crash = CrashReport(
                vulnerability_id="rfcomm-uih-overflow",
                kind=CrashKind.CRASH,
                dump_kind=DumpKind.TOMBSTONE,
                summary="heap overflow in RFCOMM UIH reassembly",
                function="rfc_process_mx_message",
                fault_address=0x41414141,
                trigger_description=f"UIH dlci={frame.dlci} raw={raw.hex()}",
            )
            raise TargetCrashedError(crash)
