"""RFCOMM frame codec.

Frame layout (TS 07.10 basic option)::

    | Address (1) | Control (1) | Length (1 or 2) | payload | FCS (1) |

* Address: ``DLCI(6) | C/R | EA``.
* Control: frame type with the P/F bit.
* Length: EA-extended — one byte for payloads up to 127, two bytes above.
* FCS: over address+control for UIH frames; over address+control+length
  for SABM/UA/DM/DISC.

Field taxonomy, mirroring the paper's L2CAP split: the **address octet
(DLCI)** is the mutable core field (it selects the channel), the
control/length/FCS are dependent fields a conformant mux checks before
anything else, and the payload is application data.
"""

from __future__ import annotations

import dataclasses

from repro.errors import PacketDecodeError, PacketEncodeError
from repro.rfcomm.constants import FrameType, POLL_FINAL, fcs, fcs_ok


@dataclasses.dataclass
class RfcommFrame:
    """One RFCOMM frame.

    :param dlci: data link connection identifier (0-63).
    :param frame_type: SABM/UA/DM/DISC/UIH.
    :param payload: UIH payload bytes.
    :param poll_final: the P/F bit.
    :param command: the C/R bit (True = command, from the initiator).
    :param fcs_override: wrong FCS to emit instead of the computed one
        (fuzzing hook); None emits the valid FCS.
    """

    dlci: int
    frame_type: int
    payload: bytes = b""
    poll_final: bool = True
    command: bool = True
    fcs_override: int | None = None

    @property
    def address(self) -> int:
        """The address octet (DLCI | C/R | EA)."""
        return ((self.dlci & 0x3F) << 2) | (0x02 if self.command else 0x00) | 0x01

    @property
    def control(self) -> int:
        """The control octet (type | P/F)."""
        return (self.frame_type & 0xEF) | (POLL_FINAL if self.poll_final else 0)

    def encode(self) -> bytes:
        """Serialise the frame with a valid (or overridden) FCS.

        :raises PacketEncodeError: for out-of-range DLCI or payload.
        """
        if not 0 <= self.dlci <= 63:
            raise PacketEncodeError(f"DLCI {self.dlci} out of range")
        if len(self.payload) > 0x7FFF:
            raise PacketEncodeError("RFCOMM payload exceeds 32767 bytes")
        if len(self.payload) <= 0x7F:
            length = bytes([(len(self.payload) << 1) | 0x01])
        else:
            value = len(self.payload) << 1
            length = bytes([value & 0xFE, (value >> 8) & 0xFF])
        header = bytes([self.address, self.control]) + length
        if self.frame_type == FrameType.UIH:
            checked = header[:2]
        else:
            checked = header
        check = self.fcs_override if self.fcs_override is not None else fcs(checked)
        return header + self.payload + bytes([check & 0xFF])

    @classmethod
    def decode(cls, raw: bytes) -> "RfcommFrame":
        """Parse a frame and verify its FCS.

        :raises PacketDecodeError: on truncation, length mismatch or a
            bad frame check sequence.
        """
        if len(raw) < 4:
            raise PacketDecodeError(f"RFCOMM frame too short: {len(raw)} bytes")
        address, control = raw[0], raw[1]
        if not address & 0x01:
            raise PacketDecodeError("address EA bit not set (extended addresses unsupported)")
        offset = 2
        length_byte = raw[offset]
        if length_byte & 0x01:
            length = length_byte >> 1
            offset += 1
        else:
            if len(raw) < 5:
                raise PacketDecodeError("truncated two-byte length")
            length = (length_byte >> 1) | (raw[offset + 1] << 7)
            offset += 2
        header = raw[:offset]
        payload = raw[offset : offset + length]
        if len(payload) != length or offset + length + 1 > len(raw):
            raise PacketDecodeError("RFCOMM length disagrees with frame size")
        received_fcs = raw[offset + length]

        frame_type = control & 0xEF
        checked = header[:2] if frame_type == FrameType.UIH else header
        if not fcs_ok(checked, received_fcs):
            raise PacketDecodeError("RFCOMM FCS check failed")

        return cls(
            dlci=(address >> 2) & 0x3F,
            frame_type=frame_type,
            payload=payload,
            poll_final=bool(control & POLL_FINAL),
            command=bool(address & 0x02),
        )


def sabm(dlci: int) -> RfcommFrame:
    """Build a SABM (connect) frame."""
    return RfcommFrame(dlci, FrameType.SABM)


def ua(dlci: int) -> RfcommFrame:
    """Build a UA (accept) frame."""
    return RfcommFrame(dlci, FrameType.UA, command=False)


def dm(dlci: int) -> RfcommFrame:
    """Build a DM (reject) frame."""
    return RfcommFrame(dlci, FrameType.DM, command=False)


def disc(dlci: int) -> RfcommFrame:
    """Build a DISC (disconnect) frame."""
    return RfcommFrame(dlci, FrameType.DISC)


def uih(dlci: int, payload: bytes = b"") -> RfcommFrame:
    """Build a UIH (data) frame."""
    return RfcommFrame(dlci, FrameType.UIH, payload=payload, poll_final=False)
