"""RFCOMM protocol constants (ETSI TS 07.10 subset used by Bluetooth).

RFCOMM is the serial-port emulation layer riding on L2CAP PSM 0x0003.
The paper's §V argues the L2Fuzz methodology transfers to it: RFCOMM has
its own state machine (per-DLCI multiplexer states) and its own
core-vs-application field split (the DLCI/address plumbing vs the
payload), so state guiding and core-field mutating apply unchanged.
"""

from __future__ import annotations

import enum


class FrameType(enum.IntEnum):
    """RFCOMM frame-type control values (P/F bit cleared)."""

    SABM = 0x2F  # Set Asynchronous Balanced Mode (connect)
    UA = 0x63  # Unnumbered Acknowledgement (accept)
    DM = 0x0F  # Disconnected Mode (reject / no such channel)
    DISC = 0x43  # Disconnect
    UIH = 0xEF  # Unnumbered Information with Header check (data)


#: The Poll/Final bit within the control field.
POLL_FINAL = 0x10

#: DLCI 0 is the multiplexer control channel; it must be opened first.
CONTROL_DLCI = 0

#: Largest DLCI value (6 bits).
MAX_DLCI = 63

#: Default maximum RFCOMM frame payload.
DEFAULT_MAX_FRAME_SIZE = 127


def dlci_for_server_channel(server_channel: int, initiator: bool = True) -> int:
    """Map an RFCOMM server channel (1..30) to its DLCI.

    DLCI = channel << 1 | direction-bit; the direction bit is the
    *opposite* of the initiator's role bit.
    """
    if not 1 <= server_channel <= 30:
        raise ValueError(f"server channel {server_channel} out of range")
    return (server_channel << 1) | (0 if initiator else 1)


# -- FCS (CRC-8, polynomial x^8 + x^2 + x + 1, reflected) ----------------------


def _build_fcs_table() -> tuple[int, ...]:
    table = []
    for value in range(256):
        crc = value
        for _ in range(8):
            if crc & 0x01:
                crc = (crc >> 1) ^ 0xE0
            else:
                crc >>= 1
        table.append(crc)
    return tuple(table)


_FCS_TABLE = _build_fcs_table()


def fcs(data: bytes) -> int:
    """Compute the RFCOMM frame check sequence over *data*."""
    crc = 0xFF
    for byte in data:
        crc = _FCS_TABLE[crc ^ byte]
    return 0xFF - crc


def fcs_ok(data: bytes, received: int) -> bool:
    """Verify a received FCS against *data*."""
    return fcs(data) == received
