"""RFCOMM substrate: codec, mux and constants.

The paper's §V protocol-transfer demonstration — fuzzing this mux with
state guiding and core-field mutating — lives in
:class:`repro.targets.rfcomm.RfcommTarget`, which runs RFCOMM campaigns
through the same engine, corpus and fleet machinery as every other
protocol (the old standalone ``RfcommFuzzer`` is gone).
"""

from repro.rfcomm.constants import CONTROL_DLCI, FrameType, fcs
from repro.rfcomm.frames import RfcommFrame, disc, dm, sabm, ua, uih
from repro.rfcomm.mux import DlciState, RfcommMux

__all__ = [
    "CONTROL_DLCI",
    "DlciState",
    "FrameType",
    "RfcommFrame",
    "RfcommMux",
    "disc",
    "dm",
    "fcs",
    "sabm",
    "ua",
    "uih",
]
