"""RFCOMM substrate: the paper's §V protocol-transfer demonstration."""

from repro.rfcomm.constants import CONTROL_DLCI, FrameType, fcs
from repro.rfcomm.frames import RfcommFrame, disc, dm, sabm, ua, uih
from repro.rfcomm.fuzzer import RfcommFuzzer, RfcommFuzzReport
from repro.rfcomm.mux import DlciState, RfcommMux

__all__ = [
    "CONTROL_DLCI",
    "DlciState",
    "FrameType",
    "RfcommFrame",
    "RfcommFuzzReport",
    "RfcommFuzzer",
    "RfcommMux",
    "disc",
    "dm",
    "fcs",
    "sabm",
    "ua",
    "uih",
]
