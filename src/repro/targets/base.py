"""The protocol-agnostic fuzz-target interface.

The paper's method — state guiding, core-field mutating, vulnerability
detecting — is protocol-generic (§V), but the seed engine hard-wired it
to L2CAP. A :class:`FuzzTarget` packages everything the campaign engine
needs to fuzz one protocol:

* a **state model** — the ordered state plan the guide walks (states are
  enum members; their ``.value`` strings become coverage tokens, corpus
  keys and report rows);
* a **guide** — routes the target into each plan state using only valid
  frames (phase 2);
* a **mutator** — produces valid-malformed frames for the current state
  (phase 3), wrapped as L2CAP wire packets so the whole transport,
  sniffer, corpus and replay machinery works unchanged;
* **codec hooks** — encode/decode the protocol's payload unit and
  expose the wire bytes, feeding the cross-protocol property suite;
* a **structural-validity predicate** — "would a conformant parser
  accept this frame?", the boundary the mutator must stay inside;
* **coverage / finding keys** — the target's name flows into corpus
  entry IDs and :func:`repro.core.detection.finding_key`, so findings
  from different protocols never collapse into one bucket.

Targets register themselves in a module-level registry. Registration
validates the full hook surface up front: a target missing a required
hook fails at import/registration time, not mid-campaign.
"""

from __future__ import annotations

import dataclasses
import random
import struct
from collections.abc import Sequence
from typing import Protocol, runtime_checkable

#: Probability that a protocol mutator's garbage tail is spliced from the
#: corpus dictionary instead of drawn fresh (matches
#: :attr:`repro.core.mutation.CoreFieldMutator.SPLICE_RATE`).
SPLICE_RATE = 0.25


def draw_garbage(
    rng: random.Random,
    max_garbage: int,
    dictionary: Sequence[bytes] = (),
    headroom: int | None = None,
) -> bytes:
    """Draw a Fig.-7-style garbage tail for a protocol mutator.

    Mirrors the L2CAP core mutator's tail discipline so every target
    shares the corpus splice behaviour: with a non-empty *dictionary* a
    quarter of the tails splice a harvested token, the rest are fresh
    random bytes of 1..``max_garbage`` (clamped to *headroom* when set).
    """
    limit = max_garbage if headroom is None else min(max_garbage, headroom)
    if limit <= 0:
        return b""
    if dictionary and rng.random() < SPLICE_RATE:
        token = dictionary[rng.randrange(len(dictionary))]
        return token[:limit]
    length = rng.randint(1, limit)
    return bytes(rng.getrandbits(8) for _ in range(length))


def wire_data_frame(target_cid: int, payload: bytes):
    """Wrap a protocol payload as an L2CAP data frame to *target_cid*.

    Every non-L2CAP target ships its frames this way, exactly as on a
    real link, so the transport, sniffer, corpus and replay machinery
    is shared unchanged.
    """
    from repro.l2cap.packets import L2capPacket

    return L2capPacket(
        code=0,
        identifier=0,
        header_cid=target_cid,
        tail=payload,
        fill_defaults=False,
    )


def wire_data_frame_fast(target_cid: int, payload: bytes):
    """Bytes-level twin of :func:`wire_data_frame` (primed encode cache).

    Produces a packet indistinguishable from
    ``wire_data_frame(target_cid, payload)`` — same fields, same wire
    image — but assembles the 4-byte B-frame header itself and hands the
    finished bytes to :meth:`~repro.l2cap.packets.L2capPacket.from_wire_parts`,
    skipping the constructor's field machinery and the later
    ``encode()`` pass. This is the ``mutate_wire`` building block for
    every target whose fuzz frames ride as data frames.
    """
    from repro.l2cap.packets import L2capPacket

    return L2capPacket.from_wire_parts(
        code=0,
        identifier=0,
        field_values={},
        tail=payload,
        garbage=b"",
        wire=struct.pack("<HH", len(payload), target_cid) + payload,
        spec=None,
        header_cid=target_cid,
    )


def open_l2cap_channel(queue, psm: int, our_cid: int, failure_message: str) -> int:
    """Open the L2CAP channel a protocol session rides on.

    Sends one valid Connection Request and returns the CID the target
    allocated. Shared by every non-L2CAP guide so the handshake (and
    any future fix to it) lives in one place.

    :raises ScanError: with *failure_message* when the port refuses.
    :raises TransportError: if the target dies during the handshake.
    """
    from repro.errors import ScanError
    from repro.l2cap.constants import CommandCode, ConnectionResult
    from repro.l2cap.packets import connection_request

    responses = queue.exchange(
        connection_request(
            psm=psm, scid=our_cid, identifier=queue.take_identifier()
        )
    )
    for response in responses:
        if (
            response.code == CommandCode.CONNECTION_RSP
            and response.fields.get("result") == ConnectionResult.SUCCESS
        ):
            return response.fields.get("dcid", 0)
    raise ScanError(failure_message)


@dataclasses.dataclass
class GuidedPosition:
    """Where the guide parked the target.

    :param state: the plan state (an enum member; ``.value`` is its name).
    :param label: human label for the state's command family (the L2CAP
        job name, the RFCOMM mux role, ...) — appears in the campaign log.
    :param context: opaque per-protocol routing context (live channel,
        learned handles, open DLCIs); consumed only by the owning target.
    """

    state: object
    label: str
    context: object = None


@runtime_checkable
class TargetGuide(Protocol):
    """Phase-2 router for one protocol (built per campaign).

    Optional extras the engine honours when present:

    * ``confirmed_states`` — a set of plan states whose routing
      handshake the target demonstrably answered (feeds the default
      :meth:`FuzzTarget.covered_states`);
    * ``on_target_reset()`` — called after a crashed target is reset in
      an auto-reset campaign, so cached channels/sessions that died
      with the old stack instance are dropped and re-established.
    """

    def plan(self) -> tuple:
        """The ordered states this campaign will visit (shallow→deep)."""
        ...

    def enter(self, state) -> GuidedPosition:
        """Drive the target into *state* with valid frames.

        :raises TransportError: if the target dies during routing.
        """
        ...

    def leave(self, position: GuidedPosition) -> None:
        """Tear down whatever the route built (valid teardown frames)."""
        ...


@runtime_checkable
class TargetMutator(Protocol):
    """Phase-3 generator for one protocol (built per campaign).

    Optional extra the engine honours when present (and
    ``FuzzConfig.wire_fast_path`` is on):

    * ``mutate_wire(position, command, identifier)`` — the bytes-level
      fast path. Must return a packet **byte-identical** to what
      :meth:`mutate` would have produced for the same call, consuming
      the RNG stream identically (same draws, same order), or None when
      this mutation plan needs field semantics — the engine then falls
      back to :meth:`mutate` for that packet. The returned packet
      usually carries a primed encode cache
      (:meth:`~repro.l2cap.packets.L2capPacket.from_wire_parts` /
      :func:`wire_data_frame_fast`), so the single wire serialisation
      the transport needs is the one the mutator already did.
    """

    def mutate(self, position: GuidedPosition, command, identifier: int):
        """Build one valid-malformed wire packet for *command*.

        Returns an :class:`~repro.l2cap.packets.L2capPacket` — either a
        signaling command (the L2CAP target) or a data frame carrying
        the protocol's mutated payload (every other target).
        """
        ...


#: The hook surface every registered target must provide. Each entry is
#: ``(attribute, is_callable)``; registration checks presence and shape.
REQUIRED_HOOKS: tuple[tuple[str, bool], ...] = (
    ("name", False),
    ("state_universe", True),
    ("state_plan", True),
    ("fallback_state", True),
    ("build_guide", True),
    ("build_mutator", True),
    ("commands_for", True),
    ("encode_payload", True),
    ("decode_payload", True),
    ("is_structurally_valid", True),
    ("covered_states", True),
    ("prepare_device", True),
)


class FuzzTarget:
    """Base class (and documentation) for protocol targets.

    Subclasses must provide every hook in :data:`REQUIRED_HOOKS`:

    * ``name`` — registry key ("l2cap", "rfcomm", ...); flows into
      corpus entry IDs, finding keys and fleet reports.
    * ``state_universe()`` — every state of the protocol's model (the
      coverage denominator).
    * ``state_plan()`` — the ordered subset a campaign routes through.
    * ``fallback_state()`` — posture fuzzed when state guiding is
      ablated away.
    * ``build_guide(queue, scan)`` — phase-2 router.
    * ``build_mutator(config, rng, dictionary)`` — phase-3 generator.
    * ``commands_for(position)`` — the valid commands of the state the
      guide just entered, in deterministic order.
    * ``encode_payload(obj)`` / ``decode_payload(raw)`` — protocol codec
      (the payload unit inside the wire packet).
    * ``is_structurally_valid(payload)`` — would a conformant parser
      accept these payload bytes?
    * ``covered_states(fuzzer)`` — the campaign's demonstrated coverage.
    * ``prepare_device(device, armed)`` — wire the protocol's server
      into a virtual device (and lift pairing gates the way a paired
      dongle would); a no-op for protocols the stack serves by default.
    """

    name: str = ""

    # -- convenience defaults -------------------------------------------------------

    def fallback_state(self):
        """Ablation posture: the shallowest plan state by default."""
        return self.state_plan()[0]

    def state_universe(self) -> tuple:
        """Defaults to the plan (protocols modelled plan == universe)."""
        return self.state_plan()

    def prepare_device(self, device, armed: bool = True) -> None:
        """Default: the stack already serves this protocol."""

    def covered_states(self, fuzzer) -> frozenset:
        """Default: the states the guide *confirmed* the target entered.

        A guide that exposes a ``confirmed_states`` set (states whose
        routing handshake was answered as expected — the protocol
        analogue of L2CAP's wire-inferred coverage) is trusted over the
        raw visit counter, which only records that routing was
        *attempted*.
        """
        confirmed = getattr(fuzzer.guide, "confirmed_states", None)
        if confirmed is not None:
            return frozenset(confirmed)
        return frozenset(fuzzer.state_visits)


class TargetRegistrationError(TypeError):
    """A target was registered without its full hook surface."""


_REGISTRY: dict[str, type] = {}


def register_target(target_cls: type) -> type:
    """Register *target_cls* after validating its hook surface.

    Usable as a class decorator. Fails fast — at registration, never
    mid-campaign — when a required hook is missing or not callable.

    :raises TargetRegistrationError: on a missing/malformed hook or a
        duplicate/empty name.
    """
    for attribute, expect_callable in REQUIRED_HOOKS:
        if not hasattr(target_cls, attribute):
            raise TargetRegistrationError(
                f"fuzz target {target_cls.__name__!r} is missing required "
                f"hook {attribute!r}"
            )
        if expect_callable and not callable(getattr(target_cls, attribute)):
            raise TargetRegistrationError(
                f"fuzz target {target_cls.__name__!r} hook {attribute!r} "
                "must be callable"
            )
    name = target_cls.name
    if not isinstance(name, str) or not name:
        raise TargetRegistrationError(
            f"fuzz target {target_cls.__name__!r} must declare a non-empty "
            "string name"
        )
    if name in _REGISTRY and _REGISTRY[name] is not target_cls:
        raise TargetRegistrationError(f"fuzz target {name!r} already registered")
    _REGISTRY[name] = target_cls
    return target_cls


def target_names() -> tuple[str, ...]:
    """Registered target names, in registration order."""
    return tuple(_REGISTRY)


def make_target(name: str) -> FuzzTarget:
    """Build a target from its registry name.

    :raises ValueError: for an unknown name, listing the valid ones.
    """
    target_cls = _REGISTRY.get(name)
    if target_cls is None:
        raise ValueError(
            f"unknown fuzz target {name!r}; choose from {', '.join(_REGISTRY)}"
        )
    return target_cls()
