"""Protocol fuzz targets: one campaign engine, many protocols.

Importing this package registers the four built-in targets (l2cap,
rfcomm, sdp, obex). :func:`make_target` builds one by name;
:func:`target_names` lists the registry for CLI choices and fleets.
"""

from repro.targets.base import (
    FuzzTarget,
    GuidedPosition,
    REQUIRED_HOOKS,
    TargetGuide,
    TargetMutator,
    TargetRegistrationError,
    draw_garbage,
    make_target,
    register_target,
    target_names,
)
# Import order is registration order is presentation order.
from repro.targets.l2cap import L2capTarget
from repro.targets.rfcomm import RfcommMuxState, RfcommTarget
from repro.targets.sdp import SdpSessionState, SdpTarget
from repro.targets.obex import OBEX_PSM, ObexSessionState, ObexTarget

#: Registered target names, in presentation order.
TARGET_NAMES: tuple[str, ...] = target_names()

__all__ = [
    "FuzzTarget",
    "GuidedPosition",
    "L2capTarget",
    "OBEX_PSM",
    "ObexSessionState",
    "ObexTarget",
    "REQUIRED_HOOKS",
    "RfcommMuxState",
    "RfcommTarget",
    "SdpSessionState",
    "SdpTarget",
    "TARGET_NAMES",
    "TargetGuide",
    "TargetMutator",
    "TargetRegistrationError",
    "draw_garbage",
    "make_target",
    "register_target",
    "target_names",
]
