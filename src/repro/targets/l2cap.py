"""The L2CAP fuzz target — the paper's method as the reference plugin.

This is a thin adapter: it owns no new behaviour, it repackages the
seed's phase-2/phase-3 machinery (:class:`~repro.core.state_guiding.StateGuide`,
:class:`~repro.core.mutation.CoreFieldMutator`, the Table III valid-command
map) behind the :class:`~repro.targets.base.FuzzTarget` interface. A
campaign run through this target is byte-identical to the pre-redesign
engine: same RNG stream, same identifiers, same packets, same metrics.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.core.config import FuzzConfig
from repro.core.mutation import CoreFieldMutator
from repro.core.state_guiding import STATE_PLAN, StateGuide
from repro.l2cap.constants import MIN_SIGNALING_MTU
from repro.l2cap.jobs import JOB_VALID_COMMANDS
from repro.l2cap.packets import L2capPacket
from repro.l2cap.states import ALL_STATES, ChannelState
from repro.l2cap.validation import structural_reject_reason
from repro.targets.base import (
    FuzzTarget,
    GuidedPosition,
    register_target,
)


class _L2capGuide:
    """Wraps :class:`StateGuide` into the generic guide protocol."""

    def __init__(self, queue, scan) -> None:
        self._guide = StateGuide(queue, scan)

    def plan(self) -> tuple[ChannelState, ...]:
        return self._guide.plan()

    def enter(self, state: ChannelState) -> GuidedPosition:
        guided = self._guide.enter(state)
        return GuidedPosition(state=state, label=guided.job.value, context=guided)

    def leave(self, position: GuidedPosition) -> None:
        self._guide.leave(position.context)


class _L2capMutator:
    """Wraps :class:`CoreFieldMutator` into the generic mutator protocol."""

    def __init__(self, core: CoreFieldMutator) -> None:
        self.core = core
        self._mutate_wire = core.mutate_wire

    def mutate(self, position: GuidedPosition, command, identifier: int) -> L2capPacket:
        return self.core.mutate(command, identifier)

    def mutate_wire(
        self, position: GuidedPosition, command, identifier: int
    ) -> L2capPacket | None:
        """Bytes-level fast path (see :class:`~repro.targets.base.TargetMutator`)."""
        return self._mutate_wire(command, identifier)


@register_target
class L2capTarget(FuzzTarget):
    """Stateful L2CAP fuzzing (paper §III), as a pluggable target."""

    name = "l2cap"

    def state_universe(self) -> tuple[ChannelState, ...]:
        return ALL_STATES

    def state_plan(self) -> tuple[ChannelState, ...]:
        return STATE_PLAN

    def fallback_state(self) -> ChannelState:
        # Ablation: stateless fuzzing from the CLOSED posture only.
        return ChannelState.CLOSED

    def build_guide(self, queue, scan) -> _L2capGuide:
        return _L2capGuide(queue, scan)

    def build_mutator(
        self,
        config: FuzzConfig,
        rng: random.Random,
        dictionary: Iterable[bytes] = (),
    ) -> _L2capMutator:
        return _L2capMutator(CoreFieldMutator(config, rng, dictionary=dictionary))

    def commands_for(self, position: GuidedPosition) -> tuple:
        return tuple(sorted(JOB_VALID_COMMANDS[position.context.job]))

    # -- codec hooks ----------------------------------------------------------------

    def encode_payload(self, packet: L2capPacket) -> bytes:
        return packet.encode()

    def decode_payload(self, raw: bytes) -> L2capPacket:
        return L2capPacket.decode(raw)

    def is_structurally_valid(self, payload: bytes) -> bool:
        """A conformant signaling parser accepts these bytes."""
        try:
            packet = L2capPacket.decode(payload)
        except Exception:
            return False
        if packet.is_data_frame:
            return True
        return structural_reject_reason(packet, MIN_SIGNALING_MTU) is None

    # -- analysis -------------------------------------------------------------------

    def covered_states(self, fuzzer) -> frozenset[ChannelState]:
        """Wire-inferred PRETT-style coverage (the paper's §IV.D metric)."""
        from repro.analysis.state_coverage import state_coverage

        return state_coverage(fuzzer.sniffer)
