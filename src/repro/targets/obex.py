"""The OBEX fuzz target (GOEP: OBEX directly over L2CAP).

OBEX is the object-exchange layer of the paper's §II.A file-transfer
scenario. The guide models the session the way a client experiences it:
DISCONNECTED (only CONNECT is valid) → CONNECTED (PUT/GET/DISCONNECT
become valid) → LOADED (an object is in the inbox, so GET has something
real to address). The mutator keeps the packet framing dependent fields
valid — the declared packet length always matches the bytes present, so
the server's parser accepts the packet — while poisoning the core
addressing fields (object names, connection ids, connect parameters)
and smuggling a garbage region in as a well-formed unknown header.

The target mounts the real :class:`~repro.obex.server.ObexServer` on
the GOEP L2CAP PSM (0x1001), the Bluetooth "OBEX over L2CAP" transport,
so campaigns drive the same server the stack serves over RFCOMM.
"""

from __future__ import annotations

import dataclasses
import enum
import random
from collections.abc import Iterable

from repro.core.config import FuzzConfig
from repro.l2cap.packets import L2capPacket
from repro.obex.constants import HeaderId, Opcode, ResponseCode
from repro.obex.packets import (
    ObexHeader,
    ObexPacket,
    connect_request,
    put_request,
)
from repro.targets.base import (
    FuzzTarget,
    GuidedPosition,
    draw_garbage,
    open_l2cap_channel,
    register_target,
    wire_data_frame,
    wire_data_frame_fast,
)

#: GOEP L2CAP PSM (Bluetooth assigned number for OBEX over L2CAP).
OBEX_PSM = 0x1001

#: An unknown BYTES-layout header id: parses cleanly, means nothing —
#: the OBEX analogue of the Fig. 7 garbage tail.
GARBAGE_HEADER_ID = 0x4F


class ObexSessionState(enum.Enum):
    """OBEX session states, shallow to deep."""

    OBEX_DISCONNECTED = "OBEX_DISCONNECTED"
    OBEX_CONNECTED = "OBEX_CONNECTED"
    OBEX_LOADED = "OBEX_LOADED"


#: Valid request opcodes per session state.
STATE_OPCODES: dict[ObexSessionState, tuple[Opcode, ...]] = {
    ObexSessionState.OBEX_DISCONNECTED: (Opcode.CONNECT,),
    ObexSessionState.OBEX_CONNECTED: (
        Opcode.CONNECT,
        Opcode.DISCONNECT,
        Opcode.PUT_FINAL,
        Opcode.GET_FINAL,
    ),
    ObexSessionState.OBEX_LOADED: (
        Opcode.DISCONNECT,
        Opcode.PUT_FINAL,
        Opcode.GET_FINAL,
    ),
}

OBEX_PLAN: tuple[ObexSessionState, ...] = (
    ObexSessionState.OBEX_DISCONNECTED,
    ObexSessionState.OBEX_CONNECTED,
    ObexSessionState.OBEX_LOADED,
)

#: The object the guide seeds the inbox with for the LOADED state.
SEED_OBJECT = ("seed.txt", b"l2fuzz-goep-seed")


@dataclasses.dataclass
class ObexChannel:
    """The L2CAP channel the OBEX session rides on."""

    our_cid: int
    target_cid: int


class _ObexGuide:
    """Routes the OBEX session into each plan state with valid requests.

    Coverage is *confirmed*: a state only lands in
    :attr:`confirmed_states` when the server answered the routing
    request with the response that posture requires (SUCCESS for
    CONNECT and the seed PUT; any reply for the disconnected posture).
    """

    def __init__(self, queue, scan, our_base_cid: int = 0x0D00) -> None:
        self.queue = queue
        self.scan = scan
        self._next_cid = our_base_cid
        self._channel: ObexChannel | None = None
        self.confirmed_states: set[ObexSessionState] = set()

    def plan(self) -> tuple[ObexSessionState, ...]:
        return OBEX_PLAN

    def enter(self, state: ObexSessionState) -> GuidedPosition:
        channel = self._ensure_channel()
        # Idempotent normalisation: fuzz packets between visits may have
        # connected or disconnected the session arbitrarily.
        if state is ObexSessionState.OBEX_DISCONNECTED:
            code = self._request(channel, ObexPacket(Opcode.DISCONNECT).encode())
            # SUCCESS or FORBIDDEN both prove a live server that is now
            # (or already was) disconnected.
            confirmed = code is not None
        else:
            connected = (
                self._request(channel, connect_request().encode(), connect=True)
                == ResponseCode.SUCCESS
            )
            confirmed = connected
            if state is ObexSessionState.OBEX_LOADED:
                loaded = (
                    self._request(channel, put_request(*SEED_OBJECT).encode())
                    == ResponseCode.SUCCESS
                )
                confirmed = connected and loaded
        if confirmed:
            self.confirmed_states.add(state)
        return GuidedPosition(state=state, label="Session", context=channel)

    def leave(self, position: GuidedPosition) -> None:
        """Valid teardown: close the session so the next route is clean."""
        self._request(position.context, ObexPacket(Opcode.DISCONNECT).encode())

    def on_target_reset(self) -> None:
        """The cached channel died with the old stack; reconnect lazily."""
        self._channel = None

    # -- plumbing -------------------------------------------------------------------

    def _ensure_channel(self) -> ObexChannel:
        if self._channel is not None:
            return self._channel
        our_cid = self._next_cid
        self._next_cid += 1
        target_cid = open_l2cap_channel(
            self.queue,
            OBEX_PSM,
            our_cid,
            "target exposes no OBEX-over-L2CAP port (PSM 0x1001); the obex "
            "target mounts one on profile devices automatically",
        )
        self._channel = ObexChannel(our_cid=our_cid, target_cid=target_cid)
        return self._channel

    def _request(
        self, channel: ObexChannel, payload: bytes, connect: bool = False
    ) -> int | None:
        """Send one request; return the server's response code, if any."""
        for response in self.queue.exchange(
            wire_data_frame(channel.target_cid, payload)
        ):
            if response.header_cid != channel.our_cid:
                continue
            try:
                reply = ObexPacket.decode(
                    bytes(response.tail), has_connect_extras=connect
                )
            except Exception:
                continue
            return reply.code
        return None


class _ObexMutator:
    """Core-field mutation of OBEX requests with valid framing."""

    def __init__(
        self,
        config: FuzzConfig,
        rng: random.Random,
        dictionary: Iterable[bytes] = (),
    ) -> None:
        self.config = config
        self.rng = rng
        self.dictionary = tuple(tail for tail in dictionary if tail)

    def _fuzz_payload(self, command: Opcode) -> bytes:
        """One mutated request as raw channel payload (shared by both paths)."""
        headers: list[ObexHeader] = []
        extras = None
        if command == Opcode.CONNECT:
            # Poisoned session parameters: wild version/flags/MTU claims.
            extras = (
                self.rng.getrandbits(8),
                self.rng.getrandbits(8),
                self.rng.getrandbits(16),
            )
        if command in (Opcode.PUT_FINAL, Opcode.GET_FINAL):
            headers.append(ObexHeader(HeaderId.NAME, self._random_name()))
        if command == Opcode.PUT_FINAL:
            body = bytes(
                self.rng.getrandbits(8) for _ in range(self.rng.randint(0, 8))
            )
            headers.append(ObexHeader(HeaderId.LENGTH, self.rng.getrandbits(32)))
            headers.append(ObexHeader(HeaderId.END_OF_BODY, body))
        if self.rng.random() < 0.5:
            # A connection id the server never issued (CIDP analogue).
            headers.append(
                ObexHeader(HeaderId.CONNECTION_ID, self.rng.getrandbits(32))
            )
        if self.config.append_garbage:
            garbage = draw_garbage(
                self.rng, self.config.max_garbage, self.dictionary
            )
            if garbage:
                headers.append(ObexHeader(GARBAGE_HEADER_ID, garbage))
        return ObexPacket(command, tuple(headers), connect_extras=extras).encode()

    def mutate(
        self, position: GuidedPosition, command: Opcode, identifier: int
    ) -> L2capPacket:
        return wire_data_frame(
            position.context.target_cid, self._fuzz_payload(command)
        )

    def mutate_wire(
        self, position: GuidedPosition, command: Opcode, identifier: int
    ) -> L2capPacket:
        """Bytes-level fast path: same payload, pre-assembled wire frame."""
        return wire_data_frame_fast(
            position.context.target_cid, self._fuzz_payload(command)
        )

    def _random_name(self) -> str:
        length = self.rng.randint(0, 12)
        return "".join(
            chr(self.rng.randrange(0x20, 0x7F)) for _ in range(length)
        )


@register_target
class ObexTarget(FuzzTarget):
    """Stateful OBEX session fuzzing against the real object-push server."""

    name = "obex"

    def state_plan(self) -> tuple[ObexSessionState, ...]:
        return OBEX_PLAN

    def build_guide(self, queue, scan) -> _ObexGuide:
        return _ObexGuide(queue, scan)

    def build_mutator(
        self,
        config: FuzzConfig,
        rng: random.Random,
        dictionary: Iterable[bytes] = (),
    ) -> _ObexMutator:
        return _ObexMutator(config, rng, dictionary)

    def commands_for(self, position: GuidedPosition) -> tuple[Opcode, ...]:
        return tuple(sorted(STATE_OPCODES[position.state]))

    # -- codec hooks ----------------------------------------------------------------

    def encode_payload(self, packet: ObexPacket) -> bytes:
        return packet.encode()

    def decode_payload(self, raw: bytes) -> ObexPacket:
        return ObexPacket.decode(raw)

    def is_structurally_valid(self, payload: bytes) -> bool:
        """The packet framing parses (declared length matches exactly)."""
        try:
            ObexPacket.decode(payload)
        except Exception:
            return False
        return True

    # -- device wiring --------------------------------------------------------------

    def prepare_device(self, device, armed: bool = True) -> None:
        """Mount the real OBEX server on the GOEP PSM."""
        from repro.obex.server import ObexServer
        from repro.stack.services import ServiceRecord

        if not device.services.supports(OBEX_PSM):
            device.services.override(ServiceRecord(OBEX_PSM, "OBEX Object Push"))
        server = ObexServer()
        device.engine.data_handlers[OBEX_PSM] = server.handle_request
        device.obex_server = server
