"""The SDP fuzz target (paper §V: the method extends to SDP).

SDP looks stateless on the wire, but a *client session* has structure a
stateful fuzzer can exploit: a search must succeed before a record
handle is known, and an attribute read must succeed before the full
search-attribute combination is worth mutating. The guide models that
as a three-state session (IDLE → SEARCHED → ATTRIBUTED), learning live
record handles along the way so the mutator can poison them — the SDP
analogue of the CIDP mutation (a handle field that ignores the server's
actual allocation).

Mutation keeps the PDU header dependent fields valid — the pdu_id is
valid for the session state, the transaction id is fresh, and
``parameter_length`` always agrees with the bytes present so the PDU
framing parses — while the *parameters* carry abnormal core values
(random record handles, random UUID patterns, abnormal attribute-range
encodings) plus a garbage region inside the parameter block.
"""

from __future__ import annotations

import dataclasses
import enum
import random
import struct
from collections.abc import Iterable

from repro.core.config import FuzzConfig
from repro.l2cap.constants import Psm
from repro.l2cap.packets import L2capPacket
from repro.sdp.constants import PduId, ServiceClass
from repro.sdp.data_elements import sequence, uint32, uuid16
from repro.sdp.pdu import (
    NO_CONTINUATION,
    SdpPdu,
    ServiceAttributeRequest,
    ServiceSearchRequest,
    ServiceSearchResponse,
)
from repro.targets.base import (
    FuzzTarget,
    GuidedPosition,
    draw_garbage,
    open_l2cap_channel,
    register_target,
    wire_data_frame,
    wire_data_frame_fast,
)


class SdpSessionState(enum.Enum):
    """Client-session states, shallow to deep."""

    SDP_IDLE = "SDP_IDLE"
    SDP_SEARCHED = "SDP_SEARCHED"
    SDP_ATTRIBUTED = "SDP_ATTRIBUTED"


#: Valid request PDUs per session state.
STATE_PDUS: dict[SdpSessionState, tuple[PduId, ...]] = {
    SdpSessionState.SDP_IDLE: (PduId.SERVICE_SEARCH_REQUEST,),
    SdpSessionState.SDP_SEARCHED: (
        PduId.SERVICE_SEARCH_REQUEST,
        PduId.SERVICE_ATTRIBUTE_REQUEST,
    ),
    SdpSessionState.SDP_ATTRIBUTED: (
        PduId.SERVICE_SEARCH_REQUEST,
        PduId.SERVICE_ATTRIBUTE_REQUEST,
        PduId.SERVICE_SEARCH_ATTRIBUTE_REQUEST,
    ),
}

SDP_PLAN: tuple[SdpSessionState, ...] = (
    SdpSessionState.SDP_IDLE,
    SdpSessionState.SDP_SEARCHED,
    SdpSessionState.SDP_ATTRIBUTED,
)


@dataclasses.dataclass
class SdpSession:
    """Routing context: the SDP channel plus learned record handles."""

    our_cid: int
    target_cid: int
    handles: tuple[int, ...] = ()


class _SdpGuide:
    """Routes the client session through valid search/attribute steps.

    Coverage is *confirmed*: a state only lands in
    :attr:`confirmed_states` when the server answered the routing
    request with the matching response PDU (a decoded search response
    for SEARCHED, an attribute response on a live handle for
    ATTRIBUTED) — attempted routing alone never counts.
    """

    def __init__(self, queue, scan, our_base_cid: int = 0x0B00) -> None:
        self.queue = queue
        self.scan = scan
        self._next_cid = our_base_cid
        self._session: SdpSession | None = None
        self._transaction = 0
        self.confirmed_states: set[SdpSessionState] = set()

    def plan(self) -> tuple[SdpSessionState, ...]:
        return SDP_PLAN

    def enter(self, state: SdpSessionState) -> GuidedPosition:
        session = self._ensure_session()
        if state is SdpSessionState.SDP_IDLE:
            # The live channel is the whole posture.
            self.confirmed_states.add(state)
        else:
            searched = self._valid_search(session)
            if state is SdpSessionState.SDP_SEARCHED and searched:
                self.confirmed_states.add(state)
            if state is SdpSessionState.SDP_ATTRIBUTED:
                if (
                    searched
                    and session.handles
                    and self._valid_attribute(session, session.handles[0])
                ):
                    self.confirmed_states.add(state)
        return GuidedPosition(state=state, label="Discovery", context=session)

    def leave(self, position: GuidedPosition) -> None:
        """SDP sessions have no teardown beyond the channel (kept open)."""

    def on_target_reset(self) -> None:
        """The cached channel died with the old stack; reconnect lazily."""
        self._session = None

    # -- valid exchanges ------------------------------------------------------------

    def _take_transaction(self) -> int:
        self._transaction = (self._transaction + 1) & 0xFFFF
        return self._transaction

    def _ensure_session(self) -> SdpSession:
        if self._session is not None:
            return self._session
        our_cid = self._next_cid
        self._next_cid += 1
        target_cid = open_l2cap_channel(
            self.queue,
            Psm.SDP,
            our_cid,
            "SDP port did not accept a connection",
        )
        self._session = SdpSession(our_cid=our_cid, target_cid=target_cid)
        return self._session

    def _request(self, session: SdpSession, pdu: SdpPdu) -> SdpPdu | None:
        """Send one PDU; return the server's decoded reply, if any."""
        for response in self.queue.exchange(
            wire_data_frame(session.target_cid, pdu.encode())
        ):
            if response.header_cid != session.our_cid:
                continue
            try:
                return SdpPdu.decode(response.tail)
            except Exception:
                continue
        return None

    def _valid_search(self, session: SdpSession) -> bool:
        """One spec-clean ServiceSearchRequest; harvest the handles."""
        request = ServiceSearchRequest(
            search_pattern=sequence(uuid16(ServiceClass.PUBLIC_BROWSE_ROOT)),
            max_record_count=16,
        )
        reply = self._request(
            session,
            SdpPdu(
                PduId.SERVICE_SEARCH_REQUEST,
                self._take_transaction(),
                request.encode(),
            ),
        )
        if reply is None or reply.pdu_id != PduId.SERVICE_SEARCH_RESPONSE:
            return False
        try:
            session.handles = ServiceSearchResponse.decode(reply.parameters).handles
        except Exception:
            return False
        return True

    def _valid_attribute(self, session: SdpSession, handle: int) -> bool:
        """One spec-clean ServiceAttributeRequest on a live handle."""
        request = ServiceAttributeRequest(
            record_handle=handle,
            max_attribute_bytes=0xFFFF,
            attribute_id_list=sequence(uint32(0x0000FFFF)),
        )
        reply = self._request(
            session,
            SdpPdu(
                PduId.SERVICE_ATTRIBUTE_REQUEST,
                self._take_transaction(),
                request.encode(),
            ),
        )
        return (
            reply is not None
            and reply.pdu_id == PduId.SERVICE_ATTRIBUTE_RESPONSE
        )


class _SdpMutator:
    """Core-field mutation of SDP request parameters.

    ``D`` stays consistent (valid pdu_id for the state, fresh
    transaction id, parameter_length always exact); ``MC`` — record
    handles, UUID patterns, attribute ranges — is poisoned; a garbage
    region rides inside the parameter block beyond the meaningful
    fields, so the PDU framing still parses.
    """

    def __init__(
        self,
        config: FuzzConfig,
        rng: random.Random,
        dictionary: Iterable[bytes] = (),
    ) -> None:
        self.config = config
        self.rng = rng
        self.dictionary = tuple(tail for tail in dictionary if tail)
        self._transaction = 0x4000

    def _fuzz_payload(self, position: GuidedPosition, command: PduId) -> bytes:
        """One mutated PDU as raw channel payload (shared by both paths)."""
        session = position.context
        self._transaction = (self._transaction + 1) & 0xFFFF
        parameters = self._parameters_for(command, session)
        if self.config.append_garbage:
            parameters += draw_garbage(
                self.rng, self.config.max_garbage, self.dictionary
            )
        return SdpPdu(command, self._transaction, parameters).encode()

    def mutate(
        self, position: GuidedPosition, command: PduId, identifier: int
    ) -> L2capPacket:
        return wire_data_frame(
            position.context.target_cid, self._fuzz_payload(position, command)
        )

    def mutate_wire(
        self, position: GuidedPosition, command: PduId, identifier: int
    ) -> L2capPacket:
        """Bytes-level fast path: same payload, pre-assembled wire frame."""
        return wire_data_frame_fast(
            position.context.target_cid, self._fuzz_payload(position, command)
        )

    # -- parameter builders ---------------------------------------------------------

    def _random_handle(self, session: SdpSession) -> int:
        """A record handle ignoring the server's actual allocation."""
        if session.handles and self.rng.random() < 0.25:
            # Off-by-noise around a live handle: the nastiest neighbours.
            return (
                session.handles[self.rng.randrange(len(session.handles))]
                ^ (1 << self.rng.randrange(16))
            ) & 0xFFFFFFFF
        return self.rng.getrandbits(32)

    def _random_pattern(self):
        uuids = [uuid16(self.rng.getrandbits(16)) for _ in range(self.rng.randint(1, 3))]
        return sequence(*uuids)

    def _parameters_for(self, command: PduId, session: SdpSession) -> bytes:
        if command == PduId.SERVICE_SEARCH_REQUEST:
            return (
                self._random_pattern().encode()
                + struct.pack(">H", self.rng.getrandbits(16))
                + NO_CONTINUATION
            )
        if command == PduId.SERVICE_ATTRIBUTE_REQUEST:
            return (
                struct.pack(
                    ">IH",
                    self._random_handle(session),
                    self.rng.getrandbits(16),
                )
                + sequence(uint32(self.rng.getrandbits(32))).encode()
                + NO_CONTINUATION
            )
        # SERVICE_SEARCH_ATTRIBUTE_REQUEST
        return (
            self._random_pattern().encode()
            + struct.pack(">H", self.rng.getrandbits(16))
            + sequence(uint32(self.rng.getrandbits(32))).encode()
            + NO_CONTINUATION
        )


@register_target
class SdpTarget(FuzzTarget):
    """Stateful SDP client-session fuzzing against the real SDP server."""

    name = "sdp"

    def state_plan(self) -> tuple[SdpSessionState, ...]:
        return SDP_PLAN

    def build_guide(self, queue, scan) -> _SdpGuide:
        return _SdpGuide(queue, scan)

    def build_mutator(
        self,
        config: FuzzConfig,
        rng: random.Random,
        dictionary: Iterable[bytes] = (),
    ) -> _SdpMutator:
        return _SdpMutator(config, rng, dictionary)

    def commands_for(self, position: GuidedPosition) -> tuple[PduId, ...]:
        return tuple(sorted(STATE_PDUS[position.state]))

    # -- codec hooks ----------------------------------------------------------------

    def encode_payload(self, pdu: SdpPdu) -> bytes:
        return pdu.encode()

    def decode_payload(self, raw: bytes) -> SdpPdu:
        return SdpPdu.decode(raw)

    def is_structurally_valid(self, payload: bytes) -> bool:
        """The PDU framing parses (header and parameter length agree)."""
        try:
            SdpPdu.decode(payload)
        except Exception:
            return False
        return True
