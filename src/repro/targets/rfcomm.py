"""The RFCOMM fuzz target (paper §V: the method transferred).

Absorbs the old standalone ``RfcommFuzzer`` into the campaign engine:
the mux walk (SABM on DLCI 0 → control connected → SABM on a data DLCI
→ data connected) becomes a three-state guide, DLCI mutation becomes a
:class:`~repro.targets.base.TargetMutator`, and crashes surface as
ordinary campaign :class:`~repro.core.detection.Finding` objects — so
RFCOMM findings flow through the shared ``finding_key()`` and dedupe
against the fleet and corpus databases like any other protocol's (the
standalone fuzzer bucketed by a raw ad-hoc tuple and never deduped).

Frames ride as L2CAP data frames on the RFCOMM channel, exactly as on
a real link, so the transport, sniffer, corpus and replay machinery is
reused unchanged.
"""

from __future__ import annotations

import dataclasses
import enum
import random
from collections.abc import Iterable

from repro.core.config import FuzzConfig
from repro.l2cap.constants import Psm
from repro.l2cap.packets import L2capPacket
from repro.rfcomm.constants import CONTROL_DLCI, FrameType, MAX_DLCI
from repro.rfcomm.frames import RfcommFrame, disc, sabm, uih
from repro.targets.base import (
    FuzzTarget,
    GuidedPosition,
    draw_garbage,
    open_l2cap_channel,
    register_target,
    wire_data_frame,
    wire_data_frame_fast,
)

#: The data DLCI the guide opens (server channel 1, responder side).
DATA_DLCI = 3


class RfcommMuxState(enum.Enum):
    """The mux states the guide routes through, shallow to deep."""

    MUX_CLOSED = "MUX_CLOSED"
    CONTROL_OPEN = "CONTROL_OPEN"
    DATA_OPEN = "DATA_OPEN"


#: Valid frame types per mux state (the §V analogue of Table III).
STATE_FRAME_TYPES: dict[RfcommMuxState, tuple[FrameType, ...]] = {
    RfcommMuxState.MUX_CLOSED: (FrameType.SABM,),
    RfcommMuxState.CONTROL_OPEN: (FrameType.SABM, FrameType.UIH),
    RfcommMuxState.DATA_OPEN: (FrameType.UIH, FrameType.DISC),
}

RFCOMM_PLAN: tuple[RfcommMuxState, ...] = (
    RfcommMuxState.MUX_CLOSED,
    RfcommMuxState.CONTROL_OPEN,
    RfcommMuxState.DATA_OPEN,
)


@dataclasses.dataclass
class RfcommChannel:
    """The L2CAP channel the RFCOMM session rides on."""

    our_cid: int
    target_cid: int


class _RfcommGuide:
    """Routes the target's mux into each plan state with valid frames.

    Coverage is *confirmed*, not assumed: a state only lands in
    :attr:`confirmed_states` when the mux answered the routing frames
    the way a mux in that state must (UA for each SABM, any reply for
    the closed posture) — the protocol analogue of L2CAP's
    wire-inferred coverage, and the verification the old standalone
    fuzzer's ``_expect_ua`` performed.
    """

    def __init__(self, queue, scan, our_base_cid: int = 0x0090) -> None:
        self.queue = queue
        self.scan = scan
        self._next_cid = our_base_cid
        self._channel: RfcommChannel | None = None
        self.confirmed_states: set[RfcommMuxState] = set()

    def plan(self) -> tuple[RfcommMuxState, ...]:
        return RFCOMM_PLAN

    def enter(self, state: RfcommMuxState) -> GuidedPosition:
        channel = self._ensure_channel()
        # Normalise to the intended mux posture with valid frames. Fuzz
        # frames between visits may have opened or closed arbitrary
        # DLCIs, so every route is idempotent from any posture.
        if state is RfcommMuxState.MUX_CLOSED:
            replies = self._exchange_frame(channel, disc(DATA_DLCI))
            replies += self._exchange_frame(channel, disc(CONTROL_DLCI))
            # DISC is answered (UA or DM) by any live mux; either reply
            # proves the mux is reachable with every DLCI torn down.
            confirmed = bool(replies)
        elif state is RfcommMuxState.CONTROL_OPEN:
            self._exchange_frame(channel, disc(DATA_DLCI))
            replies = self._exchange_frame(channel, sabm(CONTROL_DLCI))
            confirmed = _ua_for(replies, CONTROL_DLCI)
        else:
            control_up = _ua_for(
                self._exchange_frame(channel, sabm(CONTROL_DLCI)), CONTROL_DLCI
            )
            data_up = _ua_for(
                self._exchange_frame(channel, sabm(DATA_DLCI)), DATA_DLCI
            )
            confirmed = control_up and data_up
        if confirmed:
            self.confirmed_states.add(state)
        return GuidedPosition(state=state, label="Mux", context=channel)

    def leave(self, position: GuidedPosition) -> None:
        """Valid teardown: close the DLCIs so the next route starts clean."""
        channel = position.context
        self._exchange_frame(channel, disc(DATA_DLCI))
        self._exchange_frame(channel, disc(CONTROL_DLCI))

    def on_target_reset(self) -> None:
        """The cached channel died with the old stack; reconnect lazily."""
        self._channel = None

    # -- plumbing -------------------------------------------------------------------

    def _ensure_channel(self) -> RfcommChannel:
        if self._channel is not None:
            return self._channel
        our_cid = self._next_cid
        self._next_cid += 1
        target_cid = open_l2cap_channel(
            self.queue,
            Psm.RFCOMM,
            our_cid,
            "target refuses unpaired RFCOMM connections; the rfcomm "
            "target needs PSM 0x0003 pairing-free (FuzzSession prepares "
            "profile devices automatically)",
        )
        self._channel = RfcommChannel(our_cid=our_cid, target_cid=target_cid)
        return self._channel

    def _exchange_frame(
        self, channel: RfcommChannel, frame: RfcommFrame
    ) -> list[RfcommFrame]:
        """Send one valid mux frame; return the mux's decoded replies."""
        replies: list[RfcommFrame] = []
        for response in self.queue.exchange(
            wire_data_frame(channel.target_cid, frame.encode())
        ):
            if response.header_cid != channel.our_cid:
                continue
            try:
                replies.append(RfcommFrame.decode(response.tail))
            except Exception:
                continue
        return replies


def _ua_for(replies: list[RfcommFrame], dlci: int) -> bool:
    """Whether the mux acknowledged *dlci* with a UA."""
    return any(
        reply.frame_type == FrameType.UA and reply.dlci == dlci
        for reply in replies
    )


class _RfcommMutator:
    """DLCI core-field mutation (the old fuzzer's Algorithm-1 transfer).

    The DLCI — the channel-selecting core field — is drawn over its full
    range ignoring which DLCIs are actually open; the dependent fields
    (length, FCS) stay valid so the mux parses the frame; a garbage tail
    rides beyond the declared frame end.
    """

    def __init__(
        self,
        config: FuzzConfig,
        rng: random.Random,
        dictionary: Iterable[bytes] = (),
    ) -> None:
        self.config = config
        self.rng = rng
        self.dictionary = tuple(tail for tail in dictionary if tail)

    def _fuzz_payload(self, command: FrameType) -> bytes:
        """One mutated mux frame plus garbage, as raw channel payload.

        Shared by both mutation paths so their RNG draws are identical.
        """
        dlci = self.rng.randrange(0, MAX_DLCI + 1)
        if command == FrameType.UIH:
            payload = bytes(self.rng.getrandbits(8) for _ in range(4))
            frame = uih(dlci, payload)
        else:
            frame = RfcommFrame(dlci, command)
        garbage = b""
        if self.config.append_garbage:
            garbage = draw_garbage(
                self.rng, self.config.max_garbage, self.dictionary
            )
        return frame.encode() + garbage

    def mutate(
        self, position: GuidedPosition, command: FrameType, identifier: int
    ) -> L2capPacket:
        return wire_data_frame(
            position.context.target_cid, self._fuzz_payload(command)
        )

    def mutate_wire(
        self, position: GuidedPosition, command: FrameType, identifier: int
    ) -> L2capPacket:
        """Bytes-level fast path: same payload, pre-assembled wire frame."""
        return wire_data_frame_fast(
            position.context.target_cid, self._fuzz_payload(command)
        )


@register_target
class RfcommTarget(FuzzTarget):
    """Stateful RFCOMM mux fuzzing over a live L2CAP channel."""

    name = "rfcomm"

    def state_plan(self) -> tuple[RfcommMuxState, ...]:
        return RFCOMM_PLAN

    def build_guide(self, queue, scan) -> _RfcommGuide:
        return _RfcommGuide(queue, scan)

    def build_mutator(
        self,
        config: FuzzConfig,
        rng: random.Random,
        dictionary: Iterable[bytes] = (),
    ) -> _RfcommMutator:
        return _RfcommMutator(config, rng, dictionary)

    def commands_for(self, position: GuidedPosition) -> tuple[FrameType, ...]:
        return tuple(sorted(STATE_FRAME_TYPES[position.state]))

    # -- codec hooks ----------------------------------------------------------------

    def encode_payload(self, frame: RfcommFrame) -> bytes:
        return frame.encode()

    def decode_payload(self, raw: bytes) -> RfcommFrame:
        return RfcommFrame.decode(raw)

    def is_structurally_valid(self, payload: bytes) -> bool:
        """The mux parses the frame (FCS and length agree)."""
        try:
            RfcommFrame.decode(payload)
        except Exception:
            return False
        return True

    # -- device wiring --------------------------------------------------------------

    def prepare_device(self, device, armed: bool = True) -> None:
        """Mount the real mux and lift the pairing gate (paired dongle).

        The injected UIH-overflow bug arms with the device, mirroring
        how profile vulnerabilities behave for L2CAP campaigns.
        """
        import dataclasses as _dc

        from repro.rfcomm.mux import RfcommMux
        from repro.stack.services import ServiceRecord

        record = device.services.lookup(Psm.RFCOMM)
        if record is None:
            device.services.override(ServiceRecord(Psm.RFCOMM, "RFCOMM"))
        elif record.requires_pairing:
            device.services.override(_dc.replace(record, requires_pairing=False))
        mux = RfcommMux(server_channels=(1,), vulnerable=armed)
        device.engine.data_handlers[Psm.RFCOMM] = mux.handle_payload
        device.rfcomm_mux = mux
