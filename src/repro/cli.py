"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``devices`` — list the Table V testbed profiles.
* ``scan D2`` — run the target-scanning phase against one profile.
* ``fuzz D2`` — run a full campaign (``--disarm`` for ratio mode;
  ``--target {l2cap,rfcomm,sdp,obex}`` picks the protocol).
* ``fleet`` — run a profile × strategy × protocol fleet and merge
  the reports.
* ``compare`` — run the four-fuzzer comparison (Table VII, Fig. 10).
* ``survey`` — run Table VI across all eight devices.
* ``replay`` — replay a saved JSONL trace against a fresh target.
* ``corpus`` — inspect, minimise, replay or export a shared corpus.
* ``runs`` — list, show or live-tail telemetry runs recorded by
  ``fleet --telemetry``.
* ``serve`` — run the fuzzing-as-a-service control plane.
* ``jobs`` — submit/list/show/cancel/resume jobs on a running control
  plane over HTTP.

All command output flows through stdlib ``logging``: the ``repro.cli``
logger carries user-facing text to stdout (``--quiet`` keeps warnings
and errors only), and ``--verbose`` attaches a stderr handler to the
``repro`` library logger so internal debug diagnostics become visible
without polluting machine-readable stdout.
"""

from __future__ import annotations

import argparse
import logging
import sys

_cli_log = logging.getLogger("repro.cli")


def _echo(message: object = "") -> None:
    """Print *message* to the console via the CLI logger.

    Every piece of user-facing command output funnels through here so
    ``--quiet`` can silence it wholesale and tests can capture it with
    standard logging fixtures. The INFO level is the CLI's "normal
    stdout" channel.
    """
    _cli_log.info("%s", message)


def _configure_logging(verbose: bool, quiet: bool) -> None:
    """Wire console handlers for one ``main()`` invocation.

    Rebuilt (not accumulated) per call so repeated in-process ``main()``
    invocations — the test suite, REPL experiments — never stack
    duplicate handlers, and so pytest's ``capsys`` sees the stream
    objects current at call time.
    """
    _cli_log.handlers.clear()
    _cli_log.setLevel(logging.WARNING if quiet else logging.INFO)
    _cli_log.propagate = False
    console = logging.StreamHandler(sys.stdout)
    console.setFormatter(logging.Formatter("%(message)s"))
    # A downstream `| head` closing the pipe is normal CLI life, not a
    # logging error worth a traceback on stderr.
    console.handleError = lambda record: None
    _cli_log.addHandler(console)

    library = logging.getLogger("repro")
    library.handlers[:] = [
        handler
        for handler in library.handlers
        if isinstance(handler, logging.NullHandler)
    ]
    if verbose:
        debug = logging.StreamHandler(sys.stderr)
        debug.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        library.addHandler(debug)
        library.setLevel(logging.DEBUG)
    else:
        library.setLevel(logging.WARNING)

from repro.analysis.comparison import figure10_bars, run_comparison, table7_rows
from repro.analysis.state_coverage import coverage_report
from repro.analysis.traceio import save_trace
from repro.core.config import FuzzConfig
from repro.core.faults import FAULT_KINDS, seeded_plan
from repro.core.fleet import FleetOrchestrator
from repro.core.packet_queue import PacketQueue
from repro.core.runtime import CHECKPOINTS_DIRNAME, SupervisionPolicy
from repro.core.strategies import STRATEGY_NAMES, make_strategy
from repro.core.target_scanning import TargetScanner
from repro.hci.transport import VirtualLink
from repro.l2cap.states import ChannelState
from repro.targets import make_target, target_names
from repro.testbed.profiles import ALL_PROFILES, PROFILES_BY_ID
from repro.testbed.session import FuzzSession


def _profile(device_id: str):
    profile = PROFILES_BY_ID.get(device_id.upper())
    if profile is None:
        raise SystemExit(
            f"unknown device {device_id!r}; choose from {', '.join(PROFILES_BY_ID)}"
        )
    return profile


def cmd_devices(_args) -> int:
    """List the testbed."""
    for profile in ALL_PROFILES:
        vulns = ", ".join(v.vulnerability_id for v in profile.vulnerabilities) or "-"
        _echo(
            f"{profile.device_id}  {profile.name:<16} {profile.bt_stack:<14} "
            f"{profile.os_or_fw:<16} ports={len(profile.services):<3} bugs: {vulns}"
        )
    return 0


def cmd_scan(args) -> int:
    """Phase 1 only: discover the target's ports."""
    profile = _profile(args.device)
    device = profile.build(armed=False)
    link = VirtualLink(clock=device.clock)
    device.attach_to(link)
    queue = PacketQueue(link)
    result = TargetScanner(queue, device.inquiry).scan()
    meta = result.meta
    _echo(f"{meta.name}  [{meta.mac_address}, OUI {meta.oui}, {meta.device_class}]")
    for probe in result.probes:
        status = (
            "open (no pairing)"
            if probe.connectable
            else ("requires pairing" if probe.requires_pairing else "closed")
        )
        _echo(f"  PSM 0x{probe.psm:04X}  {probe.name:<28} {status}")
    _echo(f"fuzzing port: 0x{result.primary_psm:04X}")
    return 0


def cmd_fuzz(args) -> int:
    """Full campaign against one device (any registered protocol target)."""
    from repro.core.fleet import load_corpus_seeds

    profile = _profile(args.device)
    config = FuzzConfig(max_packets=args.budget, seed=args.seed)
    prior_visits, dictionary = load_corpus_seeds(args.corpus)
    # Bad names never reach here: both flags carry registry-generated
    # argparse choices.
    strategy = make_strategy(args.strategy, prior_visits=prior_visits or None)
    target = make_target(args.target)
    session = FuzzSession(
        profile,
        config,
        armed=not args.disarm,
        zero_latency=args.disarm,
        auto_reset=args.auto_reset,
        strategy=strategy,
        corpus_dir=args.corpus,
        dictionary=dictionary,
        target=target,
    )
    report = session.run()
    _echo(report.summary())
    _echo()
    _echo(coverage_report(report.covered_states, target.state_universe()))
    if args.save_trace:
        count = save_trace(session.fuzzer.sniffer, args.save_trace)
        _echo(f"trace: {count} packets written to {args.save_trace}")
    if args.show_log:
        _echo(session.fuzzer.log.to_jsonl())
    return 0 if (args.disarm or report.vulnerability_found) else 1


def _fleet_profiles(spec: str):
    """Resolve ``--profiles``: a count ("4") or id list ("D1,D5")."""
    if spec.isdigit():
        count = int(spec)
        if not 1 <= count <= len(ALL_PROFILES):
            raise SystemExit(
                f"--profiles count must be 1..{len(ALL_PROFILES)}, got {count}"
            )
        return ALL_PROFILES[:count]
    return tuple(_profile(device_id) for device_id in spec.split(","))


def _fleet_workers(spec: str) -> int:
    """Resolve ``--workers``: a count or ``auto`` (one per CPU core)."""
    if spec == "auto":
        import os

        return max(1, os.cpu_count() or 1)
    try:
        workers = int(spec)
    except ValueError:
        raise SystemExit(
            f"--workers must be a positive integer or 'auto', got {spec!r}"
        ) from None
    if workers < 1:
        raise SystemExit("--workers must be >= 1")
    return workers


def cmd_fleet(args) -> int:
    """Run a profile × strategy fleet and print the merged report."""
    profiles = _fleet_profiles(args.profiles)
    workers = _fleet_workers(args.workers)
    if args.batch is not None and args.batch < 1:
        raise SystemExit("--batch must be >= 1")
    if args.budget < 1:
        raise SystemExit("--budget must be >= 1")
    try:
        target_state = ChannelState(args.target_state.upper())
    except ValueError:
        raise SystemExit(f"unknown target state {args.target_state!r}") from None
    strategies = args.strategies.split(",")
    targets = args.targets.split(",")
    try:
        # Validate eagerly so unknown names and unroutable targets fail
        # with a clean message instead of mid-campaign. The orchestrator
        # gets the *names*, keeping the fleet process-pool-safe.
        for name in strategies:
            make_strategy(name, target=target_state)
        for name in targets:
            make_target(name)
    except ValueError as error:
        raise SystemExit(str(error)) from None
    if args.profile and args.telemetry is None:
        raise SystemExit("--profile requires --telemetry (dumps land in the run dir)")
    chaos_kinds: list[str] = []
    if args.chaos:
        chaos_kinds = [kind.strip() for kind in args.chaos.split(",") if kind.strip()]
        unknown = [kind for kind in chaos_kinds if kind not in FAULT_KINDS]
        if unknown:
            raise SystemExit(
                f"unknown --chaos kind(s) {', '.join(unknown)} "
                f"(choose from {', '.join(FAULT_KINDS)})"
            )
        if workers < 2 and {"crash", "hang"} & set(chaos_kinds):
            raise SystemExit(
                "--chaos crash/hang needs --workers >= 2: a single worker "
                "runs shards inline, so there is no supervisor to recover"
            )
    if args.resume is not None and args.telemetry is None:
        raise SystemExit(
            "--resume requires --telemetry (checkpoints live in the run directory)"
        )
    shard_timeout = args.shard_timeout
    if shard_timeout is not None and shard_timeout <= 0:
        raise SystemExit("--shard-timeout must be > 0")
    if shard_timeout is None and "hang" in chaos_kinds:
        # A hang demo should trip the deadline in seconds, not minutes.
        shard_timeout = 5.0
    supervision = (
        SupervisionPolicy(timeout_floor=shard_timeout)
        if shard_timeout is not None
        else None
    )
    chaos_ledger = None
    fault_plan = None
    if chaos_kinds:
        import tempfile

        chaos_ledger = tempfile.mkdtemp(prefix="repro-chaos-")
        fault_plan = seeded_plan(
            seed=args.chaos_seed,
            spec_count=len(profiles) * len(strategies) * len(targets),
            kinds=chaos_kinds,
            ledger_dir=chaos_ledger,
            hang_seconds=(shard_timeout * 4) if shard_timeout else 30.0,
        )
    try:
        orchestrator = FleetOrchestrator(
            profiles=profiles,
            strategies=strategies,
            fleet_seed=args.seed,
            workers=workers,
            base_config=FuzzConfig(max_packets=args.budget),
            armed=not args.disarm,
            target_state=target_state,
            corpus_dir=args.corpus,
            targets=targets,
            batch=args.batch,
            telemetry_dir=args.telemetry,
            profile_workers=args.profile,
            fault_plan=fault_plan,
            resume_run_id=args.resume,
            supervision=supervision,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from None
    try:
        try:
            with orchestrator:
                report = orchestrator.run()
        except Exception as error:  # noqa: BLE001 - partial-failure summary
            _cli_log.error(
                "fleet run aborted: %s: %s", type(error).__name__, error
            )
            if orchestrator.run_dir is not None:
                checkpoint_dir = orchestrator.run_dir / CHECKPOINTS_DIRNAME
                completed = (
                    len(list(checkpoint_dir.glob("campaign-*.bin")))
                    if checkpoint_dir.is_dir()
                    else 0
                )
                _cli_log.error(
                    "partial progress: %d campaign checkpoint(s) under %s",
                    completed,
                    orchestrator.run_dir,
                )
                _cli_log.error(
                    "resume with: repro fleet --telemetry %s --resume %s",
                    args.telemetry,
                    orchestrator.run_id,
                )
            return 2
    finally:
        if chaos_ledger is not None:
            import shutil

            shutil.rmtree(chaos_ledger, ignore_errors=True)
    rendered = report.to_json() if args.format == "json" else report.to_markdown()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        _echo(f"fleet report written to {args.output}")
    else:
        _echo(rendered)
    if orchestrator.run_id is not None:
        _echo(f"telemetry run {orchestrator.run_id}: {orchestrator.run_dir}")
    stats = orchestrator.last_supervision
    if stats is not None and stats.eventful:
        _echo(
            "supervision: "
            f"retries={stats.retries} requeued={stats.requeued} "
            f"worker_crashes={stats.worker_crashes} timeouts={stats.timeouts} "
            f"pool_restarts={stats.pool_restarts} "
            f"decode_failures={stats.decode_failures} "
            f"bisections={stats.bisections}"
        )
    if report.quarantined:
        for item in report.quarantined:
            _cli_log.error(
                "quarantined campaign %d (%s/%s/%s): %s after %d attempt(s)",
                item.index,
                item.device_id,
                item.strategy,
                item.target,
                item.reason,
                item.attempts,
            )
        return 1
    return 0


def cmd_compare(args) -> int:
    """Four-fuzzer comparison (Table VII + Fig. 10)."""
    results = run_comparison(max_packets=args.budget)
    _echo(f"{'fuzzer':<11}{'MP%':>8}{'PR%':>8}{'eff%':>8}{'pps':>9}")
    for row in table7_rows(results):
        _echo(
            f"{row['fuzzer']:<11}{row['mp_ratio']:>8}{row['pr_ratio']:>8}"
            f"{row['mutation_efficiency']:>8}{row['pps']:>9}"
        )
    _echo()
    for name, count in figure10_bars(results).items():
        _echo(f"{name:<11} {count:>2}/19  {'#' * count}")
    return 0


def cmd_replay(args) -> int:
    """Replay a saved JSONL trace's sent packets against a fresh target.

    Exit code 0 when the trace crashes the target (the finding
    reproduces), 1 when the target survives — CI-friendly either way.
    """
    from repro.analysis.traceio import load_trace
    from repro.core.triage import (
        minimize_trigger,
        profile_target_factory,
        replay,
        sent_packets,
        triage_report,
    )

    profile = _profile(args.device)
    try:
        with open(args.trace, encoding="utf-8") as handle:
            packets = sent_packets(load_trace(handle.read()))
    except OSError as error:
        raise SystemExit(f"cannot read trace: {error}") from None
    if not packets:
        raise SystemExit(f"no sent packets in trace {args.trace!r}")
    factory = profile_target_factory(profile, armed=not args.disarm)
    outcome = replay(packets, factory)
    if outcome.crashed:
        _echo(
            f"crash reproduced after {outcome.frames_replayed} packet(s): "
            f"{outcome.error_message}"
            + (f" [{outcome.crash_id}]" if outcome.crash_id else "")
        )
    else:
        _echo(f"no crash: target survived all {outcome.frames_replayed} packet(s)")
    if args.minimize:
        if not outcome.crashed:
            _echo("nothing to minimise (sequence does not crash the target)")
        else:
            minimal = minimize_trigger(packets, factory)
            _echo(triage_report(minimal, replay(minimal, factory)))
    return 0 if outcome.crashed else 1


def _corpus_handles(args):
    from repro.corpus import CorpusStore, FindingDatabase, open_backend

    backend = open_backend(args.dir)
    store = CorpusStore(args.dir, backend=backend)
    database = FindingDatabase(args.dir, backend=backend)
    if not store.exists() and not len(database):
        raise SystemExit(f"no corpus at {args.dir!r}")
    return store, database


def cmd_corpus_stats(args) -> int:
    """Summarise a corpus directory."""
    store, database = _corpus_handles(args)
    # One aggregate pass through the backend: a directory scan on the
    # file layout, indexed queries on SQLite.
    stats = store.stats()
    canonical_note = " STALE" if stats.canonical_stale else ""
    _echo(f"corpus: {args.dir} [{store.backend.name} backend]")
    _echo(
        f"entries: {stats.entry_count}"
        f" ({stats.packet_total} packets,"
        f" canonical: {stats.canonical_count}{canonical_note})"
    )
    _echo(
        f"coverage: {len(stats.state_tokens)} state(s),"
        f" {len(stats.transition_tokens)} transition(s)"
    )
    for token, count in sorted(stats.state_frequencies.items()):
        _echo(f"  {token:<22} {count}")
    records = database.records()
    _echo(f"findings: {len(records)} bucket(s)")
    for record in records:
        _echo(
            f"  [{record.vulnerability_class}] {record.vendor} {record.state}"
            f" x{record.occurrences}"
            + (f" [{record.crash_id}]" if record.crash_id else "")
            + f" ({len(record.packets)}-packet reproducer)"
        )
    return 0


def cmd_corpus_minimize(args) -> int:
    """cmin: write the canonical minimised corpus."""
    store, _ = _corpus_handles(args)
    before = len(store)
    canonical = store.minimize()
    packets = sum(entry.packet_count for entry in canonical)
    _echo(
        f"minimised {before} entr(ies) to {len(canonical)} canonical"
        f" ({packets} packets) -> {store.backend.describe_canonical()}"
    )
    return 0


def cmd_corpus_replay(args) -> int:
    """Regression-replay every stored finding (and optionally entries).

    Exit code 0 when everything reproduces exactly as stored, 1 when
    any bucket regressed.
    """
    from repro.corpus import replay_entry, replay_finding

    store, database = _corpus_handles(args)
    regressions = 0
    for record in database.records():
        result = replay_finding(record, PROFILES_BY_ID)
        status = "ok" if not result.regression else "REGRESSION"
        _echo(
            f"finding {record.bucket_id} [{record.vulnerability_class}]"
            f" {record.vendor}: {status}"
            + (
                ""
                if result.reproduced
                else " (no longer crashes)"
            )
        )
        regressions += int(result.regression)
    if args.entries:
        # seed_entries(): the canonical set while fresh, the live entry
        # set once entries were added past the last minimize.
        for entry in store.seed_entries():
            result = replay_entry(entry, PROFILES_BY_ID)
            _echo(
                f"entry {entry.entry_id[:12]} ({entry.device_id}):"
                f" {result.packets_replayed} packet(s),"
                f" {len(result.covered_states)} state(s)"
                + (f", crashed: {result.error_message}" if result.crashed else "")
            )
    _echo(f"{len(database)} finding(s), {regressions} regression(s)")
    return 1 if regressions else 0


def cmd_corpus_export(args) -> int:
    """Export every corpus entry as a single JSONL document."""
    store, _ = _corpus_handles(args)
    count = store.export_jsonl(args.output)
    _echo(f"{count} entr(ies) exported to {args.output}")
    return 0


def cmd_corpus_migrate(args) -> int:
    """Convert a file-layout corpus to the SQLite (WAL) backend in place."""
    from repro.corpus.migrate import MigrationError, migrate_to_sqlite

    try:
        report = migrate_to_sqlite(args.dir)
    except MigrationError as error:
        raise SystemExit(str(error)) from None
    _echo(report.summary())
    return 0


def cmd_survey(args) -> int:
    """Table VI across the whole testbed."""
    for profile in ALL_PROFILES:
        budget = args.d8_budget if profile.device_id == "D8" else args.budget
        session = FuzzSession(profile, FuzzConfig(max_packets=budget))
        report = session.run()
        row = report.as_table6_row()
        _echo(
            f"{profile.device_id}  {profile.name:<16} vuln={row['vuln']:<4}"
            f"{row['description']:<7} elapsed={row['elapsed']}"
        )
    return 0


def cmd_runs_list(args) -> int:
    """List telemetry runs under a root directory, newest first."""
    import json

    from repro.telemetry import list_runs, run_info_dict

    runs = list_runs(args.root)
    if args.json:
        _echo(json.dumps([run_info_dict(info) for info in runs], indent=2))
        return 0
    if not runs:
        _echo(f"no telemetry runs under {args.root!r}")
        return 0
    _echo(
        f"{'run id':<22} {'status':<9} {'workers':>7} {'campaigns':>9}"
        f" {'packets':>10} {'findings':>8}  started"
    )
    for info in runs:
        flags = " (resumed)" if info.resumed else ""
        _echo(
            f"{info.run_id:<22} {info.status:<9} {info.workers:>7}"
            f" {info.campaigns:>9} {info.packets:>10} {info.findings:>8}"
            f"  {info.started or '-'}{flags}"
        )
        if info.failure_reason:
            _echo(f"  failure: {info.failure_reason}")
    return 0


def cmd_runs_show(args) -> int:
    """One run's manifest, status table and metric exposition paths."""
    import json

    from repro.telemetry import (
        read_manifest,
        render_status,
        resolve_run,
        run_status,
        status_to_dict,
    )

    try:
        run_dir = resolve_run(args.root, args.run)
    except FileNotFoundError as error:
        raise SystemExit(str(error)) from None
    if args.json:
        _echo(
            json.dumps(
                status_to_dict(run_status(run_dir)), indent=2, sort_keys=True
            )
        )
        return 0
    manifest = read_manifest(run_dir)
    if manifest is not None:
        _echo(json.dumps(manifest, indent=2, sort_keys=True))
        _echo("")
    _echo(render_status(run_status(run_dir)))
    for name in ("events.jsonl", "metrics.json", "metrics.prom"):
        path = run_dir / name
        if path.exists():
            _echo(f"{name}: {path}")
    return 0


def cmd_runs_tail(args) -> int:
    """Follow a live run, re-rendering the fleet status table."""
    from repro.telemetry import resolve_run, tail_run

    try:
        run_dir = resolve_run(args.root, args.run)
    except FileNotFoundError as error:
        raise SystemExit(str(error)) from None
    status = tail_run(
        run_dir, _echo, interval=args.interval, once=args.once
    )
    return 1 if status == "aborted" else 0


def cmd_serve(args) -> int:
    """Run the fuzzing-as-a-service control plane (blocking)."""
    from repro.core.faults import install_service_faults_from_env
    from repro.core.runtime import SupervisionPolicy
    from repro.service import ControlPlane, ServiceConfig

    install_service_faults_from_env()  # chaos harnesses only; no-op otherwise
    supervision = None
    if args.shard_deadline is not None:
        supervision = SupervisionPolicy(shard_deadline=args.shard_deadline)
    config = ServiceConfig(
        data_dir=args.data_dir,
        host=args.host,
        port=args.port,
        pool_workers=args.workers,
        max_active_jobs=args.max_active_jobs,
        packet_budget=args.packet_budget,
        supervision=supervision,
        max_queue_depth=args.max_queue_depth,
        wedge_deadline=args.wedge_deadline,
        auto_resume=args.auto_resume,
        auto_resume_max_attempts=args.auto_resume_max_attempts,
    )
    app = ControlPlane(config)
    _echo(f"control plane data dir: {args.data_dir}")
    _echo(f"listening on http://{args.host}:{args.port}")
    app.run()
    return 0


def _service_client(args):
    from repro.service import ServiceClient

    return ServiceClient(args.url, tenant=args.tenant)


def _print_job(record: dict) -> None:
    import json

    _echo(json.dumps(record, indent=2, sort_keys=True))


def cmd_jobs_submit(args) -> int:
    """Submit a fleet job to a running control plane."""
    from repro.service import ServiceError

    def _csv(text: str, upper: bool = False) -> list[str]:
        parts = [part.strip() for part in text.split(",") if part.strip()]
        return [part.upper() for part in parts] if upper else parts

    spec = {
        "profiles": _csv(args.profiles, upper=True),
        "strategies": _csv(args.strategies),
        "targets": _csv(args.targets),
        "budget": args.budget,
        "seed": args.seed,
        "armed": not args.disarm,
        "priority": args.priority,
        "use_corpus": args.corpus,
        "target_state": args.state.upper(),
    }
    if args.batch is not None:
        spec["batch"] = args.batch
    client = _service_client(args)
    try:
        record = client.submit(spec, idempotency_key=args.idempotency_key)
    except ServiceError as error:
        raise SystemExit(str(error)) from None
    if args.wait:
        record = client.wait(record["job_id"], timeout=args.timeout)
    if args.json:
        _print_job(record)
    else:
        _echo(f"job {record['job_id']} [{record['status']}]")
        if record.get("error"):
            _echo(f"  error: {record['error']}")
    return 0 if record["status"] in ("queued", "running", "finished") else 1


def cmd_jobs_list(args) -> int:
    """List this tenant's jobs on a control plane."""
    import json

    from repro.service import ServiceError

    try:
        jobs = _service_client(args).jobs()
    except ServiceError as error:
        raise SystemExit(str(error)) from None
    if args.json:
        _echo(json.dumps(jobs, indent=2, sort_keys=True))
        return 0
    if not jobs:
        _echo(f"no jobs for tenant {args.tenant!r}")
        return 0
    _echo(
        f"{'job id':<30} {'status':<10} {'priority':>8} {'campaigns':>9}"
        f" {'packets':>10} {'findings':>8}  created"
    )
    for record in jobs:
        _echo(
            f"{record['job_id']:<30} {record['status']:<10}"
            f" {record['spec']['priority']:>8} {record['campaigns']:>9}"
            f" {record['packets']:>10} {record['findings']:>8}"
            f"  {record.get('created_at') or '-'}"
        )
    return 0


def cmd_jobs_show(args) -> int:
    """One job's record (``--report`` adds the merged fleet report)."""
    from repro.service import ServiceError

    client = _service_client(args)
    try:
        record = client.job(args.job_id)
        _print_job(record)
        if args.report:
            _echo(client.report_text(args.job_id).rstrip("\n"))
    except ServiceError as error:
        raise SystemExit(str(error)) from None
    return 0


def cmd_jobs_cancel(args) -> int:
    """Cancel a queued or running job."""
    from repro.service import ServiceError

    try:
        record = _service_client(args).cancel(args.job_id)
    except ServiceError as error:
        raise SystemExit(str(error)) from None
    if args.json:
        _print_job(record)
    else:
        _echo(f"job {record['job_id']} [{record['status']}]")
    return 0


def cmd_jobs_resume(args) -> int:
    """Resume a cancelled/aborted job from its checkpoints."""
    from repro.service import ServiceError

    client = _service_client(args)
    try:
        record = client.resume(args.job_id)
        if args.wait:
            record = client.wait(record["job_id"], timeout=args.timeout)
    except ServiceError as error:
        raise SystemExit(str(error)) from None
    if args.json:
        _print_job(record)
    else:
        _echo(
            f"job {record['job_id']} [{record['status']}]"
            f" (resumes {record['resume_of']})"
        )
    return 0 if record["status"] in ("queued", "running", "finished") else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="L2Fuzz reproduction: stateful Bluetooth L2CAP fuzzing "
        "against a virtual testbed.",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="show library debug diagnostics on stderr",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress normal output (warnings and errors only)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("devices", help="list testbed devices").set_defaults(
        func=cmd_devices
    )

    scan = commands.add_parser("scan", help="run the target-scanning phase")
    scan.add_argument("device", help="device id (D1..D8)")
    scan.set_defaults(func=cmd_scan)

    fuzz = commands.add_parser("fuzz", help="run a fuzzing campaign")
    fuzz.add_argument("device", help="device id (D1..D8)")
    fuzz.add_argument("--budget", type=int, default=50_000, help="packet budget")
    fuzz.add_argument("--seed", type=int, default=0x1202, help="campaign seed")
    fuzz.add_argument(
        "--disarm", action="store_true", help="disable injected bugs (ratio mode)"
    )
    fuzz.add_argument(
        "--auto-reset",
        action="store_true",
        help="reset crashed targets and continue (long-term fuzzing)",
    )
    fuzz.add_argument("--save-trace", metavar="PATH", help="write the trace as JSONL")
    fuzz.add_argument("--show-log", action="store_true", help="print the campaign log")
    # Choices and help are generated from the registries at parser-build
    # time, so a newly registered strategy or protocol target appears
    # here automatically and a bad value fails with the valid names
    # listed. target_names() is read live (not the import-time
    # TARGET_NAMES snapshot) so user-registered targets are accepted.
    fuzz.add_argument(
        "--strategy",
        default="sequential",
        choices=STRATEGY_NAMES,
        help=f"exploration strategy (one of: {', '.join(STRATEGY_NAMES)})",
    )
    fuzz.add_argument(
        "--target",
        default="l2cap",
        choices=target_names(),
        help=f"protocol fuzz target (one of: {', '.join(target_names())})",
    )
    fuzz.add_argument(
        "--corpus",
        metavar="DIR",
        help="shared corpus directory to seed from and write back to",
    )
    fuzz.set_defaults(func=cmd_fuzz)

    fleet = commands.add_parser(
        "fleet", help="run a profile × strategy fleet campaign"
    )
    fleet.add_argument(
        "--profiles",
        default="4",
        help="profile count (first N of the testbed) or comma-separated ids",
    )
    fleet.add_argument(
        "--strategies",
        default="sequential",
        help=f"comma-separated strategies: {', '.join(STRATEGY_NAMES)}",
    )
    fleet.add_argument(
        "--targets",
        default="l2cap",
        help=f"comma-separated protocol targets: {', '.join(target_names())}",
    )
    fleet.add_argument(
        "--workers",
        default="1",
        help="worker-pool size, or 'auto' for one worker per CPU core",
    )
    fleet.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help="campaigns per worker shard (default: auto, ~4 shards/worker)",
    )
    fleet.add_argument("--seed", type=int, default=7, help="fleet master seed")
    fleet.add_argument(
        "--budget", type=int, default=3000, help="packet budget per campaign"
    )
    fleet.add_argument(
        "--disarm", action="store_true", help="disable injected bugs fleet-wide"
    )
    fleet.add_argument(
        "--target-state",
        default="OPEN",
        help="focus state for the targeted strategy",
    )
    fleet.add_argument(
        "--format", choices=("markdown", "json"), default="markdown"
    )
    fleet.add_argument("--output", metavar="PATH", help="write the report to a file")
    fleet.add_argument(
        "--corpus",
        metavar="DIR",
        help="shared corpus directory to seed from and write back to",
    )
    fleet.add_argument(
        "--telemetry",
        nargs="?",
        const="runs",
        default=None,
        metavar="DIR",
        help="record a telemetry run (journal + metrics) under DIR "
        "(default: ./runs); inspect with 'repro runs'",
    )
    fleet.add_argument(
        "--profile",
        action="store_true",
        help="dump a cProfile per worker shard into the telemetry run "
        "directory (requires --telemetry)",
    )
    fleet.add_argument(
        "--chaos",
        metavar="KINDS",
        default=None,
        help="inject deterministic faults to exercise the supervisor: "
        f"comma-separated kinds from {', '.join(FAULT_KINDS)}",
    )
    fleet.add_argument(
        "--chaos-seed",
        type=int,
        default=1202,
        metavar="N",
        help="seed for the deterministic fault plan (default: 1202)",
    )
    fleet.add_argument(
        "--resume",
        metavar="RUN_ID",
        default=None,
        help="resume an interrupted telemetry run: campaigns already "
        "checkpointed under RUN_ID are restored, only the rest re-run "
        "(requires --telemetry pointing at the same directory)",
    )
    fleet.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard deadline floor before the supervisor restarts "
        "the worker pool (default: derived from observed shard latency; "
        "5s when --chaos includes hang)",
    )
    fleet.set_defaults(func=cmd_fleet)

    replay = commands.add_parser(
        "replay", help="replay a saved JSONL trace against a fresh target"
    )
    replay.add_argument("trace", help="trace file written by fuzz --save-trace")
    replay.add_argument("--device", default="D2", help="device id (D1..D8)")
    replay.add_argument(
        "--disarm", action="store_true", help="replay against a disarmed target"
    )
    replay.add_argument(
        "--minimize",
        action="store_true",
        help="delta-debug the trace down to a minimal reproducer",
    )
    replay.set_defaults(func=cmd_replay)

    corpus = commands.add_parser(
        "corpus", help="inspect, minimise, replay or export a shared corpus"
    )
    corpus_commands = corpus.add_subparsers(dest="corpus_command", required=True)

    corpus_stats = corpus_commands.add_parser("stats", help="corpus summary")
    corpus_stats.add_argument("dir", help="corpus directory")
    corpus_stats.set_defaults(func=cmd_corpus_stats)

    corpus_minimize = corpus_commands.add_parser(
        "minimize", help="cmin: write the canonical minimised corpus"
    )
    corpus_minimize.add_argument("dir", help="corpus directory")
    corpus_minimize.set_defaults(func=cmd_corpus_minimize)

    corpus_replay = corpus_commands.add_parser(
        "replay", help="regression-replay every stored finding"
    )
    corpus_replay.add_argument("dir", help="corpus directory")
    corpus_replay.add_argument(
        "--entries",
        action="store_true",
        help="also replay corpus entries and report their coverage",
    )
    corpus_replay.set_defaults(func=cmd_corpus_replay)

    corpus_export = corpus_commands.add_parser(
        "export", help="export all entries as one JSONL document"
    )
    corpus_export.add_argument("dir", help="corpus directory")
    corpus_export.add_argument(
        "--output", required=True, metavar="PATH", help="output JSONL path"
    )
    corpus_export.set_defaults(func=cmd_corpus_export)

    corpus_migrate = corpus_commands.add_parser(
        "migrate",
        help="convert a file-layout corpus to the SQLite (WAL) backend",
    )
    corpus_migrate.add_argument("dir", help="corpus directory")
    corpus_migrate.set_defaults(func=cmd_corpus_migrate)

    runs = commands.add_parser(
        "runs", help="list, show or live-tail telemetry runs"
    )
    runs_commands = runs.add_subparsers(dest="runs_command", required=True)

    runs_list = runs_commands.add_parser("list", help="list recorded runs")
    runs_list.add_argument(
        "--root", default="runs", metavar="DIR", help="telemetry root directory"
    )
    runs_list.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    runs_list.set_defaults(func=cmd_runs_list)

    runs_show = runs_commands.add_parser(
        "show", help="manifest, status table and artifact paths for one run"
    )
    runs_show.add_argument("run", help="run id (under --root) or run directory")
    runs_show.add_argument(
        "--root", default="runs", metavar="DIR", help="telemetry root directory"
    )
    runs_show.add_argument(
        "--json", action="store_true", help="machine-readable live status"
    )
    runs_show.set_defaults(func=cmd_runs_show)

    runs_tail = runs_commands.add_parser(
        "tail", help="follow a live run's fleet status table"
    )
    runs_tail.add_argument("run", help="run id (under --root) or run directory")
    runs_tail.add_argument(
        "--root", default="runs", metavar="DIR", help="telemetry root directory"
    )
    runs_tail.add_argument(
        "--interval", type=float, default=0.5, help="poll interval in seconds"
    )
    runs_tail.add_argument(
        "--once", action="store_true", help="render a single frame and exit"
    )
    runs_tail.set_defaults(func=cmd_runs_tail)

    compare = commands.add_parser("compare", help="four-fuzzer comparison")
    compare.add_argument("--budget", type=int, default=20_000)
    compare.set_defaults(func=cmd_compare)

    survey = commands.add_parser("survey", help="Table VI across all devices")
    survey.add_argument("--budget", type=int, default=40_000)
    survey.add_argument("--d8-budget", type=int, default=250_000)
    survey.set_defaults(func=cmd_survey)

    serve = commands.add_parser(
        "serve", help="run the fuzzing-as-a-service control plane"
    )
    serve.add_argument(
        "--data-dir",
        default="service-data",
        metavar="DIR",
        help="service state root (job manifests, tenant runs and corpora)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8979)
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="shared warm worker-pool size",
    )
    serve.add_argument(
        "--max-active-jobs",
        type=int,
        default=None,
        metavar="N",
        help="per-tenant queued+running job limit",
    )
    serve.add_argument(
        "--packet-budget",
        type=int,
        default=None,
        metavar="N",
        help="per-tenant cumulative worst-case packet budget",
    )
    serve.add_argument(
        "--shard-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="supervision deadline per shard attempt",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=256,
        metavar="N",
        help="global queued-job bound; a full queue answers 503 + Retry-After",
    )
    serve.add_argument(
        "--wedge-deadline",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="watchdog aborts (resumable) a running job with no observable "
        "progress for this long",
    )
    serve.add_argument(
        "--auto-resume",
        action="store_true",
        help="automatically resume aborted(resumable) jobs on start-up and "
        "after watchdog aborts, with capped retries",
    )
    serve.add_argument(
        "--auto-resume-max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="automatic resume attempts per job chain before giving up",
    )
    serve.set_defaults(func=cmd_serve)

    jobs = commands.add_parser(
        "jobs", help="submit and manage jobs on a running control plane"
    )
    jobs_commands = jobs.add_subparsers(dest="jobs_command", required=True)

    def _jobs_common(subparser) -> None:
        subparser.add_argument(
            "--url",
            default="http://127.0.0.1:8979",
            help="control plane base URL",
        )
        subparser.add_argument(
            "--tenant", required=True, help="tenant namespace to act as"
        )
        subparser.add_argument(
            "--json", action="store_true", help="machine-readable output"
        )

    jobs_submit = jobs_commands.add_parser("submit", help="submit a fleet job")
    _jobs_common(jobs_submit)
    jobs_submit.add_argument(
        "--profiles",
        default="D1",
        help="comma-separated testbed device ids (e.g. D1,D2)",
    )
    jobs_submit.add_argument(
        "--strategies",
        default="sequential",
        help=f"comma-separated strategies: {', '.join(STRATEGY_NAMES)}",
    )
    jobs_submit.add_argument(
        "--targets",
        default="l2cap",
        help=f"comma-separated protocol targets: {', '.join(target_names())}",
    )
    jobs_submit.add_argument(
        "--budget", type=int, default=600, help="packet budget per campaign"
    )
    jobs_submit.add_argument("--seed", type=int, default=7)
    jobs_submit.add_argument(
        "--disarm", action="store_true", help="disable injected bugs"
    )
    jobs_submit.add_argument(
        "--priority",
        type=int,
        default=5,
        help="0 (most urgent) to 9; FIFO within a priority",
    )
    jobs_submit.add_argument(
        "--corpus",
        action="store_true",
        help="seed from and write back to the tenant's corpus namespace",
    )
    jobs_submit.add_argument(
        "--state", default="OPEN", help="focus state for targeted strategies"
    )
    jobs_submit.add_argument(
        "--batch", type=int, default=None, help="campaigns per worker shard"
    )
    jobs_submit.add_argument(
        "--idempotency-key",
        default=None,
        metavar="KEY",
        help="deduplication key: resubmitting with the same key returns the "
        "original job and charges nothing (makes the submit retry-safe)",
    )
    jobs_submit.add_argument(
        "--wait", action="store_true", help="block until the job finishes"
    )
    jobs_submit.add_argument(
        "--timeout", type=float, default=600.0, help="--wait timeout seconds"
    )
    jobs_submit.set_defaults(func=cmd_jobs_submit)

    jobs_list = jobs_commands.add_parser("list", help="list this tenant's jobs")
    _jobs_common(jobs_list)
    jobs_list.set_defaults(func=cmd_jobs_list)

    jobs_show = jobs_commands.add_parser("show", help="one job's record")
    _jobs_common(jobs_show)
    jobs_show.add_argument("job_id")
    jobs_show.add_argument(
        "--report",
        action="store_true",
        help="also print the merged fleet report JSON",
    )
    jobs_show.set_defaults(func=cmd_jobs_show)

    jobs_cancel = jobs_commands.add_parser(
        "cancel", help="cancel a queued or running job"
    )
    _jobs_common(jobs_cancel)
    jobs_cancel.add_argument("job_id")
    jobs_cancel.set_defaults(func=cmd_jobs_cancel)

    jobs_resume = jobs_commands.add_parser(
        "resume", help="resume a cancelled/aborted job from its checkpoints"
    )
    _jobs_common(jobs_resume)
    jobs_resume.add_argument("job_id")
    jobs_resume.add_argument(
        "--wait", action="store_true", help="block until the job finishes"
    )
    jobs_resume.add_argument(
        "--timeout", type=float, default=600.0, help="--wait timeout seconds"
    )
    jobs_resume.set_defaults(func=cmd_jobs_resume)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    _configure_logging(verbose=args.verbose, quiet=args.quiet)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
