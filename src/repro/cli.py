"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``devices`` — list the Table V testbed profiles.
* ``scan D2`` — run the target-scanning phase against one profile.
* ``fuzz D2`` — run a full campaign (``--disarm`` for ratio mode;
  ``--target {l2cap,rfcomm,sdp,obex}`` picks the protocol).
* ``fleet`` — run a profile × strategy × protocol fleet and merge
  the reports.
* ``compare`` — run the four-fuzzer comparison (Table VII, Fig. 10).
* ``survey`` — run Table VI across all eight devices.
* ``replay`` — replay a saved JSONL trace against a fresh target.
* ``corpus`` — inspect, minimise, replay or export a shared corpus.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.comparison import figure10_bars, run_comparison, table7_rows
from repro.analysis.state_coverage import coverage_report
from repro.analysis.traceio import save_trace
from repro.core.config import FuzzConfig
from repro.core.fleet import FleetOrchestrator
from repro.core.packet_queue import PacketQueue
from repro.core.strategies import STRATEGY_NAMES, make_strategy
from repro.core.target_scanning import TargetScanner
from repro.hci.transport import VirtualLink
from repro.l2cap.states import ChannelState
from repro.targets import make_target, target_names
from repro.testbed.profiles import ALL_PROFILES, PROFILES_BY_ID
from repro.testbed.session import FuzzSession


def _profile(device_id: str):
    profile = PROFILES_BY_ID.get(device_id.upper())
    if profile is None:
        raise SystemExit(
            f"unknown device {device_id!r}; choose from {', '.join(PROFILES_BY_ID)}"
        )
    return profile


def cmd_devices(_args) -> int:
    """List the testbed."""
    for profile in ALL_PROFILES:
        vulns = ", ".join(v.vulnerability_id for v in profile.vulnerabilities) or "-"
        print(
            f"{profile.device_id}  {profile.name:<16} {profile.bt_stack:<14} "
            f"{profile.os_or_fw:<16} ports={len(profile.services):<3} bugs: {vulns}"
        )
    return 0


def cmd_scan(args) -> int:
    """Phase 1 only: discover the target's ports."""
    profile = _profile(args.device)
    device = profile.build(armed=False)
    link = VirtualLink(clock=device.clock)
    device.attach_to(link)
    queue = PacketQueue(link)
    result = TargetScanner(queue, device.inquiry).scan()
    meta = result.meta
    print(f"{meta.name}  [{meta.mac_address}, OUI {meta.oui}, {meta.device_class}]")
    for probe in result.probes:
        status = (
            "open (no pairing)"
            if probe.connectable
            else ("requires pairing" if probe.requires_pairing else "closed")
        )
        print(f"  PSM 0x{probe.psm:04X}  {probe.name:<28} {status}")
    print(f"fuzzing port: 0x{result.primary_psm:04X}")
    return 0


def cmd_fuzz(args) -> int:
    """Full campaign against one device (any registered protocol target)."""
    from repro.core.fleet import load_corpus_seeds

    profile = _profile(args.device)
    config = FuzzConfig(max_packets=args.budget, seed=args.seed)
    prior_visits, dictionary = load_corpus_seeds(args.corpus)
    # Bad names never reach here: both flags carry registry-generated
    # argparse choices.
    strategy = make_strategy(args.strategy, prior_visits=prior_visits or None)
    target = make_target(args.target)
    session = FuzzSession(
        profile,
        config,
        armed=not args.disarm,
        zero_latency=args.disarm,
        auto_reset=args.auto_reset,
        strategy=strategy,
        corpus_dir=args.corpus,
        dictionary=dictionary,
        target=target,
    )
    report = session.run()
    print(report.summary())
    print()
    print(coverage_report(report.covered_states, target.state_universe()))
    if args.save_trace:
        count = save_trace(session.fuzzer.sniffer, args.save_trace)
        print(f"trace: {count} packets written to {args.save_trace}")
    if args.show_log:
        print(session.fuzzer.log.to_jsonl())
    return 0 if (args.disarm or report.vulnerability_found) else 1


def _fleet_profiles(spec: str):
    """Resolve ``--profiles``: a count ("4") or id list ("D1,D5")."""
    if spec.isdigit():
        count = int(spec)
        if not 1 <= count <= len(ALL_PROFILES):
            raise SystemExit(
                f"--profiles count must be 1..{len(ALL_PROFILES)}, got {count}"
            )
        return ALL_PROFILES[:count]
    return tuple(_profile(device_id) for device_id in spec.split(","))


def _fleet_workers(spec: str) -> int:
    """Resolve ``--workers``: a count or ``auto`` (one per CPU core)."""
    if spec == "auto":
        import os

        return max(1, os.cpu_count() or 1)
    try:
        workers = int(spec)
    except ValueError:
        raise SystemExit(
            f"--workers must be a positive integer or 'auto', got {spec!r}"
        ) from None
    if workers < 1:
        raise SystemExit("--workers must be >= 1")
    return workers


def cmd_fleet(args) -> int:
    """Run a profile × strategy fleet and print the merged report."""
    profiles = _fleet_profiles(args.profiles)
    workers = _fleet_workers(args.workers)
    if args.batch is not None and args.batch < 1:
        raise SystemExit("--batch must be >= 1")
    if args.budget < 1:
        raise SystemExit("--budget must be >= 1")
    try:
        target_state = ChannelState(args.target_state.upper())
    except ValueError:
        raise SystemExit(f"unknown target state {args.target_state!r}") from None
    strategies = args.strategies.split(",")
    targets = args.targets.split(",")
    try:
        # Validate eagerly so unknown names and unroutable targets fail
        # with a clean message instead of mid-campaign. The orchestrator
        # gets the *names*, keeping the fleet process-pool-safe.
        for name in strategies:
            make_strategy(name, target=target_state)
        for name in targets:
            make_target(name)
    except ValueError as error:
        raise SystemExit(str(error)) from None
    orchestrator = FleetOrchestrator(
        profiles=profiles,
        strategies=strategies,
        fleet_seed=args.seed,
        workers=workers,
        base_config=FuzzConfig(max_packets=args.budget),
        armed=not args.disarm,
        target_state=target_state,
        corpus_dir=args.corpus,
        targets=targets,
        batch=args.batch,
    )
    with orchestrator:
        report = orchestrator.run()
    rendered = report.to_json() if args.format == "json" else report.to_markdown()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"fleet report written to {args.output}")
    else:
        print(rendered)
    return 0


def cmd_compare(args) -> int:
    """Four-fuzzer comparison (Table VII + Fig. 10)."""
    results = run_comparison(max_packets=args.budget)
    print(f"{'fuzzer':<11}{'MP%':>8}{'PR%':>8}{'eff%':>8}{'pps':>9}")
    for row in table7_rows(results):
        print(
            f"{row['fuzzer']:<11}{row['mp_ratio']:>8}{row['pr_ratio']:>8}"
            f"{row['mutation_efficiency']:>8}{row['pps']:>9}"
        )
    print()
    for name, count in figure10_bars(results).items():
        print(f"{name:<11} {count:>2}/19  {'#' * count}")
    return 0


def cmd_replay(args) -> int:
    """Replay a saved JSONL trace's sent packets against a fresh target.

    Exit code 0 when the trace crashes the target (the finding
    reproduces), 1 when the target survives — CI-friendly either way.
    """
    from repro.analysis.traceio import load_trace
    from repro.core.triage import (
        minimize_trigger,
        profile_target_factory,
        replay,
        sent_packets,
        triage_report,
    )

    profile = _profile(args.device)
    try:
        with open(args.trace, encoding="utf-8") as handle:
            packets = sent_packets(load_trace(handle.read()))
    except OSError as error:
        raise SystemExit(f"cannot read trace: {error}") from None
    if not packets:
        raise SystemExit(f"no sent packets in trace {args.trace!r}")
    factory = profile_target_factory(profile, armed=not args.disarm)
    outcome = replay(packets, factory)
    if outcome.crashed:
        print(
            f"crash reproduced after {outcome.frames_replayed} packet(s): "
            f"{outcome.error_message}"
            + (f" [{outcome.crash_id}]" if outcome.crash_id else "")
        )
    else:
        print(f"no crash: target survived all {outcome.frames_replayed} packet(s)")
    if args.minimize:
        if not outcome.crashed:
            print("nothing to minimise (sequence does not crash the target)")
        else:
            minimal = minimize_trigger(packets, factory)
            print(triage_report(minimal, replay(minimal, factory)))
    return 0 if outcome.crashed else 1


def _corpus_handles(args):
    from repro.corpus import CorpusStore, FindingDatabase, open_backend

    backend = open_backend(args.dir)
    store = CorpusStore(args.dir, backend=backend)
    database = FindingDatabase(args.dir, backend=backend)
    if not store.exists() and not len(database):
        raise SystemExit(f"no corpus at {args.dir!r}")
    return store, database


def cmd_corpus_stats(args) -> int:
    """Summarise a corpus directory."""
    store, database = _corpus_handles(args)
    # One aggregate pass through the backend: a directory scan on the
    # file layout, indexed queries on SQLite.
    stats = store.stats()
    canonical_note = " STALE" if stats.canonical_stale else ""
    print(f"corpus: {args.dir} [{store.backend.name} backend]")
    print(
        f"entries: {stats.entry_count}"
        f" ({stats.packet_total} packets,"
        f" canonical: {stats.canonical_count}{canonical_note})"
    )
    print(
        f"coverage: {len(stats.state_tokens)} state(s),"
        f" {len(stats.transition_tokens)} transition(s)"
    )
    for token, count in sorted(stats.state_frequencies.items()):
        print(f"  {token:<22} {count}")
    records = database.records()
    print(f"findings: {len(records)} bucket(s)")
    for record in records:
        print(
            f"  [{record.vulnerability_class}] {record.vendor} {record.state}"
            f" x{record.occurrences}"
            + (f" [{record.crash_id}]" if record.crash_id else "")
            + f" ({len(record.packets)}-packet reproducer)"
        )
    return 0


def cmd_corpus_minimize(args) -> int:
    """cmin: write the canonical minimised corpus."""
    store, _ = _corpus_handles(args)
    before = len(store)
    canonical = store.minimize()
    packets = sum(entry.packet_count for entry in canonical)
    print(
        f"minimised {before} entr(ies) to {len(canonical)} canonical"
        f" ({packets} packets) -> {store.backend.describe_canonical()}"
    )
    return 0


def cmd_corpus_replay(args) -> int:
    """Regression-replay every stored finding (and optionally entries).

    Exit code 0 when everything reproduces exactly as stored, 1 when
    any bucket regressed.
    """
    from repro.corpus import replay_entry, replay_finding

    store, database = _corpus_handles(args)
    regressions = 0
    for record in database.records():
        result = replay_finding(record, PROFILES_BY_ID)
        status = "ok" if not result.regression else "REGRESSION"
        print(
            f"finding {record.bucket_id} [{record.vulnerability_class}]"
            f" {record.vendor}: {status}"
            + (
                ""
                if result.reproduced
                else " (no longer crashes)"
            )
        )
        regressions += int(result.regression)
    if args.entries:
        # seed_entries(): the canonical set while fresh, the live entry
        # set once entries were added past the last minimize.
        for entry in store.seed_entries():
            result = replay_entry(entry, PROFILES_BY_ID)
            print(
                f"entry {entry.entry_id[:12]} ({entry.device_id}):"
                f" {result.packets_replayed} packet(s),"
                f" {len(result.covered_states)} state(s)"
                + (f", crashed: {result.error_message}" if result.crashed else "")
            )
    print(f"{len(database)} finding(s), {regressions} regression(s)")
    return 1 if regressions else 0


def cmd_corpus_export(args) -> int:
    """Export every corpus entry as a single JSONL document."""
    store, _ = _corpus_handles(args)
    count = store.export_jsonl(args.output)
    print(f"{count} entr(ies) exported to {args.output}")
    return 0


def cmd_corpus_migrate(args) -> int:
    """Convert a file-layout corpus to the SQLite (WAL) backend in place."""
    from repro.corpus.migrate import MigrationError, migrate_to_sqlite

    try:
        report = migrate_to_sqlite(args.dir)
    except MigrationError as error:
        raise SystemExit(str(error)) from None
    print(report.summary())
    return 0


def cmd_survey(args) -> int:
    """Table VI across the whole testbed."""
    for profile in ALL_PROFILES:
        budget = args.d8_budget if profile.device_id == "D8" else args.budget
        session = FuzzSession(profile, FuzzConfig(max_packets=budget))
        report = session.run()
        row = report.as_table6_row()
        print(
            f"{profile.device_id}  {profile.name:<16} vuln={row['vuln']:<4}"
            f"{row['description']:<7} elapsed={row['elapsed']}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="L2Fuzz reproduction: stateful Bluetooth L2CAP fuzzing "
        "against a virtual testbed.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("devices", help="list testbed devices").set_defaults(
        func=cmd_devices
    )

    scan = commands.add_parser("scan", help="run the target-scanning phase")
    scan.add_argument("device", help="device id (D1..D8)")
    scan.set_defaults(func=cmd_scan)

    fuzz = commands.add_parser("fuzz", help="run a fuzzing campaign")
    fuzz.add_argument("device", help="device id (D1..D8)")
    fuzz.add_argument("--budget", type=int, default=50_000, help="packet budget")
    fuzz.add_argument("--seed", type=int, default=0x1202, help="campaign seed")
    fuzz.add_argument(
        "--disarm", action="store_true", help="disable injected bugs (ratio mode)"
    )
    fuzz.add_argument(
        "--auto-reset",
        action="store_true",
        help="reset crashed targets and continue (long-term fuzzing)",
    )
    fuzz.add_argument("--save-trace", metavar="PATH", help="write the trace as JSONL")
    fuzz.add_argument("--show-log", action="store_true", help="print the campaign log")
    # Choices and help are generated from the registries at parser-build
    # time, so a newly registered strategy or protocol target appears
    # here automatically and a bad value fails with the valid names
    # listed. target_names() is read live (not the import-time
    # TARGET_NAMES snapshot) so user-registered targets are accepted.
    fuzz.add_argument(
        "--strategy",
        default="sequential",
        choices=STRATEGY_NAMES,
        help=f"exploration strategy (one of: {', '.join(STRATEGY_NAMES)})",
    )
    fuzz.add_argument(
        "--target",
        default="l2cap",
        choices=target_names(),
        help=f"protocol fuzz target (one of: {', '.join(target_names())})",
    )
    fuzz.add_argument(
        "--corpus",
        metavar="DIR",
        help="shared corpus directory to seed from and write back to",
    )
    fuzz.set_defaults(func=cmd_fuzz)

    fleet = commands.add_parser(
        "fleet", help="run a profile × strategy fleet campaign"
    )
    fleet.add_argument(
        "--profiles",
        default="4",
        help="profile count (first N of the testbed) or comma-separated ids",
    )
    fleet.add_argument(
        "--strategies",
        default="sequential",
        help=f"comma-separated strategies: {', '.join(STRATEGY_NAMES)}",
    )
    fleet.add_argument(
        "--targets",
        default="l2cap",
        help=f"comma-separated protocol targets: {', '.join(target_names())}",
    )
    fleet.add_argument(
        "--workers",
        default="1",
        help="worker-pool size, or 'auto' for one worker per CPU core",
    )
    fleet.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help="campaigns per worker shard (default: auto, ~4 shards/worker)",
    )
    fleet.add_argument("--seed", type=int, default=7, help="fleet master seed")
    fleet.add_argument(
        "--budget", type=int, default=3000, help="packet budget per campaign"
    )
    fleet.add_argument(
        "--disarm", action="store_true", help="disable injected bugs fleet-wide"
    )
    fleet.add_argument(
        "--target-state",
        default="OPEN",
        help="focus state for the targeted strategy",
    )
    fleet.add_argument(
        "--format", choices=("markdown", "json"), default="markdown"
    )
    fleet.add_argument("--output", metavar="PATH", help="write the report to a file")
    fleet.add_argument(
        "--corpus",
        metavar="DIR",
        help="shared corpus directory to seed from and write back to",
    )
    fleet.set_defaults(func=cmd_fleet)

    replay = commands.add_parser(
        "replay", help="replay a saved JSONL trace against a fresh target"
    )
    replay.add_argument("trace", help="trace file written by fuzz --save-trace")
    replay.add_argument("--device", default="D2", help="device id (D1..D8)")
    replay.add_argument(
        "--disarm", action="store_true", help="replay against a disarmed target"
    )
    replay.add_argument(
        "--minimize",
        action="store_true",
        help="delta-debug the trace down to a minimal reproducer",
    )
    replay.set_defaults(func=cmd_replay)

    corpus = commands.add_parser(
        "corpus", help="inspect, minimise, replay or export a shared corpus"
    )
    corpus_commands = corpus.add_subparsers(dest="corpus_command", required=True)

    corpus_stats = corpus_commands.add_parser("stats", help="corpus summary")
    corpus_stats.add_argument("dir", help="corpus directory")
    corpus_stats.set_defaults(func=cmd_corpus_stats)

    corpus_minimize = corpus_commands.add_parser(
        "minimize", help="cmin: write the canonical minimised corpus"
    )
    corpus_minimize.add_argument("dir", help="corpus directory")
    corpus_minimize.set_defaults(func=cmd_corpus_minimize)

    corpus_replay = corpus_commands.add_parser(
        "replay", help="regression-replay every stored finding"
    )
    corpus_replay.add_argument("dir", help="corpus directory")
    corpus_replay.add_argument(
        "--entries",
        action="store_true",
        help="also replay corpus entries and report their coverage",
    )
    corpus_replay.set_defaults(func=cmd_corpus_replay)

    corpus_export = corpus_commands.add_parser(
        "export", help="export all entries as one JSONL document"
    )
    corpus_export.add_argument("dir", help="corpus directory")
    corpus_export.add_argument(
        "--output", required=True, metavar="PATH", help="output JSONL path"
    )
    corpus_export.set_defaults(func=cmd_corpus_export)

    corpus_migrate = corpus_commands.add_parser(
        "migrate",
        help="convert a file-layout corpus to the SQLite (WAL) backend",
    )
    corpus_migrate.add_argument("dir", help="corpus directory")
    corpus_migrate.set_defaults(func=cmd_corpus_migrate)

    compare = commands.add_parser("compare", help="four-fuzzer comparison")
    compare.add_argument("--budget", type=int, default=20_000)
    compare.set_defaults(func=cmd_compare)

    survey = commands.add_parser("survey", help="Table VI across all devices")
    survey.add_argument("--budget", type=int, default=40_000)
    survey.add_argument("--d8-budget", type=int, default=250_000)
    survey.set_defaults(func=cmd_survey)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
