"""L2Fuzz reproduction: stateful fuzzing of the Bluetooth L2CAP layer.

A from-scratch Python reproduction of "L2Fuzz: Discovering Bluetooth
L2CAP Vulnerabilities Using Stateful Fuzz Testing" (DSN 2022), including
the fuzzer itself, a virtual Bluetooth testbed standing in for the
paper's physical devices, the baseline fuzzers it is compared against,
and the measurement harness behind every table and figure.

Quickstart::

    from repro import FuzzConfig, run_campaign
    from repro.testbed import D2

    report = run_campaign(D2, FuzzConfig(max_packets=5_000))
    print(report.summary())
"""

import logging

from repro.core.config import FuzzConfig
from repro.core.fuzzer import L2Fuzz
from repro.core.report import CampaignReport
from repro.l2cap.constants import CommandCode
from repro.l2cap.packets import L2capPacket
from repro.l2cap.states import ChannelState
from repro.stack.device import VirtualDevice
from repro.testbed.session import FuzzSession, run_campaign

__version__ = "1.0.0"

# Library logging etiquette: stay silent unless the application wires a
# handler. The CLI attaches its own console handlers in repro.cli.main.
logging.getLogger(__name__).addHandler(logging.NullHandler())

__all__ = [
    "CampaignReport",
    "ChannelState",
    "CommandCode",
    "FuzzConfig",
    "FuzzSession",
    "L2Fuzz",
    "L2capPacket",
    "VirtualDevice",
    "__version__",
    "run_campaign",
]
