"""SDP data-element codec (Core 5.2 Vol 3 Part B §3).

Every value in an SDP PDU is a *data element*: a type descriptor byte
(5-bit type, 3-bit size index) followed by an optional length and the
value. Sequences nest, which is how service records, attribute lists and
protocol descriptor lists are expressed.
"""

from __future__ import annotations

import dataclasses
import enum
import struct

from repro.errors import PacketDecodeError, PacketEncodeError


class ElementType(enum.IntEnum):
    """The 5-bit data-element type descriptors."""

    NIL = 0
    UNSIGNED_INT = 1
    SIGNED_INT = 2
    UUID = 3
    TEXT = 4
    BOOL = 5
    SEQUENCE = 6
    ALTERNATIVE = 7
    URL = 8


#: Size-index → fixed byte count (indexes 5-7 use an explicit length).
_FIXED_SIZES = {0: 1, 1: 2, 2: 4, 3: 8, 4: 16}


@dataclasses.dataclass(frozen=True)
class DataElement:
    """One decoded data element.

    :param element_type: the 5-bit type.
    :param value: python-native value — int for numeric/uuid/bool types,
        str for text/url, tuple of elements for sequence/alternative,
        None for nil.
    :param width: byte width for numeric and uuid types (2, 4, 8, 16).
    """

    element_type: ElementType
    value: object
    width: int = 2

    # -- encoding -----------------------------------------------------------------

    def encode(self) -> bytes:
        """Serialise this element (recursively for sequences)."""
        kind = self.element_type
        if kind is ElementType.NIL:
            return bytes([0x00])
        if kind in (ElementType.UNSIGNED_INT, ElementType.SIGNED_INT, ElementType.UUID):
            return self._encode_numeric()
        if kind is ElementType.BOOL:
            return bytes([(ElementType.BOOL << 3) | 0]) + bytes([1 if self.value else 0])
        if kind in (ElementType.TEXT, ElementType.URL):
            payload = str(self.value).encode("utf-8")
            return self._with_variable_header(payload)
        if kind in (ElementType.SEQUENCE, ElementType.ALTERNATIVE):
            payload = b"".join(child.encode() for child in self.value)
            return self._with_variable_header(payload)
        raise PacketEncodeError(f"unsupported element type {kind}")

    def _encode_numeric(self) -> bytes:
        size_index = {2: 1, 4: 2, 8: 3, 16: 4}.get(self.width)
        if self.width == 1:
            size_index = 0
        if size_index is None:
            raise PacketEncodeError(f"unsupported numeric width {self.width}")
        header = bytes([(self.element_type << 3) | size_index])
        if self.element_type is ElementType.SIGNED_INT:
            return header + int(self.value).to_bytes(self.width, "big", signed=True)
        return header + int(self.value).to_bytes(self.width, "big")

    def _with_variable_header(self, payload: bytes) -> bytes:
        if len(payload) <= 0xFF:
            header = bytes([(self.element_type << 3) | 5]) + struct.pack(">B", len(payload))
        elif len(payload) <= 0xFFFF:
            header = bytes([(self.element_type << 3) | 6]) + struct.pack(">H", len(payload))
        else:
            header = bytes([(self.element_type << 3) | 7]) + struct.pack(">I", len(payload))
        return header + payload

    # -- decoding -----------------------------------------------------------------

    @classmethod
    def decode(cls, raw: bytes) -> "DataElement":
        """Decode one element from *raw* (which must contain exactly one).

        :raises PacketDecodeError: on truncation or trailing bytes.
        """
        element, consumed = cls.decode_prefix(raw)
        if consumed != len(raw):
            raise PacketDecodeError(
                f"{len(raw) - consumed} trailing bytes after data element"
            )
        return element

    @classmethod
    def decode_prefix(cls, raw: bytes, offset: int = 0) -> tuple["DataElement", int]:
        """Decode one element starting at *offset*; return (element, end).

        :raises PacketDecodeError: on malformed input.
        """
        if offset >= len(raw):
            raise PacketDecodeError("empty data element")
        descriptor = raw[offset]
        try:
            kind = ElementType(descriptor >> 3)
        except ValueError as exc:
            raise PacketDecodeError(f"unknown element type {descriptor >> 3}") from exc
        size_index = descriptor & 0x07
        offset += 1

        if kind is ElementType.NIL:
            if size_index != 0:
                raise PacketDecodeError("nil element with nonzero size")
            return cls(ElementType.NIL, None, 0), offset

        length, offset = cls._decode_length(raw, offset, size_index, kind)
        if offset + length > len(raw):
            raise PacketDecodeError("truncated data element value")
        body = raw[offset : offset + length]
        end = offset + length

        if kind is ElementType.UNSIGNED_INT or kind is ElementType.UUID:
            return cls(kind, int.from_bytes(body, "big"), length), end
        if kind is ElementType.SIGNED_INT:
            return cls(kind, int.from_bytes(body, "big", signed=True), length), end
        if kind is ElementType.BOOL:
            if length != 1:
                raise PacketDecodeError(f"bool element of {length} bytes")
            return cls(kind, bool(body[0]), 1), end
        if kind in (ElementType.TEXT, ElementType.URL):
            return cls(kind, body.decode("utf-8", errors="replace"), len(body)), end
        # sequence / alternative: decode children until the region ends
        children = []
        child_offset = 0
        while child_offset < len(body):
            child, child_offset = cls.decode_prefix(body, child_offset)
            children.append(child)
        return cls(kind, tuple(children), len(body)), end

    @staticmethod
    def _decode_length(
        raw: bytes, offset: int, size_index: int, kind: ElementType
    ) -> tuple[int, int]:
        if size_index in _FIXED_SIZES:
            return _FIXED_SIZES[size_index], offset
        width = {5: 1, 6: 2, 7: 4}[size_index]
        if offset + width > len(raw):
            raise PacketDecodeError("truncated data element length")
        length = int.from_bytes(raw[offset : offset + width], "big")
        return length, offset + width


# -- convenience constructors ----------------------------------------------------


def nil() -> DataElement:
    """A nil element."""
    return DataElement(ElementType.NIL, None, 0)


def uint(value: int, width: int = 2) -> DataElement:
    """An unsigned integer element of *width* bytes."""
    return DataElement(ElementType.UNSIGNED_INT, value, width)


def uint8(value: int) -> DataElement:
    """A one-byte unsigned integer element."""
    return DataElement(ElementType.UNSIGNED_INT, value, 1)


def uint32(value: int) -> DataElement:
    """A four-byte unsigned integer element."""
    return DataElement(ElementType.UNSIGNED_INT, value, 4)


def uuid16(value: int) -> DataElement:
    """A 16-bit UUID element."""
    return DataElement(ElementType.UUID, value, 2)


def text(value: str) -> DataElement:
    """A text string element."""
    return DataElement(ElementType.TEXT, value, len(value))


def boolean(value: bool) -> DataElement:
    """A boolean element."""
    return DataElement(ElementType.BOOL, value, 1)


def sequence(*children: DataElement) -> DataElement:
    """A data-element sequence."""
    return DataElement(ElementType.SEQUENCE, tuple(children))
