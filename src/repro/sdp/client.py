"""Fuzzer-side SDP client: browse a target's services over the air.

Replaces the testbed's side-channel ``sdp_browse()`` with the real
protocol exchange the paper's tool performs: open an L2CAP channel to
PSM 0x0001, send a ServiceSearchAttributeRequest for the public browse
root, and parse the advertised (name, PSM, service class) triples out of
the attribute lists.
"""

from __future__ import annotations

import dataclasses

from repro.core.packet_queue import PacketQueue
from repro.errors import PacketDecodeError, ScanError
from repro.l2cap.constants import CommandCode, ConnectionResult, Psm
from repro.l2cap.packets import (
    L2capPacket,
    connection_request,
    disconnection_request,
)
from repro.sdp.constants import (
    AttributeId,
    DEFAULT_MAX_ATTRIBUTE_BYTES,
    PduId,
    ProtocolUuid,
    ServiceClass,
)
from repro.sdp.data_elements import DataElement, ElementType, sequence, uint32, uuid16
from repro.sdp.pdu import (
    SdpPdu,
    ServiceSearchAttributeRequest,
    ServiceSearchAttributeResponse,
)


@dataclasses.dataclass(frozen=True)
class BrowsedService:
    """One service discovered over the air."""

    psm: int
    name: str
    service_class: int

    #: Interface-compatibility shims with ServiceRecord (the scanner only
    #: needs .psm and .name).
    @property
    def requires_pairing(self) -> bool:
        """Unknown from SDP alone; the port probe decides this."""
        return False


class SdpClient:
    """Performs a browse over a live packet queue."""

    def __init__(self, queue: PacketQueue, our_cid: int = 0x0F00) -> None:
        self.queue = queue
        self.our_cid = our_cid

    def browse(self) -> tuple[BrowsedService, ...]:
        """Full browse: connect, query, parse, disconnect.

        :raises ScanError: when the SDP port cannot be reached or the
            response cannot be parsed.
        """
        target_cid = self._connect()
        try:
            response = self._query(target_cid)
        finally:
            self._disconnect(target_cid)
        return self._parse(response)

    # -- steps ----------------------------------------------------------------------

    def _connect(self) -> int:
        responses = self.queue.exchange(
            connection_request(
                psm=Psm.SDP, scid=self.our_cid, identifier=self.queue.take_identifier()
            )
        )
        for response in responses:
            if (
                response.code == CommandCode.CONNECTION_RSP
                and response.fields.get("result") == ConnectionResult.SUCCESS
            ):
                return response.fields.get("dcid", 0)
        raise ScanError("SDP port did not accept a connection")

    def _query(self, target_cid: int) -> ServiceSearchAttributeResponse:
        request = ServiceSearchAttributeRequest(
            search_pattern=sequence(uuid16(ServiceClass.PUBLIC_BROWSE_ROOT)),
            max_attribute_bytes=DEFAULT_MAX_ATTRIBUTE_BYTES,
            attribute_id_list=sequence(uint32(0x0000FFFF)),  # all attributes
        )
        pdu = SdpPdu(
            PduId.SERVICE_SEARCH_ATTRIBUTE_REQUEST,
            transaction_id=self.queue.take_identifier(),
            parameters=request.encode(),
        )
        data_frame = L2capPacket(
            code=0, identifier=0, header_cid=target_cid, tail=pdu.encode(),
            fill_defaults=False,
        )
        responses = self.queue.exchange(data_frame)
        for response in responses:
            if response.header_cid == self.our_cid:
                try:
                    reply = SdpPdu.decode(response.tail)
                except PacketDecodeError as exc:
                    raise ScanError(f"undecodable SDP reply: {exc}") from exc
                if reply.pdu_id == PduId.SERVICE_SEARCH_ATTRIBUTE_RESPONSE:
                    return ServiceSearchAttributeResponse.decode(reply.parameters)
                raise ScanError(f"SDP error reply (pdu id {reply.pdu_id:#x})")
        raise ScanError("no SDP reply received")

    def _disconnect(self, target_cid: int) -> None:
        self.queue.exchange(
            disconnection_request(
                dcid=target_cid,
                scid=self.our_cid,
                identifier=self.queue.take_identifier(),
            )
        )

    # -- parsing --------------------------------------------------------------------

    def _parse(
        self, response: ServiceSearchAttributeResponse
    ) -> tuple[BrowsedService, ...]:
        lists = response.attribute_lists
        if lists.element_type is not ElementType.SEQUENCE:
            raise ScanError("attribute lists are not a sequence")
        services = []
        for record_list in lists.value:
            service = self._parse_record(record_list)
            if service is not None:
                services.append(service)
        return tuple(services)

    def _parse_record(self, record_list: DataElement) -> BrowsedService | None:
        if record_list.element_type is not ElementType.SEQUENCE:
            return None
        attributes = _pairs(record_list)
        psm = _psm_from_protocol_list(
            attributes.get(AttributeId.PROTOCOL_DESCRIPTOR_LIST)
        )
        if psm is None:
            return None
        name_element = attributes.get(AttributeId.SERVICE_NAME)
        name = str(name_element.value) if name_element is not None else f"psm-{psm:#x}"
        class_element = attributes.get(AttributeId.SERVICE_CLASS_ID_LIST)
        service_class = 0
        if class_element is not None and class_element.value:
            service_class = int(class_element.value[0].value)
        return BrowsedService(psm=psm, name=name, service_class=service_class)


def _pairs(record_list: DataElement) -> dict[int, DataElement]:
    """Interpret a flat (id, value, id, value, ...) attribute list."""
    elements = list(record_list.value)
    attributes: dict[int, DataElement] = {}
    for i in range(0, len(elements) - 1, 2):
        key = elements[i]
        if key.element_type is ElementType.UNSIGNED_INT:
            attributes[int(key.value)] = elements[i + 1]
    return attributes


def _psm_from_protocol_list(protocol_list: DataElement | None) -> int | None:
    """Extract the L2CAP PSM from a protocol descriptor list."""
    if protocol_list is None or protocol_list.element_type is not ElementType.SEQUENCE:
        return None
    for descriptor in protocol_list.value:
        if descriptor.element_type is not ElementType.SEQUENCE:
            continue
        children = list(descriptor.value)
        if not children:
            continue
        head = children[0]
        if (
            head.element_type is ElementType.UUID
            and int(head.value) == ProtocolUuid.L2CAP
            and len(children) > 1
            and children[1].element_type is ElementType.UNSIGNED_INT
        ):
            return int(children[1].value)
    return None
