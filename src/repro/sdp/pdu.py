"""SDP PDU framing and parameter codecs (Core 5.2 Vol 3 Part B §4).

PDU header: ``pdu_id(1) | transaction_id(2, BE) | parameter_length(2, BE)``
followed by PDU-specific parameters. Requests and responses end with a
continuation-state field; this implementation always answers within one
PDU, so the continuation state is the empty marker ``0x00``.
"""

from __future__ import annotations

import dataclasses
import struct

from repro.errors import PacketDecodeError
from repro.sdp.constants import PduId
from repro.sdp.data_elements import DataElement

PDU_HEADER_LEN = 5

#: The empty continuation state (no continuation).
NO_CONTINUATION = b"\x00"


@dataclasses.dataclass(frozen=True)
class SdpPdu:
    """One SDP PDU: header plus raw parameters."""

    pdu_id: int
    transaction_id: int
    parameters: bytes

    def encode(self) -> bytes:
        """Serialise header + parameters."""
        return (
            struct.pack(">BHH", self.pdu_id & 0xFF, self.transaction_id & 0xFFFF,
                        len(self.parameters))
            + self.parameters
        )

    @classmethod
    def decode(cls, raw: bytes) -> "SdpPdu":
        """Parse a PDU.

        :raises PacketDecodeError: on truncation or length mismatch.
        """
        if len(raw) < PDU_HEADER_LEN:
            raise PacketDecodeError(f"SDP PDU too short: {len(raw)} bytes")
        pdu_id, transaction_id, param_len = struct.unpack_from(">BHH", raw, 0)
        parameters = raw[PDU_HEADER_LEN:]
        if param_len != len(parameters):
            raise PacketDecodeError(
                f"SDP parameter length {param_len} disagrees with "
                f"{len(parameters)} bytes present"
            )
        return cls(pdu_id, transaction_id, parameters)


# -- parameter codecs --------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ServiceSearchAttributeRequest:
    """Parameters of a ServiceSearchAttributeRequest."""

    search_pattern: DataElement  # sequence of UUIDs
    max_attribute_bytes: int
    attribute_id_list: DataElement  # sequence of u16 ids / u32 ranges

    def encode(self) -> bytes:
        return (
            self.search_pattern.encode()
            + struct.pack(">H", self.max_attribute_bytes)
            + self.attribute_id_list.encode()
            + NO_CONTINUATION
        )

    @classmethod
    def decode(cls, raw: bytes) -> "ServiceSearchAttributeRequest":
        pattern, offset = DataElement.decode_prefix(raw)
        if offset + 2 > len(raw):
            raise PacketDecodeError("truncated max-attribute-bytes")
        (max_bytes,) = struct.unpack_from(">H", raw, offset)
        offset += 2
        id_list, offset = DataElement.decode_prefix(raw, offset)
        if offset >= len(raw):
            raise PacketDecodeError("missing continuation state")
        return cls(pattern, max_bytes, id_list)


@dataclasses.dataclass(frozen=True)
class ServiceSearchAttributeResponse:
    """Parameters of a ServiceSearchAttributeResponse."""

    attribute_lists: DataElement  # sequence of per-record attribute lists

    def encode(self) -> bytes:
        body = self.attribute_lists.encode()
        return struct.pack(">H", len(body)) + body + NO_CONTINUATION

    @classmethod
    def decode(cls, raw: bytes) -> "ServiceSearchAttributeResponse":
        if len(raw) < 3:
            raise PacketDecodeError("truncated ServiceSearchAttributeResponse")
        (byte_count,) = struct.unpack_from(">H", raw, 0)
        body = raw[2 : 2 + byte_count]
        if len(body) != byte_count:
            raise PacketDecodeError("attribute-list byte count disagrees")
        return cls(DataElement.decode(body))


@dataclasses.dataclass(frozen=True)
class ServiceSearchRequest:
    """Parameters of a ServiceSearchRequest."""

    search_pattern: DataElement
    max_record_count: int

    def encode(self) -> bytes:
        return (
            self.search_pattern.encode()
            + struct.pack(">H", self.max_record_count)
            + NO_CONTINUATION
        )

    @classmethod
    def decode(cls, raw: bytes) -> "ServiceSearchRequest":
        pattern, offset = DataElement.decode_prefix(raw)
        if offset + 2 > len(raw):
            raise PacketDecodeError("truncated max-record-count")
        (max_count,) = struct.unpack_from(">H", raw, offset)
        return cls(pattern, max_count)


@dataclasses.dataclass(frozen=True)
class ServiceSearchResponse:
    """Parameters of a ServiceSearchResponse."""

    handles: tuple[int, ...]

    def encode(self) -> bytes:
        body = b"".join(struct.pack(">I", handle) for handle in self.handles)
        return (
            struct.pack(">HH", len(self.handles), len(self.handles))
            + body
            + NO_CONTINUATION
        )

    @classmethod
    def decode(cls, raw: bytes) -> "ServiceSearchResponse":
        if len(raw) < 4:
            raise PacketDecodeError("truncated ServiceSearchResponse")
        total, current = struct.unpack_from(">HH", raw, 0)
        handles = []
        offset = 4
        for _ in range(current):
            if offset + 4 > len(raw):
                raise PacketDecodeError("truncated record handle list")
            (handle,) = struct.unpack_from(">I", raw, offset)
            handles.append(handle)
            offset += 4
        return cls(tuple(handles))


@dataclasses.dataclass(frozen=True)
class ServiceAttributeRequest:
    """Parameters of a ServiceAttributeRequest."""

    record_handle: int
    max_attribute_bytes: int
    attribute_id_list: DataElement

    def encode(self) -> bytes:
        return (
            struct.pack(">IH", self.record_handle, self.max_attribute_bytes)
            + self.attribute_id_list.encode()
            + NO_CONTINUATION
        )

    @classmethod
    def decode(cls, raw: bytes) -> "ServiceAttributeRequest":
        if len(raw) < 6:
            raise PacketDecodeError("truncated ServiceAttributeRequest")
        handle, max_bytes = struct.unpack_from(">IH", raw, 0)
        id_list, _offset = DataElement.decode_prefix(raw, 6)
        return cls(handle, max_bytes, id_list)


@dataclasses.dataclass(frozen=True)
class ServiceAttributeResponse:
    """Parameters of a ServiceAttributeResponse."""

    attribute_list: DataElement

    def encode(self) -> bytes:
        body = self.attribute_list.encode()
        return struct.pack(">H", len(body)) + body + NO_CONTINUATION

    @classmethod
    def decode(cls, raw: bytes) -> "ServiceAttributeResponse":
        if len(raw) < 3:
            raise PacketDecodeError("truncated ServiceAttributeResponse")
        (byte_count,) = struct.unpack_from(">H", raw, 0)
        body = raw[2 : 2 + byte_count]
        if len(body) != byte_count:
            raise PacketDecodeError("attribute-list byte count disagrees")
        return cls(DataElement.decode(body))


@dataclasses.dataclass(frozen=True)
class ErrorResponse:
    """Parameters of an SDP ErrorResponse."""

    error_code: int

    def encode(self) -> bytes:
        return struct.pack(">H", self.error_code)

    @classmethod
    def decode(cls, raw: bytes) -> "ErrorResponse":
        if len(raw) < 2:
            raise PacketDecodeError("truncated ErrorResponse")
        (code,) = struct.unpack_from(">H", raw, 0)
        return cls(code)


def request(pdu_id: PduId, transaction_id: int, params) -> bytes:
    """Frame *params* (a parameter dataclass) as a full PDU."""
    return SdpPdu(pdu_id, transaction_id, params.encode()).encode()
