"""SDP protocol constants (Core 5.2 Vol 3 Part B).

The Service Discovery Protocol is the port the paper's target-scanning
phase leans on: it is "supported by every Bluetooth device" and never
requires pairing (§III.B). These constants cover the PDU vocabulary,
the well-known attribute IDs, and the service-class UUIDs our virtual
devices advertise.
"""

from __future__ import annotations

import enum


class PduId(enum.IntEnum):
    """SDP PDU identifiers."""

    ERROR_RESPONSE = 0x01
    SERVICE_SEARCH_REQUEST = 0x02
    SERVICE_SEARCH_RESPONSE = 0x03
    SERVICE_ATTRIBUTE_REQUEST = 0x04
    SERVICE_ATTRIBUTE_RESPONSE = 0x05
    SERVICE_SEARCH_ATTRIBUTE_REQUEST = 0x06
    SERVICE_SEARCH_ATTRIBUTE_RESPONSE = 0x07


class ErrorCode(enum.IntEnum):
    """SDP Error Response codes."""

    INVALID_SDP_VERSION = 0x0001
    INVALID_SERVICE_RECORD_HANDLE = 0x0002
    INVALID_REQUEST_SYNTAX = 0x0003
    INVALID_PDU_SIZE = 0x0004
    INVALID_CONTINUATION_STATE = 0x0005
    INSUFFICIENT_RESOURCES = 0x0006


class AttributeId(enum.IntEnum):
    """Universal service attribute IDs."""

    SERVICE_RECORD_HANDLE = 0x0000
    SERVICE_CLASS_ID_LIST = 0x0001
    SERVICE_RECORD_STATE = 0x0002
    SERVICE_ID = 0x0003
    PROTOCOL_DESCRIPTOR_LIST = 0x0004
    BROWSE_GROUP_LIST = 0x0005
    SERVICE_NAME = 0x0100


class ServiceClass(enum.IntEnum):
    """Well-known 16-bit service-class UUIDs."""

    SERVICE_DISCOVERY_SERVER = 0x1000
    PUBLIC_BROWSE_ROOT = 0x1002
    SERIAL_PORT = 0x1101
    PANU = 0x1115
    AUDIO_SOURCE = 0x110A
    AUDIO_SINK = 0x110B
    AV_REMOTE_CONTROL = 0x110E
    HID_SERVICE = 0x1124


class ProtocolUuid(enum.IntEnum):
    """Protocol UUIDs used in protocol descriptor lists."""

    SDP = 0x0001
    RFCOMM = 0x0003
    OBEX = 0x0008
    BNEP = 0x000F
    HIDP = 0x0011
    AVCTP = 0x0017
    AVDTP = 0x0019
    L2CAP = 0x0100


#: The Bluetooth base UUID tail used to expand 16/32-bit UUIDs.
BASE_UUID_SUFFIX = bytes.fromhex("00001000800000805F9B34FB")

#: First service-record handle our servers hand out (0x0000..0xFFFF are
#: reserved).
FIRST_RECORD_HANDLE = 0x0001_0000

#: Largest attribute byte count a client may request per response.
DEFAULT_MAX_ATTRIBUTE_BYTES = 0xFFFF
