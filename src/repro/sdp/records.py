"""SDP service records built from a device's service directory.

Each L2CAP service a device advertises becomes one SDP record carrying
the universal attributes a scanner needs: the record handle, the service
class, the protocol descriptor list (which is where the L2CAP PSM is
published) and the human-readable name.
"""

from __future__ import annotations

import dataclasses

from repro.l2cap.constants import Psm
from repro.sdp.constants import (
    AttributeId,
    FIRST_RECORD_HANDLE,
    ProtocolUuid,
    ServiceClass,
)
from repro.sdp.data_elements import DataElement, sequence, text, uint, uint32, uuid16
from repro.stack.services import ServiceDirectory, ServiceRecord


#: PSM → advertised service-class UUID for the catalogue our virtual
#: devices use.
_SERVICE_CLASS_BY_PSM = {
    Psm.SDP: ServiceClass.SERVICE_DISCOVERY_SERVER,
    Psm.RFCOMM: ServiceClass.SERIAL_PORT,
    Psm.AVDTP: ServiceClass.AUDIO_SINK,
    Psm.AVCTP: ServiceClass.AV_REMOTE_CONTROL,
    Psm.HID_CONTROL: ServiceClass.HID_SERVICE,
    Psm.BNEP: ServiceClass.PANU,
}


@dataclasses.dataclass(frozen=True)
class SdpRecord:
    """One materialised service record.

    :param handle: 32-bit service record handle.
    :param service: the underlying L2CAP service.
    :param service_class: advertised service-class UUID.
    """

    handle: int
    service: ServiceRecord
    service_class: int

    def attributes(self) -> dict[int, DataElement]:
        """The record's attribute map (id → data element)."""
        protocol_list = sequence(
            sequence(uuid16(ProtocolUuid.L2CAP), uint(self.service.psm)),
        )
        return {
            AttributeId.SERVICE_RECORD_HANDLE: uint32(self.handle),
            AttributeId.SERVICE_CLASS_ID_LIST: sequence(uuid16(self.service_class)),
            AttributeId.PROTOCOL_DESCRIPTOR_LIST: protocol_list,
            AttributeId.SERVICE_NAME: text(self.service.name),
        }

    def matches_uuid(self, uuid: int) -> bool:
        """True when *uuid* appears in this record's class or protocols."""
        if uuid in (self.service_class, ServiceClass.PUBLIC_BROWSE_ROOT):
            return True
        return uuid in (ProtocolUuid.L2CAP, self.service.psm)

    def attribute_list(self, attribute_ids: list[tuple[int, int]]) -> DataElement:
        """Build the (id, value) attribute list for the requested ranges."""
        children = []
        attributes = self.attributes()
        for low, high in attribute_ids:
            for attr_id in sorted(attributes):
                if low <= attr_id <= high:
                    children.append(uint(attr_id))
                    children.append(attributes[attr_id])
        return sequence(*children)


def build_records(directory: ServiceDirectory) -> tuple[SdpRecord, ...]:
    """Materialise SDP records for every advertised service."""
    records = []
    for index, service in enumerate(directory.all_records()):
        service_class = _SERVICE_CLASS_BY_PSM.get(
            service.psm, ServiceClass.SERIAL_PORT
        )
        records.append(
            SdpRecord(
                handle=FIRST_RECORD_HANDLE + index,
                service=service,
                service_class=service_class,
            )
        )
    return tuple(records)
