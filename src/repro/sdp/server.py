"""Device-side SDP server.

Answers the three SDP request PDUs over the device's SDP L2CAP channel.
Requests with broken syntax get an Error Response — which also makes the
SDP server itself a fuzzable attack surface (the paper's §V notes the
L2Fuzz methodology extends to SDP).
"""

from __future__ import annotations

from repro.errors import PacketDecodeError
from repro.sdp.constants import ErrorCode, PduId
from repro.sdp.data_elements import DataElement, ElementType, sequence
from repro.sdp.pdu import (
    ErrorResponse,
    SdpPdu,
    ServiceAttributeRequest,
    ServiceAttributeResponse,
    ServiceSearchAttributeRequest,
    ServiceSearchAttributeResponse,
    ServiceSearchRequest,
    ServiceSearchResponse,
)
from repro.sdp.records import SdpRecord, build_records
from repro.stack.services import ServiceDirectory


def _uuids_in(pattern: DataElement) -> list[int]:
    """Extract the UUID values from a search-pattern sequence."""
    if pattern.element_type is not ElementType.SEQUENCE:
        raise PacketDecodeError("search pattern is not a sequence")
    uuids = []
    for child in pattern.value:
        if child.element_type is ElementType.UUID:
            uuids.append(int(child.value))
    return uuids


def _attribute_ranges(id_list: DataElement) -> list[tuple[int, int]]:
    """Turn an attribute-ID list into inclusive (low, high) ranges."""
    if id_list.element_type is not ElementType.SEQUENCE:
        raise PacketDecodeError("attribute ID list is not a sequence")
    ranges = []
    for child in id_list.value:
        if child.element_type is not ElementType.UNSIGNED_INT:
            raise PacketDecodeError("attribute ID is not an unsigned int")
        if child.width == 4:
            value = int(child.value)
            ranges.append((value >> 16, value & 0xFFFF))
        else:
            ranges.append((int(child.value), int(child.value)))
    return ranges


class SdpServer:
    """Serves the SDP records of one device."""

    def __init__(self, directory: ServiceDirectory) -> None:
        self.records: tuple[SdpRecord, ...] = build_records(directory)
        self._by_handle = {record.handle: record for record in self.records}

    # -- dispatch ------------------------------------------------------------------

    def handle_request(self, raw: bytes) -> bytes:
        """Process one request PDU; always returns a response PDU."""
        try:
            pdu = SdpPdu.decode(raw)
        except PacketDecodeError:
            return self._error(0, ErrorCode.INVALID_PDU_SIZE)
        try:
            if pdu.pdu_id == PduId.SERVICE_SEARCH_REQUEST:
                return self._on_service_search(pdu)
            if pdu.pdu_id == PduId.SERVICE_ATTRIBUTE_REQUEST:
                return self._on_service_attribute(pdu)
            if pdu.pdu_id == PduId.SERVICE_SEARCH_ATTRIBUTE_REQUEST:
                return self._on_service_search_attribute(pdu)
        except PacketDecodeError:
            return self._error(pdu.transaction_id, ErrorCode.INVALID_REQUEST_SYNTAX)
        return self._error(pdu.transaction_id, ErrorCode.INVALID_REQUEST_SYNTAX)

    # -- handlers -------------------------------------------------------------------

    def _matching_records(self, pattern: DataElement) -> list[SdpRecord]:
        uuids = _uuids_in(pattern)
        if not uuids:
            return []
        return [
            record
            for record in self.records
            if all(record.matches_uuid(uuid) for uuid in uuids)
        ]

    def _on_service_search(self, pdu: SdpPdu) -> bytes:
        req = ServiceSearchRequest.decode(pdu.parameters)
        matches = self._matching_records(req.search_pattern)
        handles = tuple(record.handle for record in matches[: req.max_record_count])
        response = ServiceSearchResponse(handles)
        return SdpPdu(
            PduId.SERVICE_SEARCH_RESPONSE, pdu.transaction_id, response.encode()
        ).encode()

    def _on_service_attribute(self, pdu: SdpPdu) -> bytes:
        req = ServiceAttributeRequest.decode(pdu.parameters)
        record = self._by_handle.get(req.record_handle)
        if record is None:
            return self._error(
                pdu.transaction_id, ErrorCode.INVALID_SERVICE_RECORD_HANDLE
            )
        ranges = _attribute_ranges(req.attribute_id_list)
        response = ServiceAttributeResponse(record.attribute_list(ranges))
        return SdpPdu(
            PduId.SERVICE_ATTRIBUTE_RESPONSE, pdu.transaction_id, response.encode()
        ).encode()

    def _on_service_search_attribute(self, pdu: SdpPdu) -> bytes:
        req = ServiceSearchAttributeRequest.decode(pdu.parameters)
        matches = self._matching_records(req.search_pattern)
        ranges = _attribute_ranges(req.attribute_id_list)
        lists = sequence(*(record.attribute_list(ranges) for record in matches))
        response = ServiceSearchAttributeResponse(lists)
        return SdpPdu(
            PduId.SERVICE_SEARCH_ATTRIBUTE_RESPONSE,
            pdu.transaction_id,
            response.encode(),
        ).encode()

    def _error(self, transaction_id: int, code: ErrorCode) -> bytes:
        return SdpPdu(
            PduId.ERROR_RESPONSE, transaction_id, ErrorResponse(code).encode()
        ).encode()
