"""Service Discovery Protocol substrate.

Implements the SDP layer the paper's target-scanning phase depends on:
data elements, PDUs, an on-device server and a fuzzer-side client, so
service browsing happens over the air rather than through a testbed side
channel.
"""

from repro.sdp.client import BrowsedService, SdpClient
from repro.sdp.constants import AttributeId, ErrorCode, PduId, ProtocolUuid, ServiceClass
from repro.sdp.data_elements import DataElement, ElementType
from repro.sdp.pdu import SdpPdu
from repro.sdp.records import SdpRecord, build_records
from repro.sdp.server import SdpServer

__all__ = [
    "AttributeId",
    "BrowsedService",
    "DataElement",
    "ElementType",
    "ErrorCode",
    "PduId",
    "ProtocolUuid",
    "SdpClient",
    "SdpPdu",
    "SdpRecord",
    "SdpServer",
    "ServiceClass",
    "build_records",
]
