"""Testbed: the Table V device profiles and campaign sessions."""

from repro.testbed.profiles import (
    ALL_PROFILES,
    D1,
    D2,
    D3,
    D4,
    D5,
    D6,
    D7,
    D8,
    DeviceProfile,
    PROFILES_BY_ID,
    table5_rows,
)
from repro.testbed.session import FuzzSession, L2FUZZ_PPS, run_campaign

__all__ = [
    "ALL_PROFILES",
    "D1",
    "D2",
    "D3",
    "D4",
    "D5",
    "D6",
    "D7",
    "D8",
    "DeviceProfile",
    "FuzzSession",
    "L2FUZZ_PPS",
    "PROFILES_BY_ID",
    "run_campaign",
    "table5_rows",
]
