"""Fuzzing sessions: wire a fuzzer to a virtual device and run it.

A :class:`FuzzSession` is the reproduction's equivalent of plugging the
dongle in and launching the tool against one Table V device: it builds
the virtual device from its profile, strings a link between them with the
fuzzer's throughput model, and runs the campaign — for any registered
protocol target (L2CAP by default; RFCOMM, SDP and OBEX ride the same
machinery).
"""

from __future__ import annotations

import dataclasses

from repro.core.config import FuzzConfig
from repro.core.fuzzer import L2Fuzz
from repro.core.report import CampaignReport
from repro.core.strategies import ExplorationStrategy, make_strategy
from repro.hci.transport import SimClock, VirtualLink
from repro.testbed.profiles import DeviceProfile

#: Throughput the paper measured for L2Fuzz on D2 (§IV.C): 524.27 packets
#: per second, dominating the link's per-frame cost.
L2FUZZ_PPS = 524.27


@dataclasses.dataclass
class FuzzSession:
    """One fuzzer-vs-device campaign.

    :param profile: the target's Table V profile.
    :param config: fuzzer configuration.
    :param armed: False disables the injected bugs (ratio measurements).
    :param zero_latency: strip device response latency (throughput runs).
    :param pps: fuzzer throughput model (packets per simulated second).
    :param auto_reset: enable the long-term-fuzzing extension — crashed
        devices are reset and the campaign continues.
    :param strategy: exploration strategy (instance or registry name);
        None keeps the seed's sequential schedule.
    :param corpus_dir: shared corpus directory; when set, the campaign's
        coverage-unlock sequences and minimised findings are written
        back after the run (safe under parallel fleet workers).
    :param dictionary: corpus-harvested garbage tails spliced into the
        mutation stream; empty keeps the seed behaviour byte-identical.
    :param retain_trace: keep the full per-packet trace (default). False
        runs on streaming analysis in bounded memory; incompatible with
        :attr:`corpus_dir`, whose write-back replays the trace.
    :param sample_every: grain of the sniffer's streamed Fig. 8/9 series.
    :param target: protocol fuzz target (instance or registry name);
        None keeps the seed behaviour (L2CAP). The session prepares the
        device for the chosen protocol the way a paired dongle would —
        mounting the RFCOMM mux or OBEX server and lifting the pairing
        gate on the protocol's port.
    """

    profile: DeviceProfile
    config: FuzzConfig = dataclasses.field(default_factory=FuzzConfig)
    armed: bool = True
    zero_latency: bool = False
    pps: float = L2FUZZ_PPS
    auto_reset: bool = False
    strategy: ExplorationStrategy | str | None = None
    corpus_dir: str | None = None
    dictionary: tuple[bytes, ...] = ()
    retain_trace: bool = True
    sample_every: int = 1000
    target: object | str | None = None

    def __post_init__(self) -> None:
        from repro.targets import make_target

        if self.corpus_dir is not None and not self.retain_trace:
            raise ValueError(
                "corpus write-back replays the campaign trace; use "
                "retain_trace=True (or drop corpus_dir)"
            )
        target = self.target
        if target is None:
            target = make_target("l2cap")
        elif isinstance(target, str):
            target = make_target(target)
        self.target = target
        self.clock = SimClock()
        self.device = self.profile.build(
            clock=self.clock, armed=self.armed, zero_latency=self.zero_latency
        )
        self.target.prepare_device(self.device, armed=self.armed)
        self.link = VirtualLink(clock=self.clock, tx_cost=1.0 / self.pps)
        self.device.attach_to(self.link)
        config = self.config
        if self.auto_reset and config.stop_on_first_finding:
            config = dataclasses.replace(config, stop_on_first_finding=False)
        strategy = self.strategy
        if isinstance(strategy, str):
            strategy = make_strategy(strategy)
        self.fuzzer = L2Fuzz(
            link=self.link,
            inquiry=self.device.inquiry,
            browse=None,  # browse over the air via the real SDP exchange
            config=config,
            dump_probe=lambda: self.device.crash_dumps,
            reset_hook=self._reset_target,
            target_name=f"{self.profile.device_id} ({self.profile.name})",
            strategy=strategy,
            dictionary=self.dictionary,
            retain_trace=self.retain_trace,
            sample_every=self.sample_every,
            target=self.target,
        )

    def _reset_target(self) -> None:
        self.device.reset(self.link)

    def run(self) -> CampaignReport:
        """Run the campaign to completion and return the report.

        With :attr:`corpus_dir` set, the finished campaign is written
        back into the shared corpus before the report is returned.
        """
        report = self.fuzzer.run()
        if self.corpus_dir is not None:
            from repro.corpus.store import record_campaign

            record_campaign(
                self.corpus_dir,
                self.profile,
                self.fuzzer,
                report,
                armed=self.armed,
            )
        return report


def run_campaign(
    profile: DeviceProfile,
    config: FuzzConfig | None = None,
    armed: bool = True,
    zero_latency: bool = False,
    pps: float = L2FUZZ_PPS,
    auto_reset: bool = False,
    strategy: ExplorationStrategy | str | None = None,
    corpus_dir: str | None = None,
    dictionary: tuple[bytes, ...] = (),
    retain_trace: bool = True,
    sample_every: int = 1000,
    target: object | str | None = None,
) -> CampaignReport:
    """Convenience one-shot: build a session and run it."""
    session = FuzzSession(
        profile=profile,
        config=config if config is not None else FuzzConfig(),
        armed=armed,
        zero_latency=zero_latency,
        pps=pps,
        auto_reset=auto_reset,
        strategy=strategy,
        corpus_dir=corpus_dir,
        dictionary=dictionary,
        retain_trace=retain_trace,
        sample_every=sample_every,
        target=target,
    )
    return session.run()
