"""The eight test devices of paper Table V, as virtual-device profiles.

Each profile carries the Table V metadata verbatim plus the simulation
parameters that stand in for the physical device: vendor personality,
service catalogue, injected vulnerability models, and a per-exchange
response latency calibrated so the simulated time-to-vulnerability lands
in the paper's reported band (§IV.B attributes elapsed time to "the
number of service ports provided and the logic complexity of Bluetooth
applications" — latency is our stand-in for that logic complexity).

Port openness: devices under test are in discoverable/pairing mode, where
SDP is always connectable unpaired (paper §III.B) and AV distribution
ports commonly accept unpaired L2CAP connections; everything else is
gated behind pairing.
"""

from __future__ import annotations

import dataclasses

from repro.l2cap.constants import Psm
from repro.stack.device import DeviceMeta, VirtualDevice
from repro.stack.services import ServiceDirectory, ServiceRecord
from repro.stack.vendors import (
    BLUEDROID,
    BLUEZ,
    BTW,
    IOS_STACK,
    RTKIT,
    WINDOWS_STACK,
    VendorPersonality,
)
from repro.stack.vulnerabilities import (
    BLUEDROID_CIDP_NULL_DEREF,
    BLUEDROID_CREATE_CHANNEL_DOS,
    BLUEZ_GPF,
    RTKIT_PSM_SHUTDOWN,
    VulnerabilityModel,
)


@dataclasses.dataclass(frozen=True)
class DeviceProfile:
    """One row of Table V plus its simulation parameters."""

    device_id: str
    device_type: str
    vendor: str
    name: str
    year: int
    model: str
    chip: str
    os_or_fw: str
    bt_stack: str
    bt_version: str
    personality: VendorPersonality
    services: tuple[ServiceRecord, ...]
    vulnerabilities: tuple[VulnerabilityModel, ...]
    mac_address: str
    build_fingerprint: str

    def build(self, clock=None, armed: bool = True, zero_latency: bool = False) -> VirtualDevice:
        """Instantiate the virtual device for this profile.

        :param armed: False disables bug triggering (ratio measurements).
        :param zero_latency: strip the response latency so throughput is
            governed purely by the fuzzer's pps model (the §IV.C setup).
        """
        personality = self.personality
        if zero_latency:
            personality = dataclasses.replace(personality, response_latency=0.0)
        directory = ServiceDirectory(list(self.services))
        meta = DeviceMeta(
            mac_address=self.mac_address,
            name=self.name,
            device_class=self.device_type,
        )
        return VirtualDevice(
            meta=meta,
            personality=personality,
            services=directory,
            vulnerabilities=self.vulnerabilities,
            clock=clock,
            armed=armed,
            build_fingerprint=self.build_fingerprint,
        )


def _sdp() -> ServiceRecord:
    return ServiceRecord(Psm.SDP, "Service Discovery Protocol")


def _avdtp_open() -> ServiceRecord:
    return ServiceRecord(
        Psm.AVDTP, "Audio/Video Distribution", initiates_config=True
    )


def _paired(psm: int, name: str, initiates_config: bool = False) -> ServiceRecord:
    return ServiceRecord(psm, name, requires_pairing=True, initiates_config=initiates_config)


_PHONE_SERVICES = (
    _sdp(),
    _avdtp_open(),
    _paired(Psm.RFCOMM, "RFCOMM"),
    _paired(Psm.HID_CONTROL, "HID Control"),
    _paired(Psm.AVCTP, "Audio/Video Control"),
)


D1 = DeviceProfile(
    device_id="D1",
    device_type="Tablet PC",
    vendor="Google",
    name="Nexus 7",
    year=2013,
    model="ASUS-1A005A",
    chip="Snapdragon 600",
    os_or_fw="Android 6.0.1",
    bt_stack="BlueDroid",
    bt_version="4.0 + LE",
    personality=dataclasses.replace(BLUEDROID, response_latency=0.55),
    services=_PHONE_SERVICES,
    vulnerabilities=(BLUEDROID_CIDP_NULL_DEREF,),
    mac_address="AC:37:43:A1:00:01",
    build_fingerprint="google/razor/flo:6.0.1/MOB30X/3036618:user/release-keys",
)

D2 = DeviceProfile(
    device_id="D2",
    device_type="Smartphone",
    vendor="Google",
    name="Pixel 3",
    year=2018,
    model="GA00464",
    chip="Snapdragon 845",
    os_or_fw="Android 11.0.1",
    bt_stack="BlueDroid",
    bt_version="5.0 + LE",
    personality=dataclasses.replace(BLUEDROID, response_latency=0.50),
    services=_PHONE_SERVICES + (_paired(Psm.BNEP, "BNEP"),),
    vulnerabilities=(BLUEDROID_CIDP_NULL_DEREF,),
    mac_address="F8:0F:F9:00:00:02",
    build_fingerprint="google/blueline/blueline:11/RQ1D.210105.003/7005430:user/release-keys",
)

D3 = DeviceProfile(
    device_id="D3",
    device_type="Smartphone",
    vendor="Samsung",
    name="Galaxy 7",
    year=2016,
    model="SM-G930L",
    chip="Exynos 8890",
    os_or_fw="Android 8.0.0",
    bt_stack="BlueDroid",
    bt_version="4.2",
    # Samsung's fork is spec-strict on config-state CIDs (so the D1/D2
    # bug path is closed) but its AMP channel creation is broken.
    personality=dataclasses.replace(
        BLUEDROID, accepts_unallocated_cidp=False, response_latency=0.50
    ),
    services=_PHONE_SERVICES + (_paired(Psm.BNEP, "BNEP"),),
    vulnerabilities=(BLUEDROID_CREATE_CHANNEL_DOS,),
    mac_address="C0:BD:D1:00:00:03",
    build_fingerprint="samsung/heroltexx/herolte:8.0.0/R16NW/G930LKLU1DQL1:user/release-keys",
)

D4 = DeviceProfile(
    device_id="D4",
    device_type="Smartphone",
    vendor="Apple",
    name="iPhone 6S",
    year=2015,
    model="A1688",
    chip="A9",
    os_or_fw="iOS 15.0.2",
    bt_stack="iOS stack",
    bt_version="4.2",
    personality=dataclasses.replace(IOS_STACK, response_latency=0.30),
    services=(
        _sdp(),
        _paired(Psm.AVDTP, "Audio/Video Distribution", initiates_config=True),
        _paired(Psm.RFCOMM, "RFCOMM"),
        _paired(Psm.HID_CONTROL, "HID Control"),
        _paired(Psm.AVCTP, "Audio/Video Control"),
    ),
    vulnerabilities=(),
    mac_address="DC:2B:2A:00:00:04",
    build_fingerprint="apple/iphone8,1/19A404",
)

D5 = DeviceProfile(
    device_id="D5",
    device_type="Earphone",
    vendor="Apple",
    name="Airpods 1 gen",
    year=2016,
    model="A1523",
    chip="W1",
    os_or_fw="6.8.8",
    bt_stack="RTKit stack",
    bt_version="4.2",
    personality=dataclasses.replace(RTKIT, response_latency=1.70),
    # Six service ports (paper §IV.B); earbuds in pairing mode accept AV
    # connections unpaired.
    services=(
        _sdp(),
        _avdtp_open(),
        ServiceRecord(Psm.AVCTP, "Audio/Video Control"),
        _paired(Psm.RFCOMM, "RFCOMM"),
        _paired(Psm.AVCTP_BROWSING, "AVCTP Browsing"),
        _paired(Psm.HID_CONTROL, "HID Control"),
    ),
    vulnerabilities=(RTKIT_PSM_SHUTDOWN,),
    mac_address="9C:64:8B:00:00:05",
    build_fingerprint="apple/rtkit/a1523:6.8.8",
)

D6 = DeviceProfile(
    device_id="D6",
    device_type="Earphone",
    vendor="Samsung",
    name="Galaxy Buds+",
    year=2020,
    model="SM-R175NZKATUR",
    chip="BCM43015",
    os_or_fw="R175XXU0AUG1",
    bt_stack="BTW",
    bt_version="5.0 + LE",
    personality=dataclasses.replace(BTW, response_latency=0.30),
    services=(
        _sdp(),
        _avdtp_open(),
        ServiceRecord(Psm.AVCTP, "Audio/Video Control"),
        _paired(Psm.RFCOMM, "RFCOMM"),
        _paired(Psm.AVCTP_BROWSING, "AVCTP Browsing"),
        _paired(Psm.HID_CONTROL, "HID Control"),
    ),
    vulnerabilities=(),
    mac_address="D0:7F:A0:00:00:06",
    build_fingerprint="samsung/buds+/r175:R175XXU0AUG1",
)

D7 = DeviceProfile(
    device_id="D7",
    device_type="Laptop",
    vendor="LG",
    name="Gram 2019",
    year=2019,
    model="15ZD990-VX50K",
    chip="Intel wireless BT",
    os_or_fw="Windows 10",
    bt_stack="Windows stack",
    bt_version="5.0",
    personality=dataclasses.replace(WINDOWS_STACK, response_latency=0.30),
    services=(
        _sdp(),
        _paired(Psm.RFCOMM, "RFCOMM"),
        _paired(Psm.HID_CONTROL, "HID Control"),
        _paired(Psm.HID_INTERRUPT, "HID Interrupt"),
        _paired(Psm.AVDTP, "Audio/Video Distribution", initiates_config=True),
        _paired(Psm.AVCTP, "Audio/Video Control"),
        _paired(Psm.BNEP, "BNEP"),
        _paired(Psm.UPNP, "UPnP"),
    ),
    vulnerabilities=(),
    mac_address="34:02:86:00:00:07",
    build_fingerprint="lg/gram2019/win10:19041",
)

#: D8's thirteen service ports (paper §IV.B).
_D8_SERVICES = (
    _sdp(),
    _avdtp_open(),
    ServiceRecord(Psm.AVCTP, "Audio/Video Control"),
    _paired(Psm.RFCOMM, "RFCOMM"),
    _paired(Psm.TCS_BIN, "TCS-BIN"),
    _paired(Psm.TCS_BIN_CORDLESS, "TCS-BIN Cordless"),
    _paired(Psm.BNEP, "BNEP"),
    _paired(Psm.HID_CONTROL, "HID Control"),
    _paired(Psm.HID_INTERRUPT, "HID Interrupt"),
    _paired(Psm.UPNP, "UPnP"),
    _paired(Psm.AVCTP_BROWSING, "AVCTP Browsing"),
    _paired(Psm.UDI_C_PLANE, "UDI C-Plane"),
    _paired(Psm.THREED_SP, "3D Synchronization"),
)

D8 = DeviceProfile(
    device_id="D8",
    device_type="Laptop",
    vendor="LG",
    name="Gram 2017",
    year=2017,
    model="15ZD970-GX55K",
    chip="Intel wireless BT",
    os_or_fw="Ubuntu 18.04.4",
    bt_stack="BlueZ",
    bt_version="5.0",
    personality=dataclasses.replace(BLUEZ, response_latency=0.08),
    services=_D8_SERVICES,
    vulnerabilities=(BLUEZ_GPF,),
    mac_address="A0:51:0B:00:00:08",
    build_fingerprint="lg/gram2017/ubuntu:18.04.4",
)


#: All Table V profiles in order.
ALL_PROFILES: tuple[DeviceProfile, ...] = (D1, D2, D3, D4, D5, D6, D7, D8)

#: Profiles by device id.
PROFILES_BY_ID: dict[str, DeviceProfile] = {
    profile.device_id: profile for profile in ALL_PROFILES
}


def table5_rows() -> list[dict]:
    """Render Table V as dictionaries (one per device)."""
    return [
        {
            "no": profile.device_id,
            "type": profile.device_type,
            "vendor": profile.vendor,
            "name": profile.name,
            "year": profile.year,
            "model": profile.model,
            "chip": profile.chip,
            "os_or_fw": profile.os_or_fw,
            "bt_stack": profile.bt_stack,
            "bt_version": profile.bt_version,
        }
        for profile in ALL_PROFILES
    ]
