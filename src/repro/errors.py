"""Exception hierarchy for the L2Fuzz reproduction.

The fuzzer's vulnerability-detection phase (paper §III.E) keys on
connection-level error messages: ``Connection Failed`` means the target's
Bluetooth service shut down (denial of service), while ``Connection
Aborted``, ``Connection Reset``, ``Connection Refused`` and ``Timeout``
indicate a crash on the target. We model those observable outcomes as an
exception family so both the virtual transport and the detection logic
speak the same vocabulary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PacketError(ReproError):
    """Malformed or undecodable packet bytes."""


class PacketDecodeError(PacketError):
    """Raised when bytes cannot be parsed into an L2CAP/HCI packet."""


class PacketEncodeError(PacketError):
    """Raised when a packet object cannot be serialised."""


class StateMachineError(ReproError):
    """Invalid state or transition in the L2CAP channel state machine."""


class ChannelError(ReproError):
    """Channel allocation or lookup failure inside a host stack."""


class ServiceError(ReproError):
    """Service (PSM) lookup or registration failure."""


class JournalWriteError(ReproError):
    """A durability write (telemetry journal append, registry manifest
    or write-ahead intent) failed at the OS level — ENOSPC, EIO, a
    read-only filesystem.

    Carries the path and errno so the service layer can mark the
    affected job ``aborted`` with a typed ``failure_reason`` instead of
    surfacing a raw traceback; the run's checkpoints stay on disk, so
    the job remains resumable once the disk recovers.
    """

    def __init__(self, path, error: OSError) -> None:
        self.path = str(path)
        self.errno = error.errno
        super().__init__(
            f"journal write failed for {self.path}: "
            f"{error.strerror or error} (errno {error.errno})"
        )


class TransportError(ReproError):
    """Base class for link-level failures observed by the fuzzer.

    Subclasses mirror the error messages listed in paper §III.E. The
    :attr:`message` class attribute carries the canonical error string the
    detection phase logs.
    """

    message = "Transport Error"


class ConnectionFailedError(TransportError):
    """The target Bluetooth service has been shut down (DoS indicator)."""

    message = "Connection Failed"


class ConnectionAbortedTargetError(TransportError):
    """The target aborted the connection (crash indicator)."""

    message = "Connection Aborted"


class ConnectionResetTargetError(TransportError):
    """The target reset the connection (crash indicator)."""

    message = "Connection Reset"


class ConnectionRefusedTargetError(TransportError):
    """The target refused the connection (crash indicator)."""

    message = "Connection Refused"


class TargetTimeoutError(TransportError):
    """The target stopped responding (crash indicator)."""

    message = "Timeout"


class PairingRequiredError(ReproError):
    """Raised when connecting to a service port that requires pairing."""


class TargetCrashedError(ReproError):
    """Raised internally by a virtual stack when an injected bug triggers.

    Carries the crash artefact so the testbed can surface a crash dump,
    mirroring the tombstone files of paper Fig. 12.
    """

    def __init__(self, crash):
        super().__init__(f"target crashed: {crash.summary}")
        self.crash = crash


class FuzzingError(ReproError):
    """Campaign-level failure in the fuzzing orchestrator."""


class ScanError(ReproError):
    """Target-scanning phase failure (no reachable device or port)."""
