"""Phase 4 — vulnerability detecting (paper §III.E).

After malformed packets go out, L2Fuzz checks three signals:

1. **error messages** — a transport-level error on the socket. The paper
   maps ``Connection Failed`` to a denial of service (the Bluetooth
   service shut down) and ``Connection Aborted`` / ``Connection Reset`` /
   ``Connection Refused`` / ``Timeout`` to a target crash;
2. **ping test** — an L2CAP Echo Request; no answer means the target's
   L2CAP layer is gone;
3. **crash dumps** — any dump artefact the target left (tombstones on
   Android, kernel oopses on Linux), fetched through a side channel.
"""

from __future__ import annotations

import dataclasses
import enum
import typing
from collections.abc import Callable

from repro.core.packet_queue import PacketQueue
from repro.errors import ConnectionFailedError, TransportError
from repro.l2cap.packets import (
    CommandCode,
    L2capPacket,
    echo_request,
    information_request,
)


class VulnerabilityClass(enum.Enum):
    """How the paper's Table VI labels a finding."""

    DOS = "DoS"
    CRASH = "Crash"


#: Paper §III.E: Connection Failed ⇒ service shut down ⇒ DoS; every other
#: connection error indicates a crash.
def classify_error(error: TransportError) -> VulnerabilityClass:
    """Map a transport error to the paper's vulnerability class."""
    if isinstance(error, ConnectionFailedError):
        return VulnerabilityClass.DOS
    return VulnerabilityClass.CRASH


def finding_key(
    vendor: str,
    vulnerability_class: VulnerabilityClass | str,
    trigger: str,
    target: str = "l2cap",
) -> tuple[str, str, str, str]:
    """Canonical deduplication key of a finding.

    Two findings are the same vulnerability when they share ``(fuzz
    target, vendor, vulnerability class, trigger)`` — the same malformed
    packet knocking over the same protocol layer of the same vendor
    stack the same way, regardless of which device, strategy or campaign
    hit it first. This is the single key used by the fleet merge, the
    persistent finding database, and any other cross-campaign
    deduplication; *trigger* may be a human-readable packet rendering or
    a content hash of a minimised reproducer, as long as callers are
    consistent about which they bucket by. *target* is the registry name
    of the protocol under test, so an RFCOMM crash and an L2CAP crash
    with a coincidentally identical trigger rendering never collapse
    into one bucket.
    """
    if isinstance(vulnerability_class, VulnerabilityClass):
        vulnerability_class = vulnerability_class.value
    return (target, vendor, vulnerability_class, trigger)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One detected vulnerability.

    :param vulnerability_class: DoS or crash.
    :param error_message: the canonical socket error string observed.
    :param state: name of the state plan entry under test.
    :param trigger: human-readable rendering of the suspected trigger
        packet (the last malformed packet before the error).
    :param sim_time: simulated campaign time at detection.
    :param ping_failed: whether the confirming ping test failed.
    :param crash_dump: crash-dump text recovered from the target, if any.
    :param target: registry name of the fuzz target (protocol) under
        test when the finding was made.
    :param sent_index: number of fuzzer→target packets on the wire at
        detection — the exact reproducer-prefix length, trigger
        included. Corpus write-back cuts the stored reproducer here, so
        packets transmitted after the detection but at the same
        simulated tick (liveness probes, auto-reset traffic) never leak
        in. ``None`` on findings recorded before this field existed.
    """

    vulnerability_class: VulnerabilityClass
    error_message: str
    state: str
    trigger: str
    sim_time: float
    ping_failed: bool
    crash_dump: str | None = None
    target: str = "l2cap"
    sent_index: int | None = None

    def key(self, vendor: str) -> tuple[str, str, str, str]:
        """This finding's :func:`finding_key` under *vendor*'s stack."""
        return finding_key(
            vendor, self.vulnerability_class, self.trigger, self.target
        )


class _PingTemplates(typing.NamedTuple):
    """Pre-encoded liveness probes for one echo payload (identifier 0)."""

    payload: bytes
    echo_wire: bytes
    echo_spec: object
    info_wire: bytes
    info_spec: object
    info_fields: dict


class VulnerabilityDetector:
    """Phase 4 runner.

    :param queue: packet queue to the target.
    :param dump_probe: optional side channel returning the target's crash
        dumps (adb pull of tombstones in the paper's setup); None means
        dumps cannot be inspected.
    """

    def __init__(
        self,
        queue: PacketQueue,
        dump_probe: Callable[[], list[str]] | None = None,
    ) -> None:
        self.queue = queue
        self.dump_probe = dump_probe
        self._ping_templates: _PingTemplates | None = None

    def _ping_templates_for(self, payload: bytes) -> "_PingTemplates":
        """Encoded probe templates (identifier 0), rebuilt on payload change.

        A campaign pings thousands of times with the same payload; the
        two probe frames differ only in their identifier byte, so the
        wire images are encoded once here and patched per ping —
        byte- and object-identical to building them fresh.
        """
        from repro.l2cap.packets import SPEC_BY_CODE

        templates = self._ping_templates
        if templates is None or templates.payload != payload:
            info_spec = SPEC_BY_CODE[int(CommandCode.INFORMATION_REQ)]
            templates = _PingTemplates(
                payload=payload,
                echo_wire=echo_request(payload, identifier=0).encode(),
                echo_spec=SPEC_BY_CODE[int(CommandCode.ECHO_REQ)],
                info_wire=information_request(identifier=0).encode(),
                info_spec=info_spec,
                info_fields=dict(info_spec.defaults),
            )
            self._ping_templates = templates
        return templates

    @staticmethod
    def _probe_from_template(
        base: bytes, code, identifier: int, field_values: dict, tail: bytes, spec
    ) -> L2capPacket:
        wire = bytearray(base)
        wire[5] = identifier
        return L2capPacket.from_wire_parts(
            code=code,
            identifier=identifier,
            field_values=field_values,
            tail=tail,
            garbage=b"",
            wire=bytes(wire),
            spec=spec,
        )

    def ping_test(self, payload: bytes = b"l2fuzz-ping") -> bool:
        """Probe target liveness with an Echo plus an Information Request.

        Both are valid connection-scoped commands every state accepts;
        the pair distinguishes "L2CAP still alive" from "echo handler
        alone still alive". True when the target answered either probe.
        """
        templates = self._ping_templates_for(payload)
        # Identifier draw order matches the historical inline builds: the
        # second probe's identifier is only taken once the first exchange
        # survived (auto-reset campaigns see the same ID stream).
        try:
            responses = self.queue.exchange(
                self._probe_from_template(
                    templates.echo_wire,
                    CommandCode.ECHO_REQ,
                    self.queue.take_identifier(),
                    {},
                    payload,
                    templates.echo_spec,
                )
            )
            responses += self.queue.exchange(
                self._probe_from_template(
                    templates.info_wire,
                    CommandCode.INFORMATION_REQ,
                    self.queue.take_identifier(),
                    dict(templates.info_fields),
                    b"",
                    templates.info_spec,
                )
            )
        except TransportError:
            return False
        return any(
            response.code in (CommandCode.ECHO_RSP, CommandCode.INFORMATION_RSP)
            for response in responses
        )

    def fetch_crash_dump(self) -> str | None:
        """Pull the most recent crash dump, when a side channel exists."""
        if self.dump_probe is None:
            return None
        dumps = self.dump_probe()
        if not dumps:
            return None
        return dumps[-1]

    def diagnose(
        self,
        error: TransportError,
        state_name: str,
        trigger_description: str,
        target: str = "l2cap",
        sent_index: int | None = None,
    ) -> Finding:
        """Build a finding for a transport error seen while fuzzing.

        Runs the confirming ping test and the crash-dump check before
        classifying, mirroring the §III.E sequence. *target* stamps the
        protocol under test into the finding's dedup key; *sent_index*
        must be captured **before** this call (the confirming ping puts
        more packets on the wire) and pins the reproducer-prefix cut.
        """
        ping_ok = self.ping_test()
        return Finding(
            vulnerability_class=classify_error(error),
            error_message=error.message,
            state=state_name,
            trigger=trigger_description,
            sim_time=self.queue.clock.now,
            ping_failed=not ping_ok,
            crash_dump=self.fetch_crash_dump(),
            target=target,
            sent_index=sent_index,
        )
