"""The campaign orchestrator (paper Fig. 5), protocol-agnostic.

Wires the four phases together for any registered
:class:`~repro.targets.base.FuzzTarget`:

1. :class:`~repro.core.target_scanning.TargetScanner` finds the device
   and a pairing-free port;
2. the target's **guide** walks its protocol's state plan with valid
   frames, in the order an
   :class:`~repro.core.strategies.ExplorationStrategy` schedules them;
3. the target's **mutator** generates *n* valid malformed packets per
   valid command of the state's job;
4. :class:`~repro.core.detection.VulnerabilityDetector` watches for
   socket errors, runs ping tests and pulls crash dumps.

The engine itself never mentions a protocol: states, commands, routing
and mutation all come from the target. :class:`L2Fuzz` defaults to the
L2CAP reference target and reproduces the seed campaign byte-for-byte;
``target=make_target("rfcomm")`` (or ``"sdp"``, ``"obex"``) fuzzes the
same virtual device's other layers with the same machinery.

The campaign is fully deterministic given the config seed, and every
packet in both directions lands in the sniffer trace, from which the
report derives the paper's metrics.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence

from repro.analysis.metrics import measure
from repro.analysis.sniffer import PacketSniffer
from repro.core.config import FuzzConfig
from repro.core.detection import Finding, VulnerabilityDetector
from repro.core.fuzz_log import FuzzLog, LogLevel
from repro.core.packet_queue import PacketQueue
from repro.core.report import CampaignReport
from repro.core.strategies import ExplorationStrategy, SequentialStrategy
from repro.core.target_scanning import ScanResult, TargetScanner
from repro.errors import TargetTimeoutError, TransportError
from repro.hci.transport import VirtualLink


class L2Fuzz:
    """A stateful fuzzer for one protocol layer of a Bluetooth target.

    The class keeps its historical name: with the default target it *is*
    the paper's L2Fuzz, and the name is how the tool is known. Every
    protocol-specific decision is delegated to :attr:`target`.

    :param link: virtual link to the target.
    :param inquiry: discovery callable returning the device meta.
    :param browse: SDP-browse callable returning service records; None
        performs the real over-the-air SDP exchange.
    :param config: campaign knobs.
    :param dump_probe: optional crash-dump side channel (phase 4).
    :param reset_hook: optional callable that power-cycles a crashed
        target and restores the link — enables long-term fuzzing (the
        paper's §V future-work extension). Only used when
        ``config.stop_on_first_finding`` is False.
    :param target_name: label used in reports.
    :param strategy: exploration strategy scheduling the state plan;
        None keeps the seed behaviour (sequential).
    :param dictionary: corpus-harvested garbage tails handed to the
        mutator for cross-campaign splicing; empty keeps the seed
        mutation stream byte-identical.
    :param retain_trace: keep the full per-packet trace on the sniffer.
        True preserves the capture for trace export, triage and corpus
        write-back; False runs the campaign on streaming analysis alone,
        in memory bounded by the number of plan states instead of the
        packet budget (the fleet-worker default).
    :param sample_every: granularity of the sniffer's streamed Fig. 8/9
        series (must match the grain later asked of ``mp_curve`` /
        ``pr_curve`` when the trace is not retained).
    :param target: the protocol under test — a
        :class:`~repro.targets.base.FuzzTarget` instance or registry
        name; None selects the L2CAP reference target.
    """

    def __init__(
        self,
        link: VirtualLink,
        inquiry: Callable[[], object],
        browse: Callable[[], Sequence] | None = None,
        config: FuzzConfig | None = None,
        dump_probe: Callable[[], list[str]] | None = None,
        reset_hook: Callable[[], None] | None = None,
        target_name: str = "target",
        strategy: ExplorationStrategy | None = None,
        dictionary: Sequence[bytes] = (),
        retain_trace: bool = True,
        sample_every: int = 1000,
        target=None,
    ) -> None:
        from repro.targets import make_target

        if target is None:
            target = make_target("l2cap")
        elif isinstance(target, str):
            target = make_target(target)
        self.target = target
        self.config = config if config is not None else FuzzConfig()
        self.link = link
        self.sniffer = PacketSniffer(
            retain_trace=retain_trace, sample_every=sample_every
        )
        self.queue = PacketQueue(link, self.sniffer)
        self.scanner = TargetScanner(self.queue, inquiry, browse)
        self.detector = VulnerabilityDetector(self.queue, dump_probe)
        self.mutator = self.target.build_mutator(
            self.config, random.Random(self.config.seed), dictionary=dictionary
        )
        self.log = FuzzLog()
        self.reset_hook = reset_hook
        self.target_name = target_name
        self.strategy = strategy if strategy is not None else SequentialStrategy()
        self.findings: list[Finding] = []
        self.state_visits: dict[object, int] = {}
        self.transition_visits: dict[tuple[object, object], int] = {}
        #: Coverage-unlock log for the corpus subsystem: each time a
        #: state or plan transition is seen for the first time, the new
        #: tokens plus the sent-packet prefix length that got there.
        self.coverage_log: list[tuple[tuple[str, ...], int]] = []
        #: The campaign's live guide (set by :meth:`run`); targets read
        #: its confirmed-coverage set when building the report.
        self.guide = None
        self._previous_state = None
        self._last_packet = None
        self._sweeps = 0

    # -- public -------------------------------------------------------------------

    def run(self) -> CampaignReport:
        """Execute the campaign and return the report."""
        self.log.info(self._now, "scan", "target scanning started")
        scan = self.scanner.scan()
        self.log.info(
            self._now,
            "scan",
            "target scanned",
            open_psms=[hex(psm) for psm in scan.open_psms],
            probed=len(scan.probes),
        )
        guide = self.target.build_guide(self.queue, scan)
        self.guide = guide

        while not self._budget_exhausted():
            stop = self._run_sweep(guide)
            if stop:
                break
            self._sweeps += 1
            if self.config.max_sweeps and self._sweeps >= self.config.max_sweeps:
                break
        return self._build_report()

    # -- internals ------------------------------------------------------------------

    @property
    def _now(self) -> float:
        return self.queue.clock.now

    def _budget_exhausted(self) -> bool:
        return self.sniffer.transmitted_count() >= self.config.max_packets

    def _run_sweep(self, guide) -> bool:
        """One strategy-scheduled pass over the plan. Returns True to stop."""
        base_plan = guide.plan()
        if self.config.state_guiding:
            plan = self.strategy.plan(base_plan, self.state_visits)
            if not plan:
                # A strategy with nothing to say about this target's
                # states (e.g. targeted on a foreign state space) falls
                # back to the guide's canonical plan.
                plan = base_plan
        else:
            # Ablation: stateless fuzzing from the shallowest posture.
            plan = (self.target.fallback_state(),)
        for state in plan:
            if self._budget_exhausted():
                return True
            stop = self._fuzz_state(guide, state)
            if stop:
                return True
        return False

    def _fuzz_state(self, guide, state) -> bool:
        """Route to *state*, fuzz its job's commands. True = stop campaign."""
        state_name = state.value
        try:
            position = guide.enter(state)
        except TransportError as error:
            return self._on_transport_error(error, state_name)
        self._record_visit(state)
        self.log.info(
            self._now,
            "state-guiding",
            f"entered {state_name}",
            job=position.label,
        )

        commands = self.target.commands_for(position)
        packets_per_command = self.strategy.packets_per_command(
            state, self.config.packets_per_command
        )
        # Hot-loop locals: one attribute walk per state visit instead of
        # four per packet. mutate_wire is the optional bytes-level fast
        # path (None falls back to the field-object reference path).
        queue = self.queue
        take_identifier = queue.take_identifier
        send = queue.send
        drain = queue.drain
        mutate = self.mutator.mutate
        mutate_wire = (
            getattr(self.mutator, "mutate_wire", None)
            if self.config.wire_fast_path
            else None
        )
        batches_since_ping = 0
        for code in commands:
            if self._budget_exhausted():
                break
            for _ in range(packets_per_command):
                identifier = take_identifier()
                packet = None
                if mutate_wire is not None:
                    packet = mutate_wire(position, code, identifier)
                if packet is None:
                    packet = mutate(position, code, identifier)
                # Remember the packet itself; its one-line description is
                # rendered lazily when (and only when) a finding needs it.
                self._last_packet = packet
                try:
                    send(packet)
                    drain()
                except TransportError as error:
                    return self._on_transport_error(error, state_name)
                if self._budget_exhausted():
                    break
            batches_since_ping += 1
            if batches_since_ping >= self.config.ping_every_commands:
                batches_since_ping = 0
                stop = self._ping_checkpoint(state_name)
                if stop:
                    return True

        try:
            guide.leave(position)
        except TransportError as error:
            return self._on_transport_error(error, state_name)
        return False

    def _record_visit(self, state) -> None:
        """Count one successful entry (and its plan-order transition)."""
        unlocked: list[str] = []
        self.state_visits[state] = self.state_visits.get(state, 0) + 1
        if self.state_visits[state] == 1:
            unlocked.append(state.value)
        if self._previous_state is not None:
            edge = (self._previous_state, state)
            self.transition_visits[edge] = self.transition_visits.get(edge, 0) + 1
            if self.transition_visits[edge] == 1:
                unlocked.append(f"{edge[0].value}>{edge[1].value}")
        self._previous_state = state
        if unlocked:
            # The routing packets that reached *state* are already on the
            # wire, so this prefix is a replayable witness of the unlock.
            self.coverage_log.append(
                (tuple(unlocked), self.sniffer.transmitted_count())
            )

    def _ping_checkpoint(self, state_name: str) -> bool:
        """Detection-phase ping test. True = stop campaign."""
        if self.detector.ping_test(self.config.echo_payload):
            return False
        error_cls = self.link.down_error or TargetTimeoutError
        return self._on_transport_error(error_cls(), state_name)

    @property
    def _last_trigger(self) -> str:
        """Description of the most recent fuzz packet (lazy)."""
        if self._last_packet is None:
            return "(none)"
        return self._last_packet.describe()

    def _on_transport_error(self, error: TransportError, state_name: str) -> bool:
        """Record a finding; decide whether the campaign stops."""
        # The prefix cut must be read before diagnose(): its confirming
        # ping test transmits more packets at the same simulated tick.
        finding = self.detector.diagnose(
            error,
            state_name,
            self._last_trigger,
            target=self.target.name,
            sent_index=self.sniffer.transmitted_count(),
        )
        self.findings.append(finding)
        self.log.vulnerability(
            self._now,
            "detection",
            f"{finding.vulnerability_class.value}: {finding.error_message}",
            state=state_name,
            trigger=finding.trigger,
            dump=bool(finding.crash_dump),
        )
        if self.config.stop_on_first_finding or self.reset_hook is None:
            return True
        self.reset_hook()
        # Channels and sessions the guide cached died with the old stack
        # instance; let it drop them so the next route reconnects.
        on_reset = getattr(self.guide, "on_target_reset", None)
        if on_reset is not None:
            on_reset()
        self.log.info(self._now, "detection", "target reset, campaign continues")
        return False

    def _build_report(self) -> CampaignReport:
        return CampaignReport(
            target_name=self.target_name,
            findings=tuple(self.findings),
            elapsed_seconds=self._now,
            packets_sent=self.sniffer.transmitted_count(),
            sweeps_completed=self._sweeps,
            efficiency=measure(self.sniffer, self._now),
            covered_states=self.target.covered_states(self),
            strategy=self.strategy.name,
            state_visits=tuple(
                sorted(
                    (state.value, count)
                    for state, count in self.state_visits.items()
                )
            ),
            transition_visits=tuple(
                sorted(
                    (source.value, destination.value, count)
                    for (source, destination), count in self.transition_visits.items()
                )
            ),
            fuzz_target=self.target.name,
            state_space=len(self.target.state_universe()),
        )
