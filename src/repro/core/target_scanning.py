"""Phase 1 — target scanning (paper §III.B).

Collects the target's meta-information (MAC, name, class, OUI), browses
its advertised services, and probes every service port with a live
connection attempt to find **potentially exploitable ports**: ports that
accept an L2CAP connection without pairing. If every advertised port
demands pairing, the scanner falls back to the SDP port, "which does not
require pairing and is supported by every Bluetooth device".
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence

from repro.errors import ScanError, TransportError
from repro.l2cap.constants import ConnectionResult, Psm
from repro.l2cap.packets import (
    CommandCode,
    connection_request,
    disconnection_request,
)
from repro.core.packet_queue import PacketQueue


@dataclasses.dataclass(frozen=True)
class PortProbe:
    """Outcome of probing one service port."""

    psm: int
    name: str
    connectable: bool
    requires_pairing: bool


@dataclasses.dataclass(frozen=True)
class ScanResult:
    """Everything phase 1 learned about the target.

    :param meta: device identity (MAC, name, class, OUI).
    :param probes: per-port probe outcomes.
    :param open_psms: ports connectable without pairing, in probe order.
    """

    meta: object
    probes: tuple[PortProbe, ...]
    open_psms: tuple[int, ...]

    @property
    def primary_psm(self) -> int:
        """The port the fuzzer will use first."""
        if not self.open_psms:
            raise ScanError("no pairing-free port found, not even SDP")
        return self.open_psms[0]

    def open_psm_with(self, predicate: Callable[[PortProbe], bool]) -> int | None:
        """First open port whose probe satisfies *predicate*."""
        by_psm = {probe.psm: probe for probe in self.probes}
        for psm in self.open_psms:
            probe = by_psm.get(psm)
            if probe is not None and predicate(probe):
                return psm
        return None


class TargetScanner:
    """Phase 1 runner.

    :param queue: packet queue to the target.
    :param inquiry: callable returning the device meta (the discovery
        inquiry of a real dongle).
    :param browse: callable returning the advertised service records.
        None (the default) performs the real over-the-air SDP browse —
        connect to PSM 0x0001 and issue a ServiceSearchAttributeRequest
        — through :class:`repro.sdp.client.SdpClient`.
    """

    def __init__(
        self,
        queue: PacketQueue,
        inquiry: Callable[[], object],
        browse: Callable[[], Sequence] | None = None,
    ) -> None:
        self.queue = queue
        self.inquiry = inquiry
        self.browse = browse if browse is not None else self._browse_over_air

    def _browse_over_air(self) -> Sequence:
        from repro.sdp.client import SdpClient

        return SdpClient(self.queue).browse()

    def scan(self, our_base_cid: int = 0x0040) -> ScanResult:
        """Run the scanning phase.

        Probes each advertised port with a Connection Request and tears
        down any accepted channel immediately, so the target is back in a
        clean state when state guiding begins.

        :raises ScanError: if the device is unreachable.
        :raises TransportError: if the target dies during scanning.
        """
        try:
            meta = self.inquiry()
        except TransportError:
            raise
        except Exception as exc:  # a dead/undiscoverable device
            raise ScanError(f"target inquiry failed: {exc}") from exc

        try:
            records = list(self.browse())
        except ScanError:
            # Browse failed (e.g. no SDP data channel): fall through to
            # the blind SDP probe below.
            records = []
        probes: list[PortProbe] = []
        open_psms: list[int] = []
        next_cid = our_base_cid
        for record in records:
            probe, next_cid = self._probe_port(record, next_cid)
            probes.append(probe)
            if probe.connectable and not probe.requires_pairing:
                open_psms.append(probe.psm)

        if not open_psms:
            # Fall back to SDP, supported without pairing by every device.
            fallback = self._probe_psm(Psm.SDP, "Service Discovery Protocol", next_cid)
            probe, next_cid = fallback
            probes.append(probe)
            if probe.connectable and not probe.requires_pairing:
                open_psms.append(probe.psm)

        return ScanResult(meta=meta, probes=tuple(probes), open_psms=tuple(open_psms))

    def _probe_port(self, record, next_cid: int) -> tuple[PortProbe, int]:
        return self._probe_psm(record.psm, record.name, next_cid)

    def _probe_psm(self, psm: int, name: str, next_cid: int) -> tuple[PortProbe, int]:
        identifier = self.queue.take_identifier()
        responses = self.queue.exchange(
            connection_request(psm=psm, scid=next_cid, identifier=identifier)
        )
        next_cid += 1
        connectable = False
        requires_pairing = False
        for response in responses:
            if response.code != CommandCode.CONNECTION_RSP:
                continue
            result = response.fields.get("result")
            if result == ConnectionResult.SUCCESS:
                connectable = True
                self._teardown(response)
            elif result == ConnectionResult.REFUSED_SECURITY_BLOCK:
                requires_pairing = True
        return PortProbe(psm, name, connectable, requires_pairing), next_cid

    def _teardown(self, connection_rsp) -> None:
        """Politely close a probe channel so the scan leaves no residue."""
        dcid = connection_rsp.fields.get("dcid", 0)
        scid = connection_rsp.fields.get("scid", 0)
        if dcid:
            self.queue.exchange(
                disconnection_request(
                    dcid=dcid, scid=scid, identifier=self.queue.take_identifier()
                )
            )
