"""End-of-campaign reporting (feeds the paper's Table VI rows)."""

from __future__ import annotations

import dataclasses

from repro.analysis.metrics import MutationEfficiency
from repro.core.detection import Finding
from repro.l2cap.states import ChannelState


def format_elapsed(seconds: float) -> str:
    """Render a duration the way Table VI does ("1 m 32 s", "2 h 40 m")."""
    seconds = max(0.0, seconds)
    hours, remainder = divmod(int(round(seconds)), 3600)
    minutes, secs = divmod(remainder, 60)
    if hours:
        return f"{hours} h {minutes} m"
    if minutes:
        return f"{minutes} m {secs} s"
    return f"{secs} s"


@dataclasses.dataclass(frozen=True)
class CampaignReport:
    """Everything one campaign produced.

    :param target_name: device under test.
    :param findings: detected vulnerabilities, in detection order.
    :param elapsed_seconds: simulated campaign duration.
    :param packets_sent: total transmissions.
    :param sweeps_completed: full state-plan sweeps finished.
    :param efficiency: trace-derived Table VII metrics for this run.
    :param covered_states: PRETT-style state coverage of the run.
    :param strategy: name of the exploration strategy that scheduled
        the state plan ("sequential" is the seed behaviour).
    :param state_visits: per-state successful-entry counts, as sorted
        ``(state_name, count)`` pairs.
    :param transition_visits: counts of consecutive plan transitions, as
        sorted ``(from_state, to_state, count)`` triples.
    :param fuzz_target: registry name of the protocol fuzz target the
        campaign ran ("l2cap" is the paper's tool).
    :param state_space: size of the target's state universe — the
        denominator of the coverage figures (19 for L2CAP).
    """

    target_name: str
    findings: tuple[Finding, ...]
    elapsed_seconds: float
    packets_sent: int
    sweeps_completed: int
    efficiency: MutationEfficiency
    covered_states: frozenset[ChannelState]
    strategy: str = "sequential"
    state_visits: tuple[tuple[str, int], ...] = ()
    transition_visits: tuple[tuple[str, str, int], ...] = ()
    fuzz_target: str = "l2cap"
    state_space: int = 19

    @property
    def vulnerability_found(self) -> bool:
        """The Table VI "Vuln?" column."""
        return bool(self.findings)

    @property
    def first_finding(self) -> Finding | None:
        """The first detected vulnerability, if any."""
        return self.findings[0] if self.findings else None

    def as_table6_row(self) -> dict:
        """Render as one row of paper Table VI."""
        finding = self.first_finding
        return {
            "device": self.target_name,
            "vuln": "Yes" if finding else "No",
            "description": finding.vulnerability_class.value if finding else "N/A",
            "elapsed": format_elapsed(finding.sim_time) if finding else "N/A",
            "elapsed_seconds": round(finding.sim_time, 2) if finding else None,
        }

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"Target: {self.target_name}",
            f"Protocol: {self.fuzz_target}",
            f"Packets sent: {self.packets_sent}"
            f" ({self.sweeps_completed} full sweep(s),"
            f" {format_elapsed(self.elapsed_seconds)} simulated)",
            f"State coverage: {len(self.covered_states)}/{self.state_space}",
            f"MP Ratio: {100 * self.efficiency.mp_ratio:.2f}%"
            f"  PR Ratio: {100 * self.efficiency.pr_ratio:.2f}%"
            f"  Mutation efficiency: {100 * self.efficiency.mutation_efficiency:.2f}%",
        ]
        if not self.findings:
            lines.append("No vulnerability detected.")
        for finding in self.findings:
            lines.append(
                f"[{finding.vulnerability_class.value}] {finding.error_message} "
                f"in {finding.state} at {format_elapsed(finding.sim_time)} "
                f"(trigger: {finding.trigger})"
            )
        return "\n".join(lines)
