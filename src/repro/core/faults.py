"""Deterministic fault injection for the fleet runtime.

Chaos testing only earns its keep when it is reproducible: a recovery
path that fires on a random 1-in-200 run is a recovery path that rots.
This module injects faults *deterministically* — a :class:`FaultPlan`
is a seeded, picklable description of exactly which campaigns get hit
by exactly which failure, consulted by workers at shard boundaries via
the ``fault_plan`` hook on :class:`~repro.core.runtime.FleetContext`.

Fault kinds (:data:`FAULT_KINDS`):

* ``crash`` — the worker dies mid-shard. In a process-pool worker this
  is a hard ``os._exit`` (the orchestrator observes
  ``BrokenProcessPool``); in a thread worker or the inline path it
  raises :class:`WorkerCrashError`.
* ``hang`` — the worker sleeps for :attr:`FaultSpec.hang_seconds`
  before running the shard, exercising the supervisor's deadline and
  pool-restart path.
* ``corrupt`` — the shard completes but the target campaign's summary
  blob comes back truncated, exercising the
  :class:`~repro.core.runtime.SummaryDecodeError` retry path.
* ``corpus_io`` — the shard's corpus write-back raises a transient
  :class:`InjectedFaultError` before anything is written, exercising
  requeue without double-writing the corpus.

Each fault fires a bounded number of times (:attr:`FaultSpec.times`),
tracked in a filesystem *ledger* shared by every worker process —
marker files claimed with ``O_EXCL``, so one occurrence is claimed by
exactly one worker even under concurrent retries. Once a fault's
occurrences are exhausted, retried shards run clean; that is what makes
a chaos run converge to the byte-identical fault-free report.
"""

from __future__ import annotations

import dataclasses
import errno as errno_module
import json
import logging
import os
import random
import signal
import time
from pathlib import Path
from collections.abc import Sequence

from repro.errors import ReproError

_log = logging.getLogger(__name__)

#: Every fault kind a plan may carry, in documentation order.
FAULT_KINDS = ("crash", "hang", "corrupt", "corpus_io")


class WorkerCrashError(ReproError):
    """An injected worker crash, raised where a process exit cannot be."""


class InjectedFaultError(ReproError):
    """An injected transient failure (corpus IO, for now)."""


def _claim_occurrence(ledger_dir: str, name: str, times: int) -> bool:
    """Atomically claim one unfired occurrence of a named fault.

    Marker files are created with ``O_CREAT | O_EXCL``: the first
    claimant of each occurrence wins, every other claimant (or retry)
    moves on. Returns False once all occurrences are spent. The ledger
    survives process death, which is what keeps occurrence counts
    bounded across crashes and restarts.
    """
    ledger = Path(ledger_dir)
    ledger.mkdir(parents=True, exist_ok=True)
    for occurrence in range(times):
        marker = ledger / f"{name}-{occurrence:03d}"
        try:
            os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            continue
        return True
    return False


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One planned fault: *kind* strikes the shard carrying *spec_index*.

    :param kind: one of :data:`FAULT_KINDS`.
    :param spec_index: the campaign index whose shard is targeted.
    :param times: how many occurrences fire before the fault goes quiet
        (retried shards then run clean).
    :param hang_seconds: sleep duration for ``hang`` faults.
    """

    kind: str
    spec_index: int
    times: int = 1
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}"
                f" (choose from {', '.join(FAULT_KINDS)})"
            )
        if self.times < 1:
            raise ValueError("fault times must be >= 1")


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A picklable set of planned faults plus their shared ledger.

    The plan ships to workers inside the fleet context; the ledger
    directory is how occurrences stay bounded across worker restarts —
    a crashed worker cannot remember it already crashed, but the marker
    file it claimed before dying can.
    """

    faults: tuple[FaultSpec, ...]
    ledger_dir: str

    # -- ledger -------------------------------------------------------------------

    def _claim(self, fault: FaultSpec) -> bool:
        """Atomically claim one unfired occurrence of *fault*.

        Marker files are created with ``O_CREAT | O_EXCL``: the first
        claimant of each occurrence wins, every other worker (or retry)
        moves on. Returns False once all occurrences are spent.
        """
        return _claim_occurrence(
            self.ledger_dir,
            f"{fault.kind}-{fault.spec_index:06d}",
            fault.times,
        )

    def _armed(self, shard: Sequence, kinds: tuple[str, ...]):
        indices = {spec[0] for spec in shard}
        for fault in self.faults:
            if fault.kind in kinds and fault.spec_index in indices:
                yield fault

    # -- worker-side hooks ---------------------------------------------------------

    def on_shard_start(self, shard: Sequence, in_process_worker: bool) -> None:
        """Fire any planned crash/hang for *shard* (shard boundary hook)."""
        for fault in self._armed(shard, ("hang", "crash")):
            if not self._claim(fault):
                continue
            if fault.kind == "hang":
                time.sleep(fault.hang_seconds)
            elif in_process_worker:
                # A real worker death: skip interpreter teardown so the
                # orchestrator sees exactly what a SIGKILLed or OOMed
                # worker process produces — a broken pool.
                os._exit(2)
            else:
                raise WorkerCrashError(
                    f"injected worker crash on campaign {fault.spec_index}"
                )

    def on_corpus_writeback(self, shard: Sequence) -> None:
        """Fire a planned transient corpus IO error, before any write."""
        for fault in self._armed(shard, ("corpus_io",)):
            if self._claim(fault):
                raise InjectedFaultError(
                    "injected transient corpus IO error on campaign "
                    f"{fault.spec_index}"
                )

    def corrupt_blobs(self, shard: Sequence, blobs: list[bytes]) -> list[bytes]:
        """Truncate the planned campaigns' summary blobs."""
        corrupt_indices = {
            fault.spec_index
            for fault in self._armed(shard, ("corrupt",))
            if self._claim(fault)
        }
        if not corrupt_indices:
            return blobs
        return [
            blob[: max(1, len(blob) // 3)] if spec[0] in corrupt_indices else blob
            for spec, blob in zip(shard, blobs)
        ]


def seeded_plan(
    seed: int,
    spec_count: int,
    kinds: Sequence[str],
    ledger_dir: str | Path,
    faults_per_kind: int = 1,
    times: int = 1,
    hang_seconds: float = 30.0,
) -> FaultPlan:
    """Derive a deterministic chaos plan over a fleet of *spec_count* campaigns.

    The targeted campaign indices are a pure function of *seed* (and the
    argument list), so ``repro fleet --chaos`` hits the same campaigns
    on every machine — a chaos failure in CI reproduces locally.
    """
    if spec_count < 1:
        raise ValueError("spec_count must be >= 1")
    rng = random.Random(f"chaos:{seed}:{spec_count}")
    faults = []
    for kind in kinds:
        for spec_index in rng.sample(
            range(spec_count), min(faults_per_kind, spec_count)
        ):
            faults.append(
                FaultSpec(
                    kind=kind,
                    spec_index=spec_index,
                    times=times,
                    hang_seconds=hang_seconds,
                )
            )
    return FaultPlan(faults=tuple(faults), ledger_dir=str(ledger_dir))


# ---------------------------------------------------------------------------
# Service-level chaos: faults for the control plane itself
# ---------------------------------------------------------------------------

#: Every service fault kind, in documentation order.
SERVICE_FAULT_KINDS = (
    "registry_io",  # manifest/intent write raises ENOSPC
    "journal_io",  # telemetry journal append raises ENOSPC
    "torn_manifest",  # manifest bytes land truncated, then EIO
    "dispatcher_crash",  # the dispatcher thread dies mid-loop
    "kill",  # the whole service process is SIGKILLed
)

#: Instrumented sites a :class:`ServiceFaultSpec` may target. These are
#: the exact crash-anywhere points the acceptance harness exercises.
SERVICE_FAULT_SITES = (
    "registry.intent",  # before the write-ahead intent is durable
    "registry.manifest.pre",  # intent durable, manifest not yet written
    "registry.manifest.mid",  # between manifest tmp write and rename
    "scheduler.quota.charge",  # job persisted, HTTP ack not yet sent
    "scheduler.dispatch",  # top of the dispatcher loop
    "journal.emit",  # before a journal line is appended
)

#: Environment variable ``repro serve`` reads a fault plan from.
SERVICE_FAULTS_ENV = "REPRO_SERVICE_FAULTS"


@dataclasses.dataclass(frozen=True)
class ServiceFaultSpec:
    """One planned service fault: *kind* strikes at *site*.

    :param kind: one of :data:`SERVICE_FAULT_KINDS`.
    :param site: one of :data:`SERVICE_FAULT_SITES`; the fault fires on
        the first *times* arrivals at that site.
    :param times: occurrences before the fault goes quiet.
    """

    kind: str
    site: str
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in SERVICE_FAULT_KINDS:
            raise ValueError(
                f"unknown service fault kind {self.kind!r}"
                f" (choose from {', '.join(SERVICE_FAULT_KINDS)})"
            )
        if self.site not in SERVICE_FAULT_SITES:
            raise ValueError(
                f"unknown service fault site {self.site!r}"
                f" (choose from {', '.join(SERVICE_FAULT_SITES)})"
            )
        if self.times < 1:
            raise ValueError("fault times must be >= 1")


@dataclasses.dataclass(frozen=True)
class ServiceFaultPlan:
    """A seeded set of control-plane faults plus their shared ledger.

    Installed process-wide with :func:`install_service_faults`; the
    registry, scheduler and journal call :func:`service_fault` at the
    instrumented sites. Occurrences are bounded by the same marker-file
    ledger the worker-level :class:`FaultPlan` uses, so a fault that
    SIGKILLed the service does not re-fire after the restart that
    shares the ledger directory.
    """

    faults: tuple[ServiceFaultSpec, ...]
    ledger_dir: str

    def fire(self, site: str) -> ServiceFaultSpec | None:
        """Fire any armed fault for *site*.

        ``registry_io``/``journal_io`` raise :class:`OSError` (ENOSPC),
        ``dispatcher_crash`` raises :class:`WorkerCrashError`, ``kill``
        SIGKILLs the process — the real crash-anywhere event, no
        teardown runs. ``torn_manifest`` is returned to the caller,
        which owns the bytes being written and performs the tear.
        """
        for fault in self.faults:
            if fault.site != site:
                continue
            if not _claim_occurrence(
                self.ledger_dir, f"{fault.kind}-{fault.site}", fault.times
            ):
                continue
            if fault.kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            if fault.kind == "dispatcher_crash":
                raise WorkerCrashError(
                    f"injected dispatcher crash at {site}"
                )
            if fault.kind in ("registry_io", "journal_io"):
                raise OSError(
                    errno_module.ENOSPC,
                    f"injected {fault.kind} fault at {site}",
                )
            return fault  # torn_manifest: the writer does the tearing
        return None

    # -- (de)serialisation — ships the plan into a server subprocess ----

    def to_json(self) -> str:
        return json.dumps(
            {
                "ledger_dir": self.ledger_dir,
                "faults": [dataclasses.asdict(fault) for fault in self.faults],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ServiceFaultPlan":
        data = json.loads(text)
        return cls(
            faults=tuple(
                ServiceFaultSpec(**fault) for fault in data["faults"]
            ),
            ledger_dir=str(data["ledger_dir"]),
        )


#: The process-wide active plan; None means every site is a no-op.
_SERVICE_PLAN: ServiceFaultPlan | None = None


def service_fault(site: str) -> ServiceFaultSpec | None:
    """The hook the instrumented sites call; no-op without a plan."""
    if _SERVICE_PLAN is None:
        return None
    return _SERVICE_PLAN.fire(site)


def install_service_faults(plan: ServiceFaultPlan | None) -> None:
    """Install (or with None, clear) the process-wide service plan.

    Also wires the telemetry journal's fault hook, which cannot import
    this module at module scope (the core package imports telemetry).
    """
    global _SERVICE_PLAN
    _SERVICE_PLAN = plan
    from repro.telemetry import journal

    journal.set_fault_hook(service_fault if plan is not None else None)


def install_service_faults_from_env() -> ServiceFaultPlan | None:
    """Install the plan carried in :data:`SERVICE_FAULTS_ENV`, if any.

    ``repro serve`` calls this at start-up so the crash-anywhere
    harness can arm a *subprocess* server without any code path of its
    own. Returns the installed plan (None when the variable is unset).
    """
    text = os.environ.get(SERVICE_FAULTS_ENV)
    if not text:
        return None
    plan = ServiceFaultPlan.from_json(text)
    install_service_faults(plan)
    _log.warning(
        "service fault injection armed: %d fault(s), ledger %s",
        len(plan.faults),
        plan.ledger_dir,
    )
    return plan


__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "SERVICE_FAULTS_ENV",
    "SERVICE_FAULT_KINDS",
    "SERVICE_FAULT_SITES",
    "ServiceFaultPlan",
    "ServiceFaultSpec",
    "WorkerCrashError",
    "install_service_faults",
    "install_service_faults_from_env",
    "seeded_plan",
    "service_fault",
]
