"""Deterministic fault injection for the fleet runtime.

Chaos testing only earns its keep when it is reproducible: a recovery
path that fires on a random 1-in-200 run is a recovery path that rots.
This module injects faults *deterministically* — a :class:`FaultPlan`
is a seeded, picklable description of exactly which campaigns get hit
by exactly which failure, consulted by workers at shard boundaries via
the ``fault_plan`` hook on :class:`~repro.core.runtime.FleetContext`.

Fault kinds (:data:`FAULT_KINDS`):

* ``crash`` — the worker dies mid-shard. In a process-pool worker this
  is a hard ``os._exit`` (the orchestrator observes
  ``BrokenProcessPool``); in a thread worker or the inline path it
  raises :class:`WorkerCrashError`.
* ``hang`` — the worker sleeps for :attr:`FaultSpec.hang_seconds`
  before running the shard, exercising the supervisor's deadline and
  pool-restart path.
* ``corrupt`` — the shard completes but the target campaign's summary
  blob comes back truncated, exercising the
  :class:`~repro.core.runtime.SummaryDecodeError` retry path.
* ``corpus_io`` — the shard's corpus write-back raises a transient
  :class:`InjectedFaultError` before anything is written, exercising
  requeue without double-writing the corpus.

Each fault fires a bounded number of times (:attr:`FaultSpec.times`),
tracked in a filesystem *ledger* shared by every worker process —
marker files claimed with ``O_EXCL``, so one occurrence is claimed by
exactly one worker even under concurrent retries. Once a fault's
occurrences are exhausted, retried shards run clean; that is what makes
a chaos run converge to the byte-identical fault-free report.
"""

from __future__ import annotations

import dataclasses
import os
import random
import time
from pathlib import Path
from collections.abc import Sequence

from repro.errors import ReproError

#: Every fault kind a plan may carry, in documentation order.
FAULT_KINDS = ("crash", "hang", "corrupt", "corpus_io")


class WorkerCrashError(ReproError):
    """An injected worker crash, raised where a process exit cannot be."""


class InjectedFaultError(ReproError):
    """An injected transient failure (corpus IO, for now)."""


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One planned fault: *kind* strikes the shard carrying *spec_index*.

    :param kind: one of :data:`FAULT_KINDS`.
    :param spec_index: the campaign index whose shard is targeted.
    :param times: how many occurrences fire before the fault goes quiet
        (retried shards then run clean).
    :param hang_seconds: sleep duration for ``hang`` faults.
    """

    kind: str
    spec_index: int
    times: int = 1
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}"
                f" (choose from {', '.join(FAULT_KINDS)})"
            )
        if self.times < 1:
            raise ValueError("fault times must be >= 1")


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A picklable set of planned faults plus their shared ledger.

    The plan ships to workers inside the fleet context; the ledger
    directory is how occurrences stay bounded across worker restarts —
    a crashed worker cannot remember it already crashed, but the marker
    file it claimed before dying can.
    """

    faults: tuple[FaultSpec, ...]
    ledger_dir: str

    # -- ledger -------------------------------------------------------------------

    def _claim(self, fault: FaultSpec) -> bool:
        """Atomically claim one unfired occurrence of *fault*.

        Marker files are created with ``O_CREAT | O_EXCL``: the first
        claimant of each occurrence wins, every other worker (or retry)
        moves on. Returns False once all occurrences are spent.
        """
        ledger = Path(self.ledger_dir)
        ledger.mkdir(parents=True, exist_ok=True)
        name = f"{fault.kind}-{fault.spec_index:06d}"
        for occurrence in range(fault.times):
            marker = ledger / f"{name}-{occurrence:03d}"
            try:
                os.close(
                    os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                )
            except FileExistsError:
                continue
            return True
        return False

    def _armed(self, shard: Sequence, kinds: tuple[str, ...]):
        indices = {spec[0] for spec in shard}
        for fault in self.faults:
            if fault.kind in kinds and fault.spec_index in indices:
                yield fault

    # -- worker-side hooks ---------------------------------------------------------

    def on_shard_start(self, shard: Sequence, in_process_worker: bool) -> None:
        """Fire any planned crash/hang for *shard* (shard boundary hook)."""
        for fault in self._armed(shard, ("hang", "crash")):
            if not self._claim(fault):
                continue
            if fault.kind == "hang":
                time.sleep(fault.hang_seconds)
            elif in_process_worker:
                # A real worker death: skip interpreter teardown so the
                # orchestrator sees exactly what a SIGKILLed or OOMed
                # worker process produces — a broken pool.
                os._exit(2)
            else:
                raise WorkerCrashError(
                    f"injected worker crash on campaign {fault.spec_index}"
                )

    def on_corpus_writeback(self, shard: Sequence) -> None:
        """Fire a planned transient corpus IO error, before any write."""
        for fault in self._armed(shard, ("corpus_io",)):
            if self._claim(fault):
                raise InjectedFaultError(
                    "injected transient corpus IO error on campaign "
                    f"{fault.spec_index}"
                )

    def corrupt_blobs(self, shard: Sequence, blobs: list[bytes]) -> list[bytes]:
        """Truncate the planned campaigns' summary blobs."""
        corrupt_indices = {
            fault.spec_index
            for fault in self._armed(shard, ("corrupt",))
            if self._claim(fault)
        }
        if not corrupt_indices:
            return blobs
        return [
            blob[: max(1, len(blob) // 3)] if spec[0] in corrupt_indices else blob
            for spec, blob in zip(shard, blobs)
        ]


def seeded_plan(
    seed: int,
    spec_count: int,
    kinds: Sequence[str],
    ledger_dir: str | Path,
    faults_per_kind: int = 1,
    times: int = 1,
    hang_seconds: float = 30.0,
) -> FaultPlan:
    """Derive a deterministic chaos plan over a fleet of *spec_count* campaigns.

    The targeted campaign indices are a pure function of *seed* (and the
    argument list), so ``repro fleet --chaos`` hits the same campaigns
    on every machine — a chaos failure in CI reproduces locally.
    """
    if spec_count < 1:
        raise ValueError("spec_count must be >= 1")
    rng = random.Random(f"chaos:{seed}:{spec_count}")
    faults = []
    for kind in kinds:
        for spec_index in rng.sample(
            range(spec_count), min(faults_per_kind, spec_count)
        ):
            faults.append(
                FaultSpec(
                    kind=kind,
                    spec_index=spec_index,
                    times=times,
                    hang_seconds=hang_seconds,
                )
            )
    return FaultPlan(faults=tuple(faults), ledger_dir=str(ledger_dir))


__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "WorkerCrashError",
    "seeded_plan",
]
