"""Crash triage: replay and minimise a crashing campaign trace.

Paper §V limitation 2: "L2Fuzz can detect vulnerabilities by analyzing
the target's response packets; however, the root cause cannot be
determined immediately." With saved traces (``repro.analysis.traceio``)
and resettable virtual targets, we can do better than log hooking:

* :func:`replay` re-sends a trace's transmitted packets against a fresh
  target and reports whether (and where) the crash reproduces;
* :func:`minimize_trigger` shrinks a crashing packet sequence to a
  minimal reproducer with delta debugging (ddmin-style chunk removal),
  typically isolating the state-transition packets plus the single
  malformed trigger.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence

from repro.analysis.sniffer import Direction, TracedPacket
from repro.errors import TransportError
from repro.hci.packets import AclPacket
from repro.l2cap.packets import L2capPacket

#: A target factory returns a fresh (device, link) pair per attempt.
TargetFactory = Callable[[], tuple[object, object]]


def profile_target_factory(
    profile, armed: bool = True, fuzz_target: str = "l2cap"
) -> TargetFactory:
    """Target factory for a testbed profile.

    Each call builds a fresh virtual device from *profile* and wires a
    zero-latency link to it — replay only cares whether the target
    survives the stimulus, so response latency is stripped for speed.
    *fuzz_target* names the protocol target whose campaign produced the
    sequence; the device is prepared the same way (protocol server
    mounted, pairing gate lifted) so the reproducer finds the same
    surface it crashed in the first place.
    """
    from repro.hci.transport import VirtualLink

    def factory() -> tuple[object, object]:
        device = profile.build(armed=armed, zero_latency=True)
        if fuzz_target != "l2cap":
            from repro.targets import make_target

            make_target(fuzz_target).prepare_device(device, armed=armed)
        link = VirtualLink(clock=device.clock)
        device.attach_to(link)
        return device, link

    return factory


@dataclasses.dataclass(frozen=True)
class ReplayOutcome:
    """Result of replaying a packet sequence."""

    crashed: bool
    frames_replayed: int
    trigger_index: int | None
    error_message: str | None
    crash_id: str | None

    @property
    def trigger_packet_index(self) -> int | None:
        """Index (into the replayed sequence) of the killing packet."""
        return self.trigger_index


def sent_packets(entries: Sequence[TracedPacket]) -> list[L2capPacket]:
    """Extract the fuzzer→target packets from a trace."""
    return [
        entry.packet for entry in entries if entry.direction is Direction.SENT
    ]


def replay(
    packets: Sequence[L2capPacket],
    target_factory: TargetFactory,
    handle: int = 0x000B,
) -> ReplayOutcome:
    """Re-send *packets* in order against a fresh target.

    Responses are drained and discarded — replay only cares whether the
    target survives the stimulus.
    """
    device, link = target_factory()
    for index, packet in enumerate(packets):
        frame = AclPacket(handle=handle, payload=packet.encode()).encode()
        try:
            link.send_frame(frame)
            link.drain()
        except TransportError as error:
            crash = getattr(device, "crash", None)
            return ReplayOutcome(
                crashed=True,
                frames_replayed=index + 1,
                trigger_index=index,
                error_message=error.message,
                crash_id=crash.vulnerability_id if crash else None,
            )
    return ReplayOutcome(
        crashed=False,
        frames_replayed=len(packets),
        trigger_index=None,
        error_message=None,
        crash_id=None,
    )


def minimize_trigger(
    packets: Sequence[L2capPacket],
    target_factory: TargetFactory,
    max_rounds: int = 16,
) -> list[L2capPacket]:
    """Delta-debug *packets* down to a minimal crashing subsequence.

    Classic ddmin shape: try dropping chunks at decreasing granularity,
    keeping any removal that still reproduces the crash. Each attempt
    uses a fresh target from *target_factory*, so the search is sound
    for deterministic triggers.

    :raises ValueError: if the full sequence does not crash the target.
    """
    current = list(packets)
    if not replay(current, target_factory).crashed:
        raise ValueError("the supplied packet sequence does not crash the target")

    chunk = max(1, len(current) // 2)
    rounds = 0
    while chunk >= 1 and rounds < max_rounds:
        rounds += 1
        reduced_this_pass = False
        index = 0
        while index < len(current):
            candidate = current[:index] + current[index + chunk :]
            if candidate and replay(candidate, target_factory).crashed:
                current = candidate
                reduced_this_pass = True
                # stay at the same index: the next chunk shifted into place
            else:
                index += chunk
        if not reduced_this_pass:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    return current


def triage_report(
    minimal: Sequence[L2capPacket], outcome: ReplayOutcome
) -> str:
    """Human-readable root-cause summary of a minimised reproducer."""
    lines = [
        f"Minimal reproducer: {len(minimal)} packet(s)"
        f" -> {outcome.error_message or 'no crash'}"
        + (f" [{outcome.crash_id}]" if outcome.crash_id else ""),
    ]
    for index, packet in enumerate(minimal):
        marker = " <== trigger" if outcome.trigger_index == index else ""
        lines.append(f"  {index}: {packet.describe()}{marker}")
    return "\n".join(lines)
