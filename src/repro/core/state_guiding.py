"""Phase 2 — state guiding (paper §III.C).

Drives the target into each L2CAP state using only *valid* commands, so
the fuzzing phase can test every job with packets the target will parse.
The guide owns:

* the ordered **state plan** — the 13 acceptor-reachable states, walked
  from shallow (CLOSED) to deep (move states);
* a **route** per state — the exact valid-command exchange that parks the
  target there, built on the open ports the scanner found;
* **teardown** — valid disconnections after each state's fuzzing, so the
  next route starts clean.

Routes adapt to the target: services that initiate their own
Configuration Request on accept expose the WAIT_CONFIG_REQ/_REQ_RSP side
of the configuration sub-machine, passive services expose the
WAIT_SEND_CONFIG/_RSP side, and stacks without AMP simply cannot be put
into the move states (the guide then fuzzes the move job from OPEN, which
is what the real tool's generous command map amounts to).
"""

from __future__ import annotations

import dataclasses

from repro.core.packet_queue import PacketQueue
from repro.core.target_scanning import ScanResult
from repro.l2cap.constants import CommandCode, ConfigResult, ConnectionResult
from repro.l2cap.jobs import Job, job_of
from repro.l2cap.packets import (
    L2capPacket,
    configuration_request,
    configuration_response,
    connection_request,
    create_channel_request,
    disconnection_request,
    move_channel_request,
)
from repro.l2cap.states import ChannelState


@dataclasses.dataclass
class ChannelContext:
    """A live channel the guide established.

    :param our_cid: the CID we allocated (SCID on the wire).
    :param target_cid: the CID the target allocated (its DCID).
    :param psm: the port the channel was opened on.
    :param device_config_req_id: identifier of the target's own pending
        Configuration Request, if it sent one.
    """

    our_cid: int
    target_cid: int
    psm: int
    device_config_req_id: int | None = None


@dataclasses.dataclass
class GuidedState:
    """Result of routing: where we parked the target.

    :param intended: the plan's target state.
    :param job: its job (paper Table I) — selects the valid command set.
    :param channel: live channel context (None for channel-less states).
    """

    intended: ChannelState
    job: Job
    channel: ChannelContext | None


#: The state plan: every acceptor-reachable state, shallow to deep.
STATE_PLAN: tuple[ChannelState, ...] = (
    ChannelState.CLOSED,
    ChannelState.WAIT_CONNECT,
    ChannelState.WAIT_CREATE,
    ChannelState.WAIT_CONFIG,
    ChannelState.WAIT_SEND_CONFIG,
    ChannelState.WAIT_CONFIG_RSP,
    ChannelState.WAIT_CONFIG_REQ,
    ChannelState.WAIT_CONFIG_REQ_RSP,
    ChannelState.WAIT_IND_FINAL_RSP,
    ChannelState.OPEN,
    ChannelState.WAIT_DISCONNECT,
    ChannelState.WAIT_MOVE,
    ChannelState.WAIT_MOVE_CONFIRM,
)


class StateGuide:
    """Routes the target through the state plan.

    :param queue: packet queue to the target.
    :param scan: phase-1 result (open ports).
    :param our_base_cid: first CID the guide allocates for itself.
    """

    def __init__(self, queue: PacketQueue, scan: ScanResult, our_base_cid: int = 0x0050) -> None:
        self.queue = queue
        self.scan = scan
        self._next_cid = our_base_cid
        self._live: list[ChannelContext] = []
        #: learned behaviour of each open port: True = the port's service
        #: initiates its own Configuration Request on accept.
        self._port_initiates: dict[int, bool] = {}

    # -- plan ------------------------------------------------------------------

    def plan(self) -> tuple[ChannelState, ...]:
        """The ordered states this campaign will visit."""
        return STATE_PLAN

    # -- routing -----------------------------------------------------------------

    def enter(self, state: ChannelState) -> GuidedState:
        """Drive the target into *state* using valid commands.

        Falls back gracefully: when a route's precondition is unavailable
        on this target (no AMP, no config-initiating port), the guide
        parks the target in the nearest same-job or OPEN state so the
        job's commands are still exercised.

        :raises TransportError: if the target dies during routing.
        """
        job = job_of(state)
        route = {
            ChannelState.CLOSED: self._route_posture,
            ChannelState.WAIT_CONNECT: self._route_posture,
            ChannelState.WAIT_CREATE: self._route_wait_create,
            ChannelState.WAIT_CONFIG: self._route_wait_config,
            ChannelState.WAIT_SEND_CONFIG: self._route_config_via_our_request,
            ChannelState.WAIT_CONFIG_RSP: self._route_config_via_our_request,
            ChannelState.WAIT_CONFIG_REQ: self._route_wait_config_req,
            ChannelState.WAIT_CONFIG_REQ_RSP: self._route_wait_config_req_rsp,
            ChannelState.WAIT_IND_FINAL_RSP: self._route_wait_ind_final_rsp,
            ChannelState.OPEN: self._route_open,
            ChannelState.WAIT_DISCONNECT: self._route_wait_disconnect,
            ChannelState.WAIT_MOVE: self._route_move,
            ChannelState.WAIT_MOVE_CONFIRM: self._route_move,
        }[state]
        channel = route()
        return GuidedState(intended=state, job=job, channel=channel)

    def leave(self, guided: GuidedState) -> None:
        """Tear down whatever the route built (valid disconnections)."""
        self.teardown_all()

    def teardown_all(self) -> None:
        """Disconnect every channel the guide still holds."""
        while self._live:
            context = self._live.pop()
            try:
                self.queue.exchange(
                    disconnection_request(
                        dcid=context.target_cid,
                        scid=context.our_cid,
                        identifier=self.queue.take_identifier(),
                    )
                )
            except Exception:
                self._live.clear()
                raise

    # -- route primitives ------------------------------------------------------------

    def _take_cid(self) -> int:
        cid = self._next_cid
        self._next_cid += 1
        if self._next_cid > 0xFFFF:
            self._next_cid = 0x0050
        return cid

    def _connect(self, psm: int) -> ChannelContext | None:
        """Open a channel on *psm* with a valid Connection Request."""
        our_cid = self._take_cid()
        responses = self.queue.exchange(
            connection_request(psm=psm, scid=our_cid, identifier=self.queue.take_identifier())
        )
        target_cid = 0
        device_req_id = None
        for response in responses:
            if response.code == CommandCode.CONNECTION_RSP:
                if response.fields.get("result") == ConnectionResult.SUCCESS:
                    target_cid = response.fields.get("dcid", 0)
            elif response.code == CommandCode.CONFIGURATION_REQ:
                device_req_id = response.identifier
        if not target_cid:
            return None
        context = ChannelContext(
            our_cid=our_cid,
            target_cid=target_cid,
            psm=psm,
            device_config_req_id=device_req_id,
        )
        self._live.append(context)
        self._port_initiates[psm] = device_req_id is not None
        return context

    def _connect_preferring(self, initiating: bool) -> ChannelContext | None:
        """Connect on a port whose config behaviour matches *initiating*.

        Port behaviour is learned lazily: unknown ports are tried in scan
        order until one matches; the last successful connection is kept
        (and returned) even on a behaviour mismatch, so the campaign
        always has *a* channel in the configuration job.
        """
        fallback: ChannelContext | None = None
        for psm in self.scan.open_psms:
            known = self._port_initiates.get(psm)
            if known is not None and known != initiating:
                continue
            if fallback is not None:
                self._disconnect(fallback)
                fallback = None
            context = self._connect(psm)
            if context is None:
                continue
            matches = (context.device_config_req_id is not None) == initiating
            if matches:
                return context
            fallback = context
        return fallback

    def _disconnect(self, context: ChannelContext) -> None:
        if context in self._live:
            self._live.remove(context)
        self.queue.exchange(
            disconnection_request(
                dcid=context.target_cid,
                scid=context.our_cid,
                identifier=self.queue.take_identifier(),
            )
        )

    def _send_our_config_req(self, context: ChannelContext) -> None:
        """Send a valid Configuration Request; absorb the target's reply."""
        responses = self.queue.exchange(
            configuration_request(
                dcid=context.target_cid, identifier=self.queue.take_identifier()
            )
        )
        for response in responses:
            if response.code == CommandCode.CONFIGURATION_REQ:
                context.device_config_req_id = response.identifier

    def _answer_device_config(
        self, context: ChannelContext, result: int = ConfigResult.SUCCESS
    ) -> None:
        """Answer the target's own Configuration Request."""
        if context.device_config_req_id is None:
            return
        self.queue.exchange(
            configuration_response(
                scid=context.target_cid,
                result=result,
                identifier=context.device_config_req_id,
            )
        )
        if result == ConfigResult.SUCCESS:
            context.device_config_req_id = None

    # -- routes --------------------------------------------------------------------

    def _route_posture(self) -> ChannelContext | None:
        """CLOSED / WAIT_CONNECT: passive-open postures, nothing to set up."""
        return None

    def _route_wait_create(self) -> ChannelContext | None:
        """Demonstrate the Wait-Create path with a valid channel creation.

        AMP-capable targets accept it and hand back a channel; others
        refuse, and the creation job is fuzzed from the posture anyway.
        """
        our_cid = self._take_cid()
        responses = self.queue.exchange(
            create_channel_request(
                psm=self.scan.primary_psm,
                scid=our_cid,
                cont_id=0,
                identifier=self.queue.take_identifier(),
            )
        )
        for response in responses:
            if (
                response.code == CommandCode.CREATE_CHANNEL_RSP
                and response.fields.get("result") == ConnectionResult.SUCCESS
            ):
                context = ChannelContext(
                    our_cid=our_cid,
                    target_cid=response.fields.get("dcid", 0),
                    psm=self.scan.primary_psm,
                )
                self._live.append(context)
                return context
        return None

    def _route_wait_config(self) -> ChannelContext | None:
        """Connect and stop: the target sits in its first config state."""
        return self._connect_preferring(initiating=False)

    def _route_config_via_our_request(self) -> ChannelContext | None:
        """WAIT_SEND_CONFIG / WAIT_CONFIG_RSP: provoke via our request.

        On a passive port the target passes through WAIT_SEND_CONFIG and
        parks in WAIT_CONFIG_RSP waiting for our answer to its request.
        """
        context = self._connect_preferring(initiating=False)
        if context is None:
            return None
        self._send_our_config_req(context)
        return context

    def _route_wait_config_req(self) -> ChannelContext | None:
        """Answer the target's own request first: it parks awaiting ours."""
        context = self._connect_preferring(initiating=True)
        if context is None:
            return None
        if context.device_config_req_id is None:
            # Passive port: provoke the target's request with ours, then
            # answer it — the channel opens, the job is still exercised.
            self._send_our_config_req(context)
        self._answer_device_config(context)
        return context

    def _route_wait_config_req_rsp(self) -> ChannelContext | None:
        """A config-initiating port parks here immediately on accept."""
        return self._connect_preferring(initiating=True)

    def _route_wait_ind_final_rsp(self) -> ChannelContext | None:
        """Answer the target's request with result=PENDING (lockstep)."""
        context = self._connect_preferring(initiating=True)
        if context is None:
            return None
        if context.device_config_req_id is None:
            self._send_our_config_req(context)
        if context.device_config_req_id is not None:
            self.queue.exchange(
                configuration_response(
                    scid=context.target_cid,
                    result=ConfigResult.PENDING,
                    identifier=context.device_config_req_id,
                )
            )
        return context

    def _route_open(self) -> ChannelContext | None:
        """Complete configuration in both directions."""
        context = self._connect_preferring(initiating=False)
        if context is None:
            return None
        if context.device_config_req_id is None:
            self._send_our_config_req(context)
        self._answer_device_config(context)
        return context

    def _route_wait_disconnect(self) -> ChannelContext | None:
        """Reject the target's config request so it initiates disconnect."""
        context = self._connect_preferring(initiating=True)
        if context is None:
            return None
        if context.device_config_req_id is None:
            self._send_our_config_req(context)
        if context.device_config_req_id is not None:
            self._answer_device_config(context, result=ConfigResult.REJECTED)
            # If the stack initiated disconnect, the channel is half-dead;
            # keep the context so fuzzing targets the right CIDs and the
            # teardown's Disconnection Request is still valid-or-ignored.
        return context

    def _route_move(self) -> ChannelContext | None:
        """Open a channel and start a move (AMP stacks only)."""
        context = self._route_open()
        if context is None:
            return None
        self.queue.exchange(
            move_channel_request(
                icid=context.target_cid, identifier=self.queue.take_identifier()
            )
        )
        return context

    # -- introspection ----------------------------------------------------------------

    def live_channels(self) -> tuple[ChannelContext, ...]:
        """Channels the guide currently holds open."""
        return tuple(self._live)
