"""Pluggable exploration strategies for the state-guided fuzzing loop.

The seed campaign walks the 13-state plan in a fixed shallow-to-deep
order every sweep (paper Fig. 5). Stateful-fuzzing practice suggests
richer schedules: spreading visits evenly across the machine, driving
the deepest reachable chains first, or concentrating the whole mutation
budget on one suspect state. This module factors that scheduling
decision out of :class:`~repro.core.fuzzer.L2Fuzz` behind a small
protocol, so a campaign (or a whole fleet) can pick its exploration
policy per run:

* ``sequential`` — the seed behaviour and the default: the plan exactly
  as :class:`~repro.core.state_guiding.StateGuide` orders it.
* ``breadth_first`` — least-visited states first, so every reachable
  state is visited once before any state is visited a second time, even
  when sweeps are cut short by the packet budget.
* ``depth_first`` — states needing the longest valid-command routing
  chains first, exercising the deepest protocol contexts while the
  budget is still fresh.
* ``targeted`` — BFS-route through the transition relation to one
  chosen state and concentrate the mutation budget there.

Every strategy is a pure function of the base plan and the visit
counts; given a fixed campaign seed the resulting schedule is fully
deterministic.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from collections.abc import Mapping, Sequence
from typing import Protocol, runtime_checkable

from repro.l2cap.states import ACCEPTOR_TRANSITIONS, ChannelState


@runtime_checkable
class ExplorationStrategy(Protocol):
    """Policy deciding which states a sweep visits and how hard.

    Implementations must be deterministic: the same ``base_plan`` and
    ``visits`` must always produce the same schedule.
    """

    @property
    def name(self) -> str:
        """Registry name of the strategy (appears in reports)."""
        ...

    def plan(
        self,
        base_plan: Sequence[ChannelState],
        visits: Mapping[ChannelState, int],
    ) -> tuple[ChannelState, ...]:
        """Order the states the next sweep will visit.

        :param base_plan: the guide's canonical shallow-to-deep plan.
        :param visits: per-state visit counts accumulated so far.
        """
        ...

    def packets_per_command(self, state: ChannelState, base: int) -> int:
        """Mutation budget for *state*: malformed packets per command."""
        ...


#: Valid-command routing depth of each plan state: how many exchanges the
#: :class:`~repro.core.state_guiding.StateGuide` route needs to park the
#: target there. Drives the ``depth_first`` ordering.
ROUTE_DEPTH: dict[ChannelState, int] = {
    ChannelState.CLOSED: 0,
    ChannelState.WAIT_CONNECT: 0,
    ChannelState.WAIT_CREATE: 1,
    ChannelState.WAIT_CONFIG: 1,
    ChannelState.WAIT_CONFIG_REQ_RSP: 1,
    ChannelState.WAIT_SEND_CONFIG: 2,
    ChannelState.WAIT_CONFIG_RSP: 2,
    ChannelState.WAIT_CONFIG_REQ: 2,
    ChannelState.WAIT_IND_FINAL_RSP: 2,
    ChannelState.WAIT_DISCONNECT: 2,
    ChannelState.OPEN: 3,
    ChannelState.WAIT_MOVE: 4,
    ChannelState.WAIT_MOVE_CONFIRM: 4,
}


def _transition_graph() -> dict[ChannelState, frozenset[ChannelState]]:
    """Acceptor transition relation as an adjacency map.

    Starts from the Table-II/Fig.-6.2 relation in
    :mod:`repro.l2cap.states` and adds the edges the guide exploits that
    the table cannot express (target-initiated configuration requests,
    pending-result answers, move initiation) so every plan state is
    reachable from CLOSED.
    """
    edges: dict[ChannelState, set[ChannelState]] = {}
    for state, transitions in ACCEPTOR_TRANSITIONS.items():
        for transition in transitions:
            if transition.next_state is not None:
                edges.setdefault(state, set()).add(transition.next_state)
    implied = {
        # Passive-open postures advertised before any channel exists.
        ChannelState.CLOSED: {ChannelState.WAIT_CONNECT, ChannelState.WAIT_CREATE},
        # A config-initiating service sends its own Configuration Request
        # the moment it accepts; a passive one waits for ours.
        ChannelState.WAIT_CONFIG: {
            ChannelState.WAIT_CONFIG_REQ_RSP,
            ChannelState.WAIT_SEND_CONFIG,
        },
        ChannelState.WAIT_SEND_CONFIG: {ChannelState.WAIT_CONFIG_RSP},
        # Answering (or pending/rejecting) the target's own request.
        ChannelState.WAIT_CONFIG_REQ_RSP: {
            ChannelState.WAIT_IND_FINAL_RSP,
            ChannelState.WAIT_DISCONNECT,
        },
        # An open channel can start a move (AMP) in either direction.
        ChannelState.OPEN: {ChannelState.WAIT_MOVE},
    }
    for state, targets in implied.items():
        edges.setdefault(state, set()).update(targets)
    return {state: frozenset(targets) for state, targets in edges.items()}


TRANSITION_GRAPH: dict[ChannelState, frozenset[ChannelState]] = _transition_graph()


def bfs_route(
    target: ChannelState, origin: ChannelState = ChannelState.CLOSED
) -> tuple[ChannelState, ...]:
    """Shortest transition path ``origin → target`` (inclusive).

    Neighbour expansion is ordered by the canonical state-plan index, so
    the route is deterministic. Raises :class:`ValueError` when *target*
    is unreachable from *origin*.
    """
    from repro.core.state_guiding import STATE_PLAN

    order = {state: index for index, state in enumerate(STATE_PLAN)}
    if target is origin:
        return (origin,)
    parents: dict[ChannelState, ChannelState] = {}
    frontier = deque([origin])
    while frontier:
        state = frontier.popleft()
        neighbours = sorted(
            TRANSITION_GRAPH.get(state, frozenset()),
            key=lambda s: order.get(s, len(order)),
        )
        for neighbour in neighbours:
            if neighbour is origin or neighbour in parents:
                continue
            parents[neighbour] = state
            if neighbour is target:
                path = [target]
                while path[-1] is not origin:
                    path.append(parents[path[-1]])
                return tuple(reversed(path))
            frontier.append(neighbour)
    raise ValueError(f"no acceptor-side route from {origin.value} to {target.value}")


@dataclasses.dataclass(frozen=True)
class SequentialStrategy:
    """The seed behaviour: the guide's plan, verbatim, every sweep."""

    name: str = dataclasses.field(default="sequential", init=False)

    def plan(
        self,
        base_plan: Sequence[ChannelState],
        visits: Mapping[ChannelState, int],
    ) -> tuple[ChannelState, ...]:
        return tuple(base_plan)

    def packets_per_command(self, state: ChannelState, base: int) -> int:
        return base


@dataclasses.dataclass(frozen=True)
class BreadthFirstStrategy:
    """Least-visited states first (ties break in plan order).

    Because every state's count is incremented on entry, any state still
    at the minimum count sorts ahead of states already past it — so the
    schedule provably visits every reachable state once before visiting
    any state a second time, even across budget-truncated sweeps.
    """

    name: str = dataclasses.field(default="breadth_first", init=False)

    def plan(
        self,
        base_plan: Sequence[ChannelState],
        visits: Mapping[ChannelState, int],
    ) -> tuple[ChannelState, ...]:
        order = {state: index for index, state in enumerate(base_plan)}
        return tuple(
            sorted(base_plan, key=lambda s: (visits.get(s, 0), order[s]))
        )

    def packets_per_command(self, state: ChannelState, base: int) -> int:
        return base


@dataclasses.dataclass(frozen=True)
class DepthFirstStrategy:
    """Longest valid routing chains first, then back towards CLOSED.

    Each sweep starts from the states that need the deepest
    valid-command routes (move, open, configuration lockstep) while the
    packet budget is freshest, mirroring depth-first exploration of the
    transition tree before the teardown reset.
    """

    name: str = dataclasses.field(default="depth_first", init=False)

    def plan(
        self,
        base_plan: Sequence[ChannelState],
        visits: Mapping[ChannelState, int],
    ) -> tuple[ChannelState, ...]:
        order = {state: index for index, state in enumerate(base_plan)}
        return tuple(
            sorted(
                base_plan,
                key=lambda s: (-ROUTE_DEPTH.get(s, 0), -order[s]),
            )
        )

    def packets_per_command(self, state: ChannelState, base: int) -> int:
        return base


@dataclasses.dataclass(frozen=True)
class TargetedStrategy:
    """Concentrate the campaign on one state.

    The sweep follows the BFS route from CLOSED to :attr:`target` so the
    protocol context is built with valid commands, fuzzing lightly along
    the way, then spends :attr:`focus_factor` times the base mutation
    budget on the target itself.

    :param target: the state receiving the concentrated budget.
    :param focus_factor: budget multiplier for the target state.
    """

    target: ChannelState = ChannelState.OPEN
    focus_factor: int = 4
    name: str = dataclasses.field(default="targeted", init=False)

    def __post_init__(self) -> None:
        if self.focus_factor < 1:
            raise ValueError("focus_factor must be >= 1")
        bfs_route(self.target)  # fail fast on unroutable targets

    def plan(
        self,
        base_plan: Sequence[ChannelState],
        visits: Mapping[ChannelState, int],
    ) -> tuple[ChannelState, ...]:
        route = bfs_route(self.target)
        return tuple(state for state in route if state in set(base_plan))

    def packets_per_command(self, state: ChannelState, base: int) -> int:
        if state is self.target:
            return base * self.focus_factor
        return max(1, base // 2)


#: Registry names, in presentation order.
STRATEGY_NAMES: tuple[str, ...] = (
    "sequential",
    "breadth_first",
    "depth_first",
    "targeted",
    "coverage_guided",
)


def make_strategy(
    name: str,
    target: ChannelState | None = None,
    prior_visits: Mapping[str, int] | None = None,
) -> ExplorationStrategy:
    """Build a strategy from its registry name.

    :param name: one of :data:`STRATEGY_NAMES`.
    :param target: target state for ``targeted`` (default OPEN); ignored
        by the other strategies.
    :param prior_visits: cross-campaign visit prior (state name →
        count) for ``coverage_guided``; ignored by the other strategies.
    :raises ValueError: for an unknown name.
    """
    if name == "sequential":
        return SequentialStrategy()
    if name == "breadth_first":
        return BreadthFirstStrategy()
    if name == "depth_first":
        return DepthFirstStrategy()
    if name == "targeted":
        if target is None:
            return TargetedStrategy()
        return TargetedStrategy(target=target)
    if name == "coverage_guided":
        # Imported lazily: the scheduler lives with the corpus subsystem
        # it feeds from, and core stays import-light without it.
        from repro.corpus.scheduler import EnergyScheduler

        return EnergyScheduler(prior_visits=prior_visits)
    raise ValueError(
        f"unknown strategy {name!r}; choose from {', '.join(STRATEGY_NAMES)}"
    )
