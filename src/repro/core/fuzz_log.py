"""Structured campaign log (the paper's "Logfile" output, Fig. 5)."""

from __future__ import annotations

import dataclasses
import enum
import json


class LogLevel(enum.Enum):
    """Severity of a log entry."""

    INFO = "info"
    PACKET = "packet"
    WARNING = "warning"
    VULNERABILITY = "vulnerability"


@dataclasses.dataclass(frozen=True)
class LogEntry:
    """One structured log record."""

    sim_time: float
    level: LogLevel
    phase: str
    message: str
    detail: dict = dataclasses.field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready rendering."""
        return {
            "t": round(self.sim_time, 6),
            "level": self.level.value,
            "phase": self.phase,
            "message": self.message,
            **({"detail": self.detail} if self.detail else {}),
        }


class FuzzLog:
    """Append-only campaign log with JSONL export."""

    def __init__(self) -> None:
        self.entries: list[LogEntry] = []

    def log(
        self,
        sim_time: float,
        level: LogLevel,
        phase: str,
        message: str,
        **detail,
    ) -> None:
        """Append one record."""
        self.entries.append(LogEntry(sim_time, level, phase, message, detail))

    def info(self, sim_time: float, phase: str, message: str, **detail) -> None:
        """Append an INFO record."""
        self.log(sim_time, LogLevel.INFO, phase, message, **detail)

    def vulnerability(self, sim_time: float, phase: str, message: str, **detail) -> None:
        """Append a VULNERABILITY record."""
        self.log(sim_time, LogLevel.VULNERABILITY, phase, message, **detail)

    def by_level(self, level: LogLevel) -> list[LogEntry]:
        """All records at *level*."""
        return [entry for entry in self.entries if entry.level is level]

    def to_jsonl(self) -> str:
        """Serialise the whole log as JSON Lines."""
        return "\n".join(json.dumps(entry.as_dict()) for entry in self.entries)

    def __len__(self) -> int:
        return len(self.entries)
