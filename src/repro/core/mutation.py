"""Phase 3 — core field mutating (paper §III.D, Algorithm 1).

Generates valid malformed packets: for each valid command of the current
job, build the command with its spec layout, then

* keep ``F`` fixed (the signaling Header CID, 0x0001),
* keep ``D`` consistent (lengths derived, code valid for the job,
  identifier freshly assigned),
* keep ``MA`` at defaults ("used without changes"),
* mutate ``MC``: PSM ← ``random(abnormal)`` from the Table IV abnormal
  ranges, CIDP ← ``random(normal)`` from 0x0040–0xFFFF ignoring the
  target's dynamic allocation,
* append a garbage tail that never pushes the frame past the signaling
  MTU.

The result is exactly the Fig. 7 transformation: a packet the target
parses (no "command not understood", no "invalid length", no "MTU
exceeded") whose port/channel plumbing is poisoned.
"""

from __future__ import annotations

import dataclasses
import random
from collections.abc import Iterable, Iterator

from repro.core.config import FuzzConfig
from repro.l2cap.constants import CommandCode, MIN_SIGNALING_MTU
from repro.l2cap.fields import (
    CIDP_FIELD_NAMES,
    random_abnormal_psm,
    random_normal_cidp,
)
from repro.l2cap.packets import COMMAND_SPECS, CommandSpec, L2capPacket

#: Offset of the identifier byte inside an encoded signaling frame
#: (Payload Length 2 | Header CID 2 | Code 1 | *Identifier* | ...).
_IDENTIFIER_OFFSET = 4 + 1

#: Offset of the first fixed data field (after the 2-byte Data Length).
_FIELDS_OFFSET = 4 + 4


@dataclasses.dataclass(frozen=True)
class _WireTemplate:
    """Precomputed bytes-level mutation plan for one command code.

    ``base`` is the full encoded frame with default field values and
    identifier 0; ``mutations`` lists the core fields Algorithm 1
    touches as ``(name, wire offset, size, is_psm)`` in spec order —
    the same order the object path draws its random values in, so both
    paths consume the RNG stream identically.
    """

    spec: CommandSpec
    base: bytes
    mutations: tuple[tuple[str, int, int, bool], ...]
    defaults: dict[str, int]


class CoreFieldMutator:
    """Algorithm 1 implementation.

    :param config: campaign configuration (garbage sizing, ``n``).
    :param rng: seeded random source (determinism for replay).
    :param signaling_mtu: the target's signaling MTU; garbage tails are
        clamped so ``wire length <= MTU`` always holds.
    :param dictionary: garbage tails harvested from a shared corpus
        (known-crashing reproducer tails); when non-empty, a quarter of
        the generated tails splice a dictionary token instead of fresh
        random bytes — cross-campaign seed sharing at the mutation
        level. Empty (the default) leaves the RNG stream untouched, so
        seeded campaigns without a corpus stay byte-identical.
    """

    #: Probability that a garbage tail is spliced from the dictionary.
    SPLICE_RATE = 0.25

    def __init__(
        self,
        config: FuzzConfig,
        rng: random.Random,
        signaling_mtu: int = MIN_SIGNALING_MTU,
        dictionary: Iterable[bytes] = (),
    ) -> None:
        self.config = config
        self.rng = rng
        self.signaling_mtu = signaling_mtu
        self.dictionary = tuple(tail for tail in dictionary if tail)
        self._templates: dict[int, _WireTemplate | None] = {}

    def mutate(self, code: CommandCode, identifier: int) -> L2capPacket:
        """Build one malformed packet for *code* (Algorithm 1 lines 5-21).

        :param identifier: the packet ID to stamp (a ``D`` field, kept
            valid).
        """
        packet = L2capPacket(code, identifier)  # D defaults, F fixed, MA defaults
        spec = COMMAND_SPECS[code]
        for field in spec.fields:
            if field.name == "psm":
                packet.fields["psm"] = random_abnormal_psm(self.rng)
            elif field.name in CIDP_FIELD_NAMES:
                packet.fields[field.name] = random_normal_cidp(
                    self.rng, field_size=field.size
                )
        if not self.config.mutate_core_fields_only:
            # Ablation: BFuzz-style corruption of the dependent fields.
            if self.rng.random() < 0.5:
                packet.declared_data_len = self.rng.randrange(0, 4)
        if self.config.append_garbage:
            packet.garbage = self._garbage_tail(packet)
        return packet

    def _garbage_tail(self, packet: L2capPacket) -> bytes:
        """Draw a garbage tail that keeps the frame within the MTU."""
        return self._garbage_for_length(packet.wire_length)

    def _garbage_for_length(self, wire_length: int) -> bytes:
        """The tail draw itself, shared by the object and wire paths.

        Draw order and RNG consumption are part of the campaign's
        deterministic contract: both paths call this with the same
        pre-garbage frame length, so seeded streams stay identical.
        """
        headroom = self.signaling_mtu - wire_length
        if headroom <= 0:
            return b""
        rng = self.rng
        if self.dictionary and rng.random() < self.SPLICE_RATE:
            token = self.dictionary[rng.randrange(len(self.dictionary))]
            return token[: min(headroom, self.config.max_garbage)]
        length = rng.randint(1, min(self.config.max_garbage, headroom))
        getrandbits = rng.getrandbits
        # One draw per byte, exactly like the historical generator
        # expression (bytes(getrandbits(8) for ...)), minus the
        # generator frame per byte.
        return bytes([getrandbits(8) for _ in range(length)])

    # -- bytes-level fast path ------------------------------------------------------

    def mutate_wire(self, code: CommandCode, identifier: int) -> L2capPacket | None:
        """Bytes-level twin of :meth:`mutate`, or None when ineligible.

        Instead of building a field object and encoding it, the frame is
        assembled by patching a per-code template: identifier byte and
        mutated core fields written straight into the wire image, garbage
        appended, and the packet object built around the finished bytes
        with its encode cache primed (:meth:`L2capPacket.from_wire_parts`).

        Structural safety gate: the fast path only covers the paper's
        default mutation plan (``MC`` only). The BFuzz-style ablation
        (``mutate_core_fields_only=False``) rewrites dependent length
        fields mid-draw and must keep taking the object path, as must
        codes without a spec. Byte and RNG-stream identity with
        :meth:`mutate` is pinned by the fast-path equivalence tests.
        """
        if not self.config.mutate_core_fields_only:
            return None
        template = self._templates.get(code, False)
        if template is False:
            template = self._build_template(code)
            self._templates[code] = template
        if template is None:
            return None
        rng = self.rng
        values = dict(template.defaults)
        frame = bytearray(template.base)
        frame[_IDENTIFIER_OFFSET] = identifier & 0xFF
        for name, offset, size, is_psm in template.mutations:
            if is_psm:
                value = random_abnormal_psm(rng)
            else:
                value = random_normal_cidp(rng, field_size=size)
            values[name] = value
            frame[offset] = value & 0xFF
            if size == 2:
                frame[offset + 1] = value >> 8
        if self.config.append_garbage:
            garbage = self._garbage_for_length(len(frame))
        else:
            garbage = b""
        return L2capPacket.from_wire_parts(
            code=code,
            identifier=identifier,
            field_values=values,
            tail=b"",
            garbage=garbage,
            wire=bytes(frame) + garbage,
            spec=template.spec,
        )

    def _build_template(self, code: CommandCode) -> _WireTemplate | None:
        """Encode the default frame once and map the mutated offsets."""
        spec = COMMAND_SPECS.get(code)
        if spec is None:
            return None
        base = L2capPacket(code, 0).encode()
        mutations = []
        offset = _FIELDS_OFFSET
        for field in spec.fields:
            if field.name == "psm":
                mutations.append((field.name, offset, field.size, True))
            elif field.name in CIDP_FIELD_NAMES:
                mutations.append((field.name, offset, field.size, False))
            offset += field.size
        return _WireTemplate(
            spec=spec,
            base=base,
            mutations=tuple(mutations),
            defaults=dict(spec.defaults),
        )

    def generate(
        self,
        commands: Iterable[CommandCode],
        take_identifier,
        per_command: int | None = None,
    ) -> Iterator[L2capPacket]:
        """Algorithm 1's double loop: *n* malformed packets per command.

        :param commands: the valid commands of the current job.
        :param take_identifier: callable yielding fresh packet IDs.
        :param per_command: overrides ``config.packets_per_command``.
        """
        count = per_command if per_command is not None else self.config.packets_per_command
        for code in sorted(commands):
            for _ in range(count):
                yield self.mutate(code, take_identifier())
