"""Phase 3 — core field mutating (paper §III.D, Algorithm 1).

Generates valid malformed packets: for each valid command of the current
job, build the command with its spec layout, then

* keep ``F`` fixed (the signaling Header CID, 0x0001),
* keep ``D`` consistent (lengths derived, code valid for the job,
  identifier freshly assigned),
* keep ``MA`` at defaults ("used without changes"),
* mutate ``MC``: PSM ← ``random(abnormal)`` from the Table IV abnormal
  ranges, CIDP ← ``random(normal)`` from 0x0040–0xFFFF ignoring the
  target's dynamic allocation,
* append a garbage tail that never pushes the frame past the signaling
  MTU.

The result is exactly the Fig. 7 transformation: a packet the target
parses (no "command not understood", no "invalid length", no "MTU
exceeded") whose port/channel plumbing is poisoned.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Iterator

from repro.core.config import FuzzConfig
from repro.l2cap.constants import CommandCode, MIN_SIGNALING_MTU
from repro.l2cap.fields import (
    CIDP_FIELD_NAMES,
    random_abnormal_psm,
    random_normal_cidp,
)
from repro.l2cap.packets import COMMAND_SPECS, L2capPacket


class CoreFieldMutator:
    """Algorithm 1 implementation.

    :param config: campaign configuration (garbage sizing, ``n``).
    :param rng: seeded random source (determinism for replay).
    :param signaling_mtu: the target's signaling MTU; garbage tails are
        clamped so ``wire length <= MTU`` always holds.
    :param dictionary: garbage tails harvested from a shared corpus
        (known-crashing reproducer tails); when non-empty, a quarter of
        the generated tails splice a dictionary token instead of fresh
        random bytes — cross-campaign seed sharing at the mutation
        level. Empty (the default) leaves the RNG stream untouched, so
        seeded campaigns without a corpus stay byte-identical.
    """

    #: Probability that a garbage tail is spliced from the dictionary.
    SPLICE_RATE = 0.25

    def __init__(
        self,
        config: FuzzConfig,
        rng: random.Random,
        signaling_mtu: int = MIN_SIGNALING_MTU,
        dictionary: Iterable[bytes] = (),
    ) -> None:
        self.config = config
        self.rng = rng
        self.signaling_mtu = signaling_mtu
        self.dictionary = tuple(tail for tail in dictionary if tail)

    def mutate(self, code: CommandCode, identifier: int) -> L2capPacket:
        """Build one malformed packet for *code* (Algorithm 1 lines 5-21).

        :param identifier: the packet ID to stamp (a ``D`` field, kept
            valid).
        """
        packet = L2capPacket(code, identifier)  # D defaults, F fixed, MA defaults
        spec = COMMAND_SPECS[code]
        for field in spec.fields:
            if field.name == "psm":
                packet.fields["psm"] = random_abnormal_psm(self.rng)
            elif field.name in CIDP_FIELD_NAMES:
                packet.fields[field.name] = random_normal_cidp(
                    self.rng, field_size=field.size
                )
        if not self.config.mutate_core_fields_only:
            # Ablation: BFuzz-style corruption of the dependent fields.
            if self.rng.random() < 0.5:
                packet.declared_data_len = self.rng.randrange(0, 4)
        if self.config.append_garbage:
            packet.garbage = self._garbage_tail(packet)
        return packet

    def _garbage_tail(self, packet: L2capPacket) -> bytes:
        """Draw a garbage tail that keeps the frame within the MTU."""
        headroom = self.signaling_mtu - packet.wire_length
        if headroom <= 0:
            return b""
        if self.dictionary and self.rng.random() < self.SPLICE_RATE:
            token = self.dictionary[self.rng.randrange(len(self.dictionary))]
            return token[: min(headroom, self.config.max_garbage)]
        length = self.rng.randint(1, min(self.config.max_garbage, headroom))
        return bytes(self.rng.getrandbits(8) for _ in range(length))

    def generate(
        self,
        commands: Iterable[CommandCode],
        take_identifier,
        per_command: int | None = None,
    ) -> Iterator[L2capPacket]:
        """Algorithm 1's double loop: *n* malformed packets per command.

        :param commands: the valid commands of the current job.
        :param take_identifier: callable yielding fresh packet IDs.
        :param per_command: overrides ``config.packets_per_command``.
        """
        count = per_command if per_command is not None else self.config.packets_per_command
        for code in sorted(commands):
            for _ in range(count):
                yield self.mutate(code, take_identifier())
