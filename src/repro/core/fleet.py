"""Fleet campaigns: many targets × strategies × protocols, one report.

The paper runs one fuzzer against one device at a time (Table VI is
eight separate sessions). Production fuzzing wants a *fleet*: every
testbed profile crossed with every exploration strategy and every
protocol fuzz target, campaigns dispatched onto a pool of workers, and
the results merged into one deduplicated picture of what the sweep
found and which states it reached — per protocol.

Determinism is the design anchor. Each campaign's seed is derived from
the fleet seed and the campaign's index with SHA-256, so

* the same fleet seed always produces the same per-campaign seeds
  (and therefore byte-identical merged reports), and
* campaigns never share a seed, no matter how large the fleet.

Campaigns are dispatched onto the persistent batched runtime of
:mod:`repro.core.runtime`: long-lived worker processes initialise the
campaign context once, consume shards of campaign coordinates, and
stream back compact binary summaries the merge works from directly
(full reports are only reconstructed when export asks). Because every
campaign owns its simulated clock, results are independent of worker
count, batch size and completion order. Custom profile or strategy
objects cannot ship to processes and fall back to a thread pool — which
on CPython's GIL only overlaps I/O — announced by a single warning at
construction. Scaling is *measured* in simulated wall-clock: each
campaign occupies one worker (one dongle, in the paper's setup) for its
simulated duration, and the fleet makespan is the greedy least-loaded
schedule of those durations over the pool.

Findings are deduplicated with the shared
:func:`~repro.core.detection.finding_key`, which carries the fuzz
target's name — so an RFCOMM crash and an L2CAP crash never collapse,
while the same protocol bug hit via two strategies or two devices of
one vendor does.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import json
import logging
import time
import warnings
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.core.config import FuzzConfig
from repro.core.faults import FaultPlan
from repro.core.report import CampaignReport, format_elapsed
from repro.core.runtime import (
    CampaignSummary,
    FindingSummary,
    FleetContext,
    FleetRuntime,
    SupervisionPolicy,
    SupervisionStats,
    iter_shard_specs,
    load_checkpoints,
)
from repro.core.strategies import ExplorationStrategy, make_strategy
from repro.l2cap.states import ChannelState
from repro.testbed.profiles import DeviceProfile
from repro.testbed.session import run_campaign

_log = logging.getLogger(__name__)

#: Per-run snapshot of the corpus-derived campaign inputs (visit prior,
#: splice dictionary), so a resumed run re-seeds campaigns identically
#: even after the corpus absorbed part of the interrupted run.
CONTEXT_SNAPSHOT_FILENAME = "fleet_context.json"


def derive_campaign_seed(fleet_seed: int, index: int) -> int:
    """Derive campaign *index*'s seed from the fleet seed.

    A 64-bit slice of ``SHA-256(fleet_seed ":" index)``: deterministic,
    well-mixed, and collision-free across any realistic fleet size.
    """
    digest = hashlib.sha256(f"{fleet_seed}:{index}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big")


def simulated_makespan(durations: Sequence[float], workers: int) -> float:
    """Makespan of a greedy least-loaded schedule over *workers* workers.

    Campaigns are assigned in order to the worker with the least
    accumulated simulated time — the dispatch order a work-stealing pool
    converges to when every campaign is known up front.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    loads = [0.0] * workers
    for duration in durations:
        loads[loads.index(min(loads))] += duration
    return max(loads) if loads else 0.0


@dataclasses.dataclass(frozen=True)
class CampaignSpec:
    """One cell of the fleet matrix.

    :param index: position in the fleet (drives seed derivation).
    :param device_id: testbed profile to fuzz.
    :param strategy: exploration strategy registry name.
    :param seed: the derived campaign seed.
    :param target: protocol fuzz-target registry name.
    """

    index: int
    device_id: str
    strategy: str
    seed: int
    target: str = "l2cap"


@dataclasses.dataclass(frozen=True)
class CampaignRun:
    """A spec together with the report its campaign produced."""

    spec: CampaignSpec
    report: CampaignReport


class SummaryRun:
    """A spec with its compact summary; the report materialises lazily.

    This is what the persistent runtime hands back: the fleet merge
    works straight off :attr:`summary` (plain tokens and counters), and
    the full :class:`~repro.core.report.CampaignReport` object graph is
    only rebuilt — once, cached — when something actually reads
    :attr:`report` (markdown/JSON export, the per-campaign tables).
    Quacks like :class:`CampaignRun` everywhere a report consumer looks.
    """

    __slots__ = ("spec", "summary", "_report")

    def __init__(self, spec: CampaignSpec, summary: CampaignSummary) -> None:
        self.spec = spec
        self.summary = summary
        self._report: CampaignReport | None = None

    @property
    def report(self) -> CampaignReport:
        report = self._report
        if report is None:
            report = self.summary.to_report()
            self._report = report
        return report


@dataclasses.dataclass(frozen=True)
class FleetFinding:
    """One deduplicated finding across the fleet.

    Findings are considered the same vulnerability when they share
    ``(target, vendor, vulnerability_class, trigger)`` — the same
    malformed packet knocking over the same protocol layer of the same
    vendor stack the same way, regardless of which device or strategy
    hit it first.

    :param occurrences: how many campaign findings collapsed into this.
    """

    target: str
    vendor: str
    vulnerability_class: str
    trigger: str
    device_id: str
    strategy: str
    state: str
    error_message: str
    sim_time: float
    occurrences: int


@dataclasses.dataclass(frozen=True)
class QuarantinedCampaign:
    """A campaign the supervised runtime isolated and gave up on.

    A diagnostic, not an abort: the rest of the fleet completed and
    merged normally; this row says which campaign was bisected out of
    its shard, confirmed poisonous by a solo re-run, and why.
    """

    index: int
    device_id: str
    strategy: str
    target: str
    seed: int
    attempts: int
    reason: str


@dataclasses.dataclass(frozen=True)
class FleetReport:
    """Merged result of one fleet run.

    :param fleet_seed: the seed every campaign seed derives from.
    :param workers: worker-pool size the fleet was scheduled onto.
    :param campaigns: every campaign run, in spec order.
    :param findings: deduplicated findings, in first-detection order.
    :param coverage_map: per-(target, state) campaign counts — how many
        campaigns demonstrably drove their device into each state of
        each protocol's model.
    :param state_spaces: per-target coverage denominators.
    :param simulated_makespan_seconds: fleet duration in simulated time
        under the greedy schedule over *workers* workers.
    :param quarantined: campaigns the supervisor quarantined instead of
        completing — empty on every healthy run, so its presence never
        perturbs report byte-identity.
    """

    fleet_seed: int
    workers: int
    campaigns: tuple[CampaignRun, ...]
    findings: tuple[FleetFinding, ...]
    coverage_map: tuple[tuple[str, str, int], ...]
    state_spaces: tuple[tuple[str, int], ...]
    simulated_makespan_seconds: float
    quarantined: tuple[QuarantinedCampaign, ...] = ()

    # -- derived ------------------------------------------------------------------

    @property
    def targets(self) -> tuple[str, ...]:
        """Every fuzz target the fleet ran, in coverage-map order."""
        seen: dict[str, None] = {}
        for target, _ in self.state_spaces:
            seen.setdefault(target, None)
        return tuple(seen)

    def coverage_by_target(self) -> dict[str, tuple[tuple[str, int], ...]]:
        """The merged coverage map, split per fuzz target."""
        grouped: dict[str, list[tuple[str, int]]] = {}
        for target, state, count in self.coverage_map:
            grouped.setdefault(target, []).append((state, count))
        return {target: tuple(rows) for target, rows in grouped.items()}

    @property
    def merged_states(self) -> tuple[str, ...]:
        """Every state some campaign covered, sorted by name."""
        return tuple(sorted({state for _, state, _ in self.coverage_map}))

    @property
    def merged_state_count(self) -> int:
        """Distinct (target, state) pairs covered by the fleet."""
        return len(self.coverage_map)

    @property
    def best_single_coverage(self) -> int:
        """Largest per-campaign distinct-state count in the fleet."""
        if not self.campaigns:
            return 0
        return max(len(run.report.covered_states) for run in self.campaigns)

    @property
    def total_packets(self) -> int:
        """Packets transmitted by the whole fleet."""
        return sum(run.report.packets_sent for run in self.campaigns)

    @property
    def campaigns_per_simulated_second(self) -> float:
        """Fleet throughput in campaigns per simulated second."""
        if self.simulated_makespan_seconds <= 0:
            return 0.0
        return len(self.campaigns) / self.simulated_makespan_seconds

    def strategy_table(self) -> list[dict]:
        """Per-strategy efficiency rows, in first-appearance order."""
        grouped: dict[str, list[CampaignRun]] = {}
        for run in self.campaigns:
            grouped.setdefault(run.spec.strategy, []).append(run)
        rows = []
        for name, runs in grouped.items():
            covered: set[tuple[str, str]] = set()
            for run in runs:
                covered.update(
                    (run.spec.target, state.value)
                    for state in run.report.covered_states
                )
            packets = sum(run.report.packets_sent for run in runs)
            elapsed = sum(run.report.elapsed_seconds for run in runs)
            findings = sum(len(run.report.findings) for run in runs)
            efficiency = sum(
                run.report.efficiency.mutation_efficiency for run in runs
            ) / len(runs)
            rows.append(
                {
                    "strategy": name,
                    "campaigns": len(runs),
                    "packets": packets,
                    "findings": findings,
                    "states_covered": len(covered),
                    "mean_mutation_efficiency": round(100.0 * efficiency, 2),
                    "simulated_seconds": round(elapsed, 2),
                }
            )
        return rows

    # -- rendering ----------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data rendering (stable field order, JSON-safe types)."""
        return {
            "fleet_seed": self.fleet_seed,
            "workers": self.workers,
            "campaign_count": len(self.campaigns),
            "total_packets": self.total_packets,
            "simulated_makespan_seconds": round(
                self.simulated_makespan_seconds, 6
            ),
            "campaigns_per_simulated_second": round(
                self.campaigns_per_simulated_second, 6
            ),
            "targets": list(self.targets),
            "merged_state_count": self.merged_state_count,
            "best_single_coverage": self.best_single_coverage,
            "coverage_map": [
                {"target": target, "state": state, "campaigns": count}
                for target, state, count in self.coverage_map
            ],
            "state_spaces": {target: space for target, space in self.state_spaces},
            "findings": [dataclasses.asdict(finding) for finding in self.findings],
            "quarantined": [
                dataclasses.asdict(campaign) for campaign in self.quarantined
            ],
            "strategy_table": self.strategy_table(),
            "campaigns": [_campaign_dict(run) for run in self.campaigns],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Deterministic JSON rendering (safe to diff byte-for-byte)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_markdown(self) -> str:
        """Human-readable fleet summary."""
        spaces = dict(self.state_spaces)
        coverage = self.coverage_by_target()
        lines = [
            f"# Fleet report (seed {self.fleet_seed}, {self.workers} worker(s))",
            "",
            f"- campaigns: {len(self.campaigns)}",
            f"- packets sent: {self.total_packets}",
            f"- simulated makespan: "
            f"{format_elapsed(self.simulated_makespan_seconds)}"
            f" ({self.campaigns_per_simulated_second:.4f} campaigns/s simulated)",
            "- merged state coverage: "
            + ", ".join(
                f"{target} {len(coverage.get(target, ()))}/{spaces[target]}"
                for target in self.targets
            )
            + f" (best single campaign: {self.best_single_coverage})",
            "",
            "## Campaigns",
            "",
            "| # | device | protocol | strategy | packets | states |"
            " findings | elapsed |",
            "|---|--------|----------|----------|---------|--------|"
            "----------|---------|",
        ]
        for run in self.campaigns:
            report = run.report
            lines.append(
                f"| {run.spec.index} | {report.target_name} |"
                f" {run.spec.target} |"
                f" {run.spec.strategy} | {report.packets_sent} |"
                f" {len(report.covered_states)} | {len(report.findings)} |"
                f" {format_elapsed(report.elapsed_seconds)} |"
            )
        for target in self.targets:
            lines += [
                "",
                f"## Merged coverage map — {target}"
                f" ({len(coverage.get(target, ()))}/{spaces[target]})",
                "",
                "| state | campaigns covering |",
                "|-------|--------------------|",
            ]
            for state, count in coverage.get(target, ()):
                lines.append(f"| {state} | {count} |")
        lines += [
            "",
            "## Findings (deduplicated)",
            "",
        ]
        if not self.findings:
            lines.append("No vulnerability detected across the fleet.")
        else:
            lines += [
                "| protocol | vendor | class | state | first seen | hits |"
                " trigger |",
                "|----------|--------|-------|-------|------------|------|"
                "---------|",
            ]
            for finding in self.findings:
                lines.append(
                    f"| {finding.target} |"
                    f" {finding.vendor} | {finding.vulnerability_class} |"
                    f" {finding.state} |"
                    f" {finding.device_id}/{finding.strategy} |"
                    f" {finding.occurrences} | {finding.trigger} |"
                )
        if self.quarantined:
            lines += [
                "",
                "## Quarantined campaigns",
                "",
                "| # | device | protocol | strategy | attempts | reason |",
                "|---|--------|----------|----------|----------|--------|",
            ]
            for campaign in self.quarantined:
                lines.append(
                    f"| {campaign.index} | {campaign.device_id} |"
                    f" {campaign.target} | {campaign.strategy} |"
                    f" {campaign.attempts} | {campaign.reason} |"
                )
        lines += [
            "",
            "## Per-strategy efficiency",
            "",
            "| strategy | campaigns | packets | findings | states |"
            " mean eff % | sim s |",
            "|----------|-----------|---------|----------|--------|"
            "------------|-------|",
        ]
        for row in self.strategy_table():
            lines.append(
                f"| {row['strategy']} | {row['campaigns']} | {row['packets']} |"
                f" {row['findings']} | {row['states_covered']} |"
                f" {row['mean_mutation_efficiency']} |"
                f" {row['simulated_seconds']} |"
            )
        return "\n".join(lines)


def _campaign_dict(run: CampaignRun) -> dict:
    report = run.report
    return {
        "index": run.spec.index,
        "device_id": run.spec.device_id,
        "strategy": run.spec.strategy,
        "target": run.spec.target,
        "seed": run.spec.seed,
        "target_name": report.target_name,
        "packets_sent": report.packets_sent,
        "sweeps_completed": report.sweeps_completed,
        "elapsed_seconds": round(report.elapsed_seconds, 6),
        "covered_states": sorted(state.value for state in report.covered_states),
        "state_visits": [list(pair) for pair in report.state_visits],
        "transition_visits": [list(triple) for triple in report.transition_visits],
        "findings": [
            {
                "class": finding.vulnerability_class.value,
                "error": finding.error_message,
                "state": finding.state,
                "trigger": finding.trigger,
                "sim_time": round(finding.sim_time, 6),
            }
            for finding in report.findings
        ],
        "mutation_efficiency": round(
            100.0 * report.efficiency.mutation_efficiency, 4
        ),
    }


def _merge_facts(
    run,
) -> tuple[tuple[str, ...], int, float, tuple[FindingSummary, ...]]:
    """Merge-relevant slice of one run, without materialising reports.

    A :class:`SummaryRun` serves everything straight from its summary;
    a plain :class:`CampaignRun` derives the same plain-data view from
    its report, so both kinds merge through one code path.
    """
    summary = getattr(run, "summary", None)
    if summary is not None:
        return (
            summary.covered_states,
            summary.state_space,
            summary.elapsed_seconds,
            summary.findings,
        )
    report = run.report
    return (
        tuple(sorted(state.value for state in report.covered_states)),
        report.state_space,
        report.elapsed_seconds,
        tuple(
            FindingSummary.from_finding(finding) for finding in report.findings
        ),
    )


def merge_reports(
    runs: Sequence[CampaignRun],
    profiles_by_id: dict[str, DeviceProfile],
    fleet_seed: int,
    workers: int,
    *,
    quarantined: Sequence[QuarantinedCampaign] = (),
) -> FleetReport:
    """Merge campaign runs into one :class:`FleetReport`.

    Findings are deduplicated by the shared ``finding_key`` —
    ``(target, vendor, vulnerability_class, trigger)`` — keeping the
    first detection and counting the rest. Coverage is merged per
    (target, state) pair so protocols never pollute each other's maps.

    Accepts :class:`CampaignRun` and :class:`SummaryRun` alike; runs
    carrying summaries merge without reconstructing a single report.
    """
    coverage_counts: dict[tuple[str, str], int] = {}
    state_spaces: dict[str, int] = {}
    durations: list[float] = []
    # Insertion order = first-detection order (dicts preserve it).
    deduped: dict[tuple[str, str, str, str], FleetFinding] = {}
    for run in runs:
        covered, state_space, elapsed, findings = _merge_facts(run)
        target = run.spec.target
        state_spaces.setdefault(target, state_space)
        durations.append(elapsed)
        for token in covered:
            key = (target, token)
            coverage_counts[key] = coverage_counts.get(key, 0) + 1
        vendor = profiles_by_id[run.spec.device_id].vendor
        for finding in findings:
            # The shared finding_key, spelled on plain data: the class
            # value string is what finding_key normalises enums to.
            key = (
                finding.target,
                vendor,
                finding.vulnerability_class,
                finding.trigger,
            )
            seen = deduped.get(key)
            if seen is None:
                deduped[key] = FleetFinding(
                    target=finding.target,
                    vendor=vendor,
                    vulnerability_class=finding.vulnerability_class,
                    trigger=finding.trigger,
                    device_id=run.spec.device_id,
                    strategy=run.spec.strategy,
                    state=finding.state,
                    error_message=finding.error_message,
                    sim_time=finding.sim_time,
                    occurrences=1,
                )
            else:
                deduped[key] = dataclasses.replace(
                    seen, occurrences=seen.occurrences + 1
                )

    return FleetReport(
        fleet_seed=fleet_seed,
        workers=workers,
        campaigns=tuple(runs),
        findings=tuple(deduped.values()),
        coverage_map=tuple(
            (target, state, count)
            for (target, state), count in sorted(coverage_counts.items())
        ),
        state_spaces=tuple(sorted(state_spaces.items())),
        simulated_makespan_seconds=simulated_makespan(durations, workers),
        quarantined=tuple(quarantined),
    )


class FleetOrchestrator:
    """Runs the profile × strategy × target matrix and merges the results.

    :param profiles: testbed profiles to fuzz.
    :param strategies: strategy registry names (or instances), applied
        to every profile.
    :param fleet_seed: master seed; per-campaign seeds derive from it.
    :param workers: worker-pool size for dispatch and for the simulated
        schedule.
    :param base_config: campaign config template; each campaign gets a
        copy with its derived seed.
    :param armed: False disarms the injected bugs fleet-wide.
    :param target_state: focus state handed to the ``targeted`` strategy.
    :param corpus_dir: shared corpus directory. When set, every campaign
        writes its coverage-unlock sequences and minimised findings back
        (idempotent, parallel-safe), the ``coverage_guided`` strategy is
        seeded with the corpus's per-state visit prior, and the mutator
        splices garbage tails harvested from stored reproducers.
    :param retain_trace: keep each campaign's full packet trace. None
        (the default) auto-selects: fleet workers stream — bounded
        memory per campaign — unless a corpus write-back needs the
        trace. The merged report's metrics are identical either way.
    :param targets: protocol fuzz-target registry names, applied to
        every profile × strategy cell — one ``repro fleet`` run can
        sweep strategies × protocols.
    :param batch: campaigns per worker shard (the persistent runtime's
        message granularity). None auto-sizes (~4 shards per worker).
    :param telemetry_dir: telemetry root directory. When set, the fleet
        records a run under ``<telemetry_dir>/<run_id>/`` — structured
        event journal (per-worker segments merged at run boundaries),
        metrics registry with JSON + Prometheus exposition, and a run
        manifest ``repro runs`` can list/tail. None (the default) runs
        without any telemetry — observation is strictly opt-in and
        never perturbs execution.
    :param profile_workers: dump a cProfile per worker shard under the
        run's ``profiles/`` directory (requires *telemetry_dir*).
    :param fault_plan: deterministic fault injection
        (:class:`~repro.core.faults.FaultPlan`) shipped to the workers —
        chaos runs and recovery tests only; requires a process-safe
        fleet.
    :param resume_run_id: resume an interrupted telemetry run: its
        shard checkpoints are loaded, only the missing campaigns are
        dispatched, and the merged report is byte-identical to the
        uninterrupted run (requires *telemetry_dir*; the fleet must
        match the original run's recorded signature).
    :param supervision: :class:`~repro.core.runtime.SupervisionPolicy`
        override for the runtime's retry/timeout/backoff knobs; None
        takes the defaults.
    :param runtime: attach to an externally owned, already-warm
        :class:`~repro.core.runtime.FleetRuntime` instead of building a
        private one — the control plane's path, where one shared pool
        serves every job. The fleet's context ships with each dispatch
        call (so the pool's initialised context is irrelevant), the
        orchestrator never closes the runtime, and its supervision
        policy governs (*supervision* here is ignored). Requires a
        process-safe fleet whose *workers* matches the runtime's pool
        size (``workers`` is recorded in the merged report, so a job
        must be attributed to the pool that actually ran it).
    :param abort_check: polled between dispatch steps; when it returns
        True the run raises
        :class:`~repro.core.runtime.AbortRequested` after recording the
        failure on the manifest — completed shards keep their
        checkpoints, so the aborted run is resumable.
    """

    def __init__(
        self,
        profiles: Sequence[DeviceProfile],
        strategies: Sequence[str | ExplorationStrategy],
        fleet_seed: int = 7,
        workers: int = 1,
        base_config: FuzzConfig | None = None,
        armed: bool = True,
        target_state: ChannelState = ChannelState.OPEN,
        corpus_dir: str | None = None,
        retain_trace: bool | None = None,
        targets: Sequence[str] = ("l2cap",),
        batch: int | None = None,
        telemetry_dir: str | None = None,
        profile_workers: bool = False,
        fault_plan: FaultPlan | None = None,
        resume_run_id: str | None = None,
        supervision: SupervisionPolicy | None = None,
        runtime: FleetRuntime | None = None,
        abort_check: Callable[[], bool] | None = None,
    ) -> None:
        from repro.targets import make_target

        if not profiles:
            raise ValueError("fleet needs at least one profile")
        if not strategies:
            raise ValueError("fleet needs at least one strategy")
        if not targets:
            raise ValueError("fleet needs at least one fuzz target")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if profile_workers and telemetry_dir is None:
            raise ValueError(
                "profile_workers dumps land in the telemetry run directory; "
                "set telemetry_dir too"
            )
        for name in targets:
            make_target(name)  # fail fast on unknown targets
        self.profiles = tuple(profiles)
        self.strategies = tuple(strategies)
        self.targets = tuple(targets)
        self.fleet_seed = fleet_seed
        self.workers = workers
        self.base_config = (
            base_config if base_config is not None else FuzzConfig()
        )
        self.armed = armed
        self.target_state = target_state
        self.corpus_dir = corpus_dir
        self.retain_trace = (
            retain_trace if retain_trace is not None else corpus_dir is not None
        )
        if corpus_dir is not None and not self.retain_trace:
            raise ValueError(
                "corpus write-back replays campaign traces; use "
                "retain_trace=True (or drop corpus_dir)"
            )
        self.batch = batch
        self.telemetry_dir = telemetry_dir
        self.profile_workers = profile_workers
        self.fault_plan = fault_plan
        self.resume_run_id = resume_run_id
        self.supervision = supervision
        #: Supervision stats from the most recent :meth:`run` (None
        #: before any run, and on the thread-fallback path).
        self.last_supervision: SupervisionStats | None = None
        self._profiles_by_id = {
            profile.device_id: profile for profile in self.profiles
        }
        # Picklability is a static property of the inputs: decide once,
        # here, instead of re-deriving (or discovering via pickling
        # errors) on every run. A fleet that cannot ship to worker
        # processes silently loses real parallelism, so say so — once.
        self._process_safe = self._compute_process_safe()
        if self.workers > 1 and not self._process_safe:
            warnings.warn(
                "fleet inputs are not process-pool safe (custom profile "
                "or strategy objects); campaigns will run on a thread "
                "pool, which only overlaps I/O. Use registry profile and "
                "strategy names for real CPU parallelism.",
                RuntimeWarning,
                stacklevel=2,
            )
        if fault_plan is not None and not self._process_safe:
            raise ValueError(
                "fault injection hooks live in the shard workers; use "
                "registry profiles and strategy names (a process-safe "
                "fleet) with fault_plan"
            )
        if resume_run_id is not None:
            if telemetry_dir is None:
                raise ValueError(
                    "resume_run_id needs telemetry_dir — shard "
                    "checkpoints live in the telemetry run directory"
                )
            if not self._process_safe:
                raise ValueError(
                    "resume requires a process-safe fleet (registry "
                    "profiles and strategy names): only shard workers "
                    "write checkpoints"
                )
        self._external_runtime = runtime
        self.abort_check = abort_check
        if runtime is not None:
            if not self._process_safe:
                raise ValueError(
                    "an external runtime ships the fleet context with "
                    "every shard; use registry profiles and strategy "
                    "names (a process-safe fleet)"
                )
            if runtime.workers != workers:
                raise ValueError(
                    f"external runtime has {runtime.workers} worker(s) "
                    f"but the fleet declares {workers}; the report "
                    "records the pool that actually ran it"
                )
        self._signature = self._fleet_signature()
        if resume_run_id is not None:
            self._validate_resume()
        if telemetry_dir is not None:
            from repro.telemetry import RunRecorder

            self._recorder = RunRecorder(
                telemetry_dir,
                workers=workers,
                run_id=resume_run_id,
                fleet_signature=self._signature,
                resumed=resume_run_id is not None,
            )
        else:
            self._recorder = None
        self._prior_visits, self._dictionary = load_corpus_seeds(corpus_dir)
        self._sync_context_snapshot()
        self._runtime: FleetRuntime | None = None
        self._keep_runtime = False

    # -- runtime lifecycle ----------------------------------------------------------

    @property
    def runtime(self) -> FleetRuntime:
        """The persistent execution runtime (created on first use).

        Persistence follows usage: inside a ``with`` block (or after
        any explicit :attr:`runtime` access), repeated :meth:`run`
        calls reuse the same initialised worker processes instead of
        rebuilding a pool (and re-shipping the campaign context) per
        run, until :meth:`close`. A bare ``orchestrator.run()`` still
        cleans its pool up before returning, like the original per-run
        executors did — no leaked worker processes for one-shot
        callers.
        """
        self._keep_runtime = True
        return self._ensure_runtime()

    @property
    def run_id(self) -> str | None:
        """The telemetry run identifier (None without telemetry)."""
        return self._recorder.run_id if self._recorder is not None else None

    @property
    def run_dir(self):
        """The telemetry run directory (None without telemetry)."""
        return self._recorder.run_dir if self._recorder is not None else None

    def _build_context(self) -> FleetContext:
        """The worker-side campaign context this fleet runs under."""
        recorder = self._recorder
        return FleetContext(
            base_config=self.base_config,
            armed=self.armed,
            target_state_value=self.target_state.value,
            corpus_dir=self.corpus_dir,
            retain_trace=self.retain_trace,
            prior_visits=tuple(sorted(self._prior_visits.items())),
            dictionary=self._dictionary,
            telemetry_dir=(
                str(recorder.root) if recorder is not None else None
            ),
            run_id=recorder.run_id if recorder is not None else None,
            profile_workers=self.profile_workers,
            fault_plan=self.fault_plan,
        )

    def _ensure_runtime(self) -> FleetRuntime:
        if self._external_runtime is not None:
            return self._external_runtime
        if self._runtime is None:
            recorder = self._recorder
            self._runtime = FleetRuntime(
                context=self._build_context(),
                workers=self.workers,
                use_processes=self.workers > 1,
                policy=self.supervision,
                on_event=recorder.emit if recorder is not None else None,
            )
        return self._runtime

    def close(self) -> None:
        """Shut the persistent runtime down (idempotent).

        Also finishes the telemetry run: leftover journal segments are
        merged and the manifest flips to ``finished``. (A recorder that
        never reaches here — killed process, leaked orchestrator —
        still flushes via its interpreter-exit finalizer, leaving an
        ``aborted`` manifest and a readable partial journal.)
        """
        if self._runtime is not None:
            self._runtime.close()
            self._runtime = None
        if self._recorder is not None:
            self._recorder.close()

    def __enter__(self) -> "FleetOrchestrator":
        self._keep_runtime = True
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def specs(self) -> tuple[CampaignSpec, ...]:
        """The fleet matrix in dispatch order (profile-major)."""
        return tuple(spec for spec, _ in self._matrix())

    def run(self) -> FleetReport:
        """Run every campaign and merge the results.

        Results are ordered by spec index, so the merged report does not
        depend on completion order (or on :attr:`workers` or
        :attr:`batch` at all).

        Process-safe fleets (registry profiles, strategy names) execute
        on the persistent batched runtime and merge from compact
        summaries; fleets built from in-process objects fall back to a
        thread pool over full campaign objects (announced once, at
        construction).
        """
        matrix = self._matrix()
        recorder = self._recorder
        wall_started = time.perf_counter()
        if recorder is not None:
            recorder.run_started(
                [spec for spec, _ in matrix], self.workers, self.batch
            )
        _log.debug(
            "fleet run: %d campaign(s) over %d worker(s)%s",
            len(matrix),
            self.workers,
            f" [telemetry run {self.run_id}]" if recorder is not None else "",
        )
        quarantined: list[QuarantinedCampaign] = []
        try:
            if self._process_safe:
                specs = [spec for spec, _ in matrix]
                by_index: dict[int, CampaignSummary] = (
                    self._load_resume_checkpoints(specs)
                    if self.resume_run_id is not None
                    else {}
                )
                missing = [
                    spec for spec in specs if spec.index not in by_index
                ]
                runtime = self._ensure_runtime()
                dispatch_kwargs: dict = {}
                if self.abort_check is not None:
                    dispatch_kwargs["should_abort"] = self.abort_check
                if self._external_runtime is not None:
                    # A shared pool was initialised with someone else's
                    # context: ship this fleet's own with every shard,
                    # and route supervision events to this run's
                    # journal for the duration of the call.
                    dispatch_kwargs["context"] = self._build_context()
                    if recorder is not None:
                        dispatch_kwargs["on_event"] = recorder.emit
                try:
                    summaries = runtime.run_specs(
                        iter_shard_specs(missing),
                        batch=self.batch,
                        **dispatch_kwargs,
                    )
                finally:
                    self.last_supervision = runtime.last_supervision
                    if not self._keep_runtime and self._runtime is not None:
                        self._runtime.close()
                        self._runtime = None
                for spec, summary in zip(missing, summaries):
                    if summary is not None:
                        by_index[spec.index] = summary
                if self.last_supervision is not None:
                    for item in self.last_supervision.quarantined:
                        index, device_id, strategy, seed, target = item.spec
                        quarantined.append(
                            QuarantinedCampaign(
                                index=index,
                                device_id=device_id,
                                strategy=strategy,
                                target=target,
                                seed=seed,
                                attempts=item.attempts,
                                reason=item.reason,
                            )
                        )
                runs: list = [
                    SummaryRun(spec, by_index[spec.index])
                    for spec in specs
                    if spec.index in by_index
                ]
            elif self.workers == 1:
                self.last_supervision = None
                runs = [
                    self._run_spec(spec, strategy_input)
                    for spec, strategy_input in matrix
                ]
            else:
                self.last_supervision = None
                with ThreadPoolExecutor(max_workers=self.workers) as pool:
                    runs = [
                        run
                        for run in pool.map(
                            lambda job: self._run_spec(*job), matrix
                        )
                    ]
            report = merge_reports(
                runs,
                self._profiles_by_id,
                self.fleet_seed,
                self.workers,
                quarantined=tuple(quarantined),
            )
        except BaseException as error:
            # Abort path (includes KeyboardInterrupt — a killed run must
            # leave a resumable trail): record why, keep the completed
            # shards' checkpoints on disk, re-raise.
            if recorder is not None:
                recorder.record_failure(f"{type(error).__name__}: {error}")
            raise
        if recorder is not None:
            recorder.record_run(
                runs,
                report,
                wall_seconds=time.perf_counter() - wall_started,
                profiles_by_id=self._profiles_by_id,
                emit_campaign_events=not self._process_safe,
                supervision=self.last_supervision,
            )
            if not self._keep_runtime:
                recorder.close()
        return report

    def _matrix(self) -> tuple[tuple[CampaignSpec, str | ExplorationStrategy], ...]:
        """Each spec paired with the strategy input that produced it."""
        matrix = []
        index = 0
        for profile in self.profiles:
            for strategy in self.strategies:
                name = strategy if isinstance(strategy, str) else strategy.name
                for target in self.targets:
                    spec = CampaignSpec(
                        index=index,
                        device_id=profile.device_id,
                        strategy=name,
                        seed=derive_campaign_seed(self.fleet_seed, index),
                        target=target,
                    )
                    matrix.append((spec, strategy))
                    index += 1
        return tuple(matrix)

    def _compute_process_safe(self) -> bool:
        """Whether the fleet can ship to worker processes.

        A child process rebuilds each campaign from the testbed and
        target registries, so every profile must be a registry profile
        and every strategy a registry name (targets are always names).
        Decided once at construction; see the warning emitted there.
        """
        from repro.testbed.profiles import PROFILES_BY_ID

        return all(
            PROFILES_BY_ID.get(profile.device_id) is profile
            for profile in self.profiles
        ) and all(isinstance(strategy, str) for strategy in self.strategies)

    # -- resume ---------------------------------------------------------------------

    def _fleet_signature(self) -> str:
        """Digest of everything that shapes campaign *results*.

        Two fleets with the same signature produce the same summaries
        campaign for campaign, so their checkpoints are exchangeable.
        Workers, batch size and telemetry settings are deliberately
        excluded — they cannot change results (pinned by the
        worker-independence tests), and a resume may legitimately use a
        different pool size than the interrupted run.
        """
        payload = json.dumps(
            {
                "fleet_seed": self.fleet_seed,
                "armed": self.armed,
                "config": repr(self.base_config),
                "target_state": self.target_state.value,
                "retain_trace": self.retain_trace,
                "specs": [list(spec) for spec in iter_shard_specs(self.specs())],
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _validate_resume(self) -> None:
        """Refuse to merge checkpoints from a different fleet."""
        from repro.telemetry import read_manifest

        run_dir = Path(self.telemetry_dir) / self.resume_run_id
        manifest = read_manifest(run_dir)
        if manifest is None:
            raise ValueError(
                f"no resumable run at {run_dir} "
                "(missing or unreadable run.json)"
            )
        recorded = manifest.get("fleet_signature")
        if recorded is not None and recorded != self._signature:
            raise ValueError(
                f"fleet does not match run {self.resume_run_id} "
                "(different seed, matrix, or config); refusing to merge "
                "its checkpoints into a different fleet"
            )

    def _sync_context_snapshot(self) -> None:
        """Pin corpus-derived campaign inputs across resume boundaries.

        The visit prior and splice dictionary are read from the live
        corpus at construction — but a corpus that partially absorbed
        the interrupted run's write-back would seed resumed campaigns
        differently and break resume's byte-identity. The first run
        snapshots exactly what it used into the run directory; a resume
        loads the snapshot instead of re-reading the corpus.
        """
        if self._recorder is None:
            return
        path = self._recorder.run_dir / CONTEXT_SNAPSHOT_FILENAME
        if self.resume_run_id is not None and path.exists():
            data = json.loads(path.read_text(encoding="utf-8"))
            self._prior_visits = {
                token: count for token, count in data["prior_visits"]
            }
            self._dictionary = tuple(
                bytes.fromhex(chunk) for chunk in data["dictionary"]
            )
            return
        path.write_text(
            json.dumps(
                {
                    "prior_visits": sorted(self._prior_visits.items()),
                    "dictionary": [
                        chunk.hex() for chunk in self._dictionary
                    ],
                }
            )
            + "\n",
            encoding="utf-8",
        )

    def _load_resume_checkpoints(self, specs) -> dict[int, CampaignSummary]:
        """Checkpointed summaries of the interrupted run, by spec index.

        Only indices that exist in this fleet's matrix count (the
        signature already guarantees the matrices match; this guards
        against stray files); undecodable checkpoints were already
        skipped by the tolerant loader and simply re-run.
        """
        valid = {spec.index for spec in specs}
        restored = {
            index: summary
            for index, summary in load_checkpoints(
                Path(self.telemetry_dir) / self.resume_run_id
            ).items()
            if index in valid
        }
        _log.info(
            "resume %s: %d of %d campaign(s) restored from checkpoints",
            self.resume_run_id,
            len(restored),
            len(specs),
        )
        return restored

    def _run_spec(
        self, spec: CampaignSpec, strategy_input: str | ExplorationStrategy
    ) -> CampaignRun:
        if isinstance(strategy_input, str):
            strategy = make_strategy(
                strategy_input,
                target=self.target_state,
                prior_visits=self._prior_visits or None,
            )
        else:
            # Object strategies dispatch onto the thread pool, where one
            # shared instance would leak per-campaign scheduling state
            # (e.g. EnergyScheduler's live visit view) across concurrent
            # campaigns; give every campaign its own copy.
            strategy = copy.copy(strategy_input)
        report = run_campaign(
            self._profiles_by_id[spec.device_id],
            config=dataclasses.replace(self.base_config, seed=spec.seed),
            armed=self.armed,
            strategy=strategy,
            corpus_dir=self.corpus_dir,
            dictionary=self._dictionary,
            retain_trace=self.retain_trace,
            target=spec.target,
        )
        return CampaignRun(spec=spec, report=report)


def load_corpus_seeds(
    corpus_dir: str | None,
) -> tuple[dict[str, int], tuple[bytes, ...]]:
    """Visit prior + splice dictionary from an existing shared corpus.

    Both come back empty for a cold corpus (or none at all), which
    leaves every campaign exactly as seeded: the corpus only *adds*
    guidance once previous runs have fed it.
    """
    if corpus_dir is None:
        return {}, ()
    from repro.corpus.backend import open_backend

    # One backend handle (autodetected from the directory layout: JSON
    # files or SQLite) serves both reads. A cold, partial
    # (findings-only) or pruned corpus degrades gracefully to an empty
    # prior/dictionary instead of being skipped wholesale.
    backend = open_backend(corpus_dir)
    return (backend.state_frequencies(), backend.garbage_dictionary())


