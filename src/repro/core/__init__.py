"""The paper's contribution: the L2Fuzz stateful fuzzer."""

from repro.core.config import FuzzConfig
from repro.core.detection import Finding, VulnerabilityClass, VulnerabilityDetector
from repro.core.fuzz_log import FuzzLog, LogEntry, LogLevel
from repro.core.fuzzer import L2Fuzz
from repro.core.mutation import CoreFieldMutator
from repro.core.packet_queue import PacketQueue
from repro.core.report import CampaignReport, format_elapsed
from repro.core.state_guiding import STATE_PLAN, ChannelContext, GuidedState, StateGuide
from repro.core.target_scanning import PortProbe, ScanResult, TargetScanner
from repro.core.triage import ReplayOutcome, minimize_trigger, replay, sent_packets

__all__ = [
    "CampaignReport",
    "ChannelContext",
    "CoreFieldMutator",
    "Finding",
    "FuzzConfig",
    "FuzzLog",
    "GuidedState",
    "L2Fuzz",
    "LogEntry",
    "LogLevel",
    "PacketQueue",
    "PortProbe",
    "ReplayOutcome",
    "STATE_PLAN",
    "ScanResult",
    "StateGuide",
    "TargetScanner",
    "VulnerabilityClass",
    "VulnerabilityDetector",
    "format_elapsed",
    "minimize_trigger",
    "replay",
    "sent_packets",
]
