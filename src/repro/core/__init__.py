"""The paper's contribution: the L2Fuzz stateful fuzzer."""

from repro.core.config import FuzzConfig
from repro.core.detection import Finding, VulnerabilityClass, VulnerabilityDetector
from repro.core.fleet import (
    CampaignRun,
    CampaignSpec,
    FleetFinding,
    FleetOrchestrator,
    FleetReport,
    SummaryRun,
    derive_campaign_seed,
    merge_reports,
)
from repro.core.fuzz_log import FuzzLog, LogEntry, LogLevel
from repro.core.fuzzer import L2Fuzz
from repro.core.mutation import CoreFieldMutator
from repro.core.packet_queue import PacketQueue
from repro.core.report import CampaignReport, format_elapsed
from repro.core.state_guiding import STATE_PLAN, ChannelContext, GuidedState, StateGuide
from repro.core.strategies import (
    STRATEGY_NAMES,
    BreadthFirstStrategy,
    DepthFirstStrategy,
    ExplorationStrategy,
    SequentialStrategy,
    TargetedStrategy,
    make_strategy,
)
from repro.core.target_scanning import PortProbe, ScanResult, TargetScanner
from repro.core.triage import ReplayOutcome, minimize_trigger, replay, sent_packets

__all__ = [
    "BreadthFirstStrategy",
    "CampaignReport",
    "CampaignRun",
    "CampaignSpec",
    "ChannelContext",
    "CoreFieldMutator",
    "DepthFirstStrategy",
    "ExplorationStrategy",
    "Finding",
    "FleetFinding",
    "FleetOrchestrator",
    "FleetReport",
    "FuzzConfig",
    "FuzzLog",
    "GuidedState",
    "L2Fuzz",
    "LogEntry",
    "LogLevel",
    "PacketQueue",
    "PortProbe",
    "ReplayOutcome",
    "STATE_PLAN",
    "STRATEGY_NAMES",
    "ScanResult",
    "SequentialStrategy",
    "StateGuide",
    "SummaryRun",
    "TargetScanner",
    "TargetedStrategy",
    "VulnerabilityClass",
    "VulnerabilityDetector",
    "derive_campaign_seed",
    "format_elapsed",
    "make_strategy",
    "merge_reports",
    "minimize_trigger",
    "replay",
    "sent_packets",
]
