"""The packet queue between the fuzzer and the target (paper Fig. 5).

Both normal packets (state transition) and malformed packets (fuzz tests)
flow through :class:`PacketQueue`, which frames them as HCI ACL packets,
pushes them down the virtual link, parses the target's responses, and
feeds everything to the sniffer so the evaluation metrics can be computed
from the same trace a Wireshark capture would give.
"""

from __future__ import annotations

import struct

from repro.analysis.sniffer import PacketSniffer
from repro.errors import PacketDecodeError, PacketEncodeError
from repro.hci.fragmentation import Reassembler, fragment
from repro.hci.packets import (
    HCI_ACL_DATA_PKT,
    MAX_CONNECTION_HANDLE,
    PB_FIRST_FLUSHABLE,
    AclPacket,
)
from repro.hci.transport import VirtualLink
from repro.l2cap.packets import L2capPacket

#: Single-field length pack for the per-send ACL header fast path.
_PACK_U16 = struct.Struct("<H").pack


class PacketQueue:
    """Tx/Rx pump with trace capture.

    :param link: the virtual link to the target.
    :param sniffer: trace collector (a fresh one is created if omitted).
    :param handle: ACL connection handle used for all frames.
    :param acl_mtu: controller buffer size; L2CAP frames larger than this
        are fragmented into continuation ACL packets (0 = no
        fragmentation, the default fast path).
    """

    def __init__(
        self,
        link: VirtualLink,
        sniffer: PacketSniffer | None = None,
        handle: int = 0x000B,
        acl_mtu: int = 0,
    ) -> None:
        self.link = link
        self.sniffer = sniffer if sniffer is not None else PacketSniffer()
        self.handle = handle
        self.acl_mtu = acl_mtu
        #: The campaign's simulated clock (the link's; cached here because
        #: the send/drain path reads it per packet).
        self.clock = link.clock
        self._next_identifier = 0
        self._reassembler = Reassembler()
        # Per-send ACL framing without the encode_acl call: the handle
        # and flags never change, so the first three header bytes are a
        # constant prefix (byte-identical to encode_acl's output, which
        # the packet-queue tests pin). Validate the handle once here —
        # encode_acl used to reject it on the first send.
        if not 0 <= handle <= MAX_CONNECTION_HANDLE:
            raise PacketEncodeError(
                f"connection handle {handle:#x} out of range"
            )
        self._acl_prefix = struct.pack(
            "<BH",
            HCI_ACL_DATA_PKT,
            handle | (PB_FIRST_FLUSHABLE << 12),
        )

    def take_identifier(self) -> int:
        """Allocate the next request identifier (1..255, wrapping)."""
        self._next_identifier = self._next_identifier % 0xFF + 1
        return self._next_identifier

    def send(self, packet: L2capPacket) -> None:
        """Transmit one L2CAP packet.

        The packet is recorded in the trace *before* transmission so a
        send that kills the target still counts as transmitted. The
        single :meth:`~repro.l2cap.packets.L2capPacket.encode` here is
        the only serialisation of the packet on the whole wire path —
        the sniffer works from the cached bytes and the virtual device
        receives the decoded object when it round-trips cleanly.

        :raises TransportError: when the link is (or goes) down.
        """
        self.sniffer.observe_sent(packet, self.clock.now)
        payload = packet.encode()
        if self.acl_mtu and len(payload) > self.acl_mtu:
            for fragment_pkt in fragment(payload, self.handle, self.acl_mtu):
                self.link.send_frame(fragment_pkt.encode())
            return
        self.link.send_frame(
            self._acl_prefix + _PACK_U16(len(payload)) + payload,
            l2cap=packet.loopback_view(),
        )

    def drain(self) -> list[L2capPacket]:
        """Collect and trace every response currently queued.

        Frames tagged by the virtual device with their decoded packet
        (see :class:`~repro.hci.transport.TaggedFrame`) skip the parse;
        plain frames take the full decode path.
        """
        responses: list[L2capPacket] = []
        for frame in self.link.drain():
            packet = getattr(frame, "l2cap", None)
            if packet is None:
                try:
                    acl = AclPacket.decode(frame)
                except PacketDecodeError:
                    continue
                payload = self._reassembler.feed(acl)
                if payload is None:
                    continue
                try:
                    packet = L2capPacket.decode(payload)
                except PacketDecodeError:
                    continue
            self.sniffer.observe_received(packet, self.clock.now)
            responses.append(packet)
        return responses

    def exchange(self, packet: L2capPacket) -> list[L2capPacket]:
        """Send one packet and return the target's immediate responses.

        :raises TransportError: when the link is (or goes) down.
        """
        self.send(packet)
        return self.drain()
