"""Persistent fleet execution runtime: batched workers, compact results.

The first fleet orchestrator paid a fixed tax per ``run()``: a fresh
``ProcessPoolExecutor``, one pickled job per campaign carrying the full
campaign context (config, corpus prior, splice dictionary), and a full
:class:`~repro.core.report.CampaignReport` object graph pickled back per
campaign. This module replaces that with the runtime the paper's
throughput-per-dongle argument (Table 7) wants the simulated fleet to
demonstrate:

* **Persistent workers** — worker processes are started once per
  runtime and initialise their campaign context (config template,
  corpus visit prior, mutation dictionary) exactly once, via the pool
  initializer. Task messages shrink to bare campaign coordinates.
* **Batched shards** — campaigns ship to workers in shards of
  :data:`~FleetRuntime.batch` specs per message, amortising the
  executor round trip; a shard's campaigns run back to back on one
  worker, like a dongle working through its queue.
* **Compact binary summaries** — workers stream back
  :class:`CampaignSummary` blobs (a versioned struct-packed encoding:
  coverage tokens, finding records, efficiency counters, stream
  samples) instead of pickled reports. Everything the fleet merge needs
  lives in the summary; the full ``CampaignReport`` object graph is
  reconstructed lazily, only when markdown/JSON export (or a caller
  poking ``run.report``) asks — see :class:`SummaryRun`.
* **Batched corpus write-back** — with a shared corpus, a worker opens
  the store and finding database once per shard and records every
  campaign of the shard through the same handles, instead of a
  load/write cycle per campaign.

Determinism is untouched: summaries are pure functions of the campaign,
campaigns are pure functions of their derived seed, and results are
re-ordered by spec index — the merged fleet report is byte-identical
for any worker count and any batch size (pinned by the
worker-independence tests).

**Supervision** (the multi-worker default) dispatches shards as
individual futures instead of one ``pool.map``: each in-flight shard
carries a deadline derived from observed shard latency, worker death
(``BrokenProcessPool``) and hangs restart the pool and requeue the lost
shards with capped exponential backoff, and a shard that keeps failing
is bisected until the single poison campaign is isolated, confirmed by
a solo re-run, and quarantined — reported as a diagnostic in the fleet
report rather than aborting the run. Because campaigns are pure
functions of their seeds and merges are associative, none of this
perturbs results: a run that weathered crashes, hangs and requeues
merges to the byte-identical report of a fault-free run (pinned by the
fault-tolerance tests). Completed shards checkpoint their summary blobs
into the telemetry run directory, so an interrupted run can be resumed
re-running only the missing shards.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import struct
import threading
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from pathlib import Path
from statistics import median

from repro.analysis.metrics import MutationEfficiency, measure
from repro.core.config import FuzzConfig
from repro.core.detection import Finding, VulnerabilityClass
from repro.core.faults import FaultPlan, WorkerCrashError
from repro.core.report import CampaignReport
from repro.errors import ReproError

_log = logging.getLogger(__name__)

#: Format version stamped on every encoded summary blob.
#: v2 added the per-finding ``sent_index`` (reproducer-prefix cut).
SUMMARY_FORMAT_VERSION = 2

#: Wire sentinel for a finding without a recorded ``sent_index``.
_NO_SENT_INDEX = 0xFFFFFFFF

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

#: Escape marker for string/collection sizes >= 255 (u8 prefix + u32).
_SIZE_ESCAPE = 0xFF


@dataclasses.dataclass(frozen=True)
class FindingSummary:
    """One campaign finding, flattened to plain data for the wire."""

    vulnerability_class: str
    error_message: str
    state: str
    trigger: str
    sim_time: float
    ping_failed: bool
    crash_dump: str
    target: str
    sent_index: int | None = None

    def to_finding(self) -> Finding:
        """Reconstruct the engine-side :class:`Finding` object."""
        return Finding(
            vulnerability_class=VulnerabilityClass(self.vulnerability_class),
            error_message=self.error_message,
            state=self.state,
            trigger=self.trigger,
            sim_time=self.sim_time,
            ping_failed=self.ping_failed,
            crash_dump=self.crash_dump or None,
            target=self.target,
            sent_index=self.sent_index,
        )

    @classmethod
    def from_finding(cls, finding: Finding) -> "FindingSummary":
        return cls(
            vulnerability_class=finding.vulnerability_class.value,
            error_message=finding.error_message,
            state=finding.state,
            trigger=finding.trigger,
            sim_time=finding.sim_time,
            ping_failed=finding.ping_failed,
            crash_dump=finding.crash_dump or "",
            target=finding.target,
            sent_index=finding.sent_index,
        )


@dataclasses.dataclass(frozen=True)
class CampaignSummary:
    """Everything the fleet merge needs from one campaign, as plain data.

    This is the worker→orchestrator wire unit. Coverage travels as the
    state-name tokens the merge and corpus already key by; findings as
    :class:`FindingSummary` rows; the Table VII counters raw (the ratios
    are derived). ``coverage_samples`` is the sniffer's streamed
    coverage-unlock series — ``(distinct states, packets sent)`` points
    — so fleet-level coverage-over-time pictures never need the trace.

    :meth:`to_report` rebuilds the full :class:`CampaignReport`
    (enum members, :class:`Finding` objects, efficiency wrapper); the
    result is ``==`` to the report the campaign produced in-process,
    which the summary round-trip tests pin per target.
    """

    target_name: str
    fuzz_target: str
    strategy: str
    state_space: int
    packets_sent: int
    sweeps_completed: int
    elapsed_seconds: float
    transmitted: int
    malformed: int
    received: int
    rejections: int
    covered_states: tuple[str, ...]
    state_visits: tuple[tuple[str, int], ...]
    transition_visits: tuple[tuple[str, str, int], ...]
    findings: tuple[FindingSummary, ...]
    coverage_samples: tuple[tuple[int, int], ...]
    corpus_entries_added: int = 0
    corpus_findings_new: int = 0
    corpus_findings_duplicate: int = 0

    def to_report(self) -> CampaignReport:
        """Reconstruct the full campaign report object graph."""
        from repro.targets import make_target

        universe = {
            state.value: state
            for state in make_target(self.fuzz_target).state_universe()
        }
        return CampaignReport(
            target_name=self.target_name,
            findings=tuple(finding.to_finding() for finding in self.findings),
            elapsed_seconds=self.elapsed_seconds,
            packets_sent=self.packets_sent,
            sweeps_completed=self.sweeps_completed,
            efficiency=MutationEfficiency(
                transmitted=self.transmitted,
                malformed=self.malformed,
                received=self.received,
                rejections=self.rejections,
                elapsed_seconds=self.elapsed_seconds,
            ),
            covered_states=frozenset(
                universe[token] for token in self.covered_states
            ),
            strategy=self.strategy,
            state_visits=self.state_visits,
            transition_visits=self.transition_visits,
            fuzz_target=self.fuzz_target,
            state_space=self.state_space,
        )


def summarize_session(session, report: CampaignReport) -> CampaignSummary:
    """Condense a finished :class:`~repro.testbed.session.FuzzSession`.

    Reads the counters off the campaign's sniffer rather than the report
    wrapper so the summary works for streaming (``retain_trace=False``)
    campaigns too.
    """
    sniffer = session.fuzzer.sniffer
    return CampaignSummary(
        target_name=report.target_name,
        fuzz_target=report.fuzz_target,
        strategy=report.strategy,
        state_space=report.state_space,
        packets_sent=report.packets_sent,
        sweeps_completed=report.sweeps_completed,
        elapsed_seconds=report.elapsed_seconds,
        transmitted=report.efficiency.transmitted,
        malformed=report.efficiency.malformed,
        received=report.efficiency.received,
        rejections=report.efficiency.rejections,
        covered_states=tuple(
            sorted(state.value for state in report.covered_states)
        ),
        state_visits=report.state_visits,
        transition_visits=report.transition_visits,
        findings=tuple(
            FindingSummary.from_finding(finding) for finding in report.findings
        ),
        coverage_samples=sniffer.coverage_unlocks,
    )


# ---------------------------------------------------------------------------
# Binary codec
# ---------------------------------------------------------------------------


def _pack_size(parts: list, size: int) -> None:
    """Compact size: one byte for <255, escape + u32 beyond.

    Nearly every size in a summary — state-token lengths, visit counts,
    finding counts — is tiny; paying four bytes each is what made the
    first cut of this format fatter than a pickle.
    """
    if size < _SIZE_ESCAPE:
        parts.append(bytes((size,)))
    else:
        parts.append(bytes((_SIZE_ESCAPE,)))
        parts.append(_U32.pack(size))


def _pack_str(parts: list, text: str) -> None:
    raw = text.encode("utf-8")
    _pack_size(parts, len(raw))
    parts.append(raw)


class _Reader:
    """Sequential decoder over one summary blob."""

    __slots__ = ("blob", "offset")

    def __init__(self, blob: bytes) -> None:
        self.blob = blob
        self.offset = 0

    def size(self) -> int:
        value = self.blob[self.offset]
        self.offset += 1
        if value == _SIZE_ESCAPE:
            return self.u32()
        return value

    def u32(self) -> int:
        (value,) = _U32.unpack_from(self.blob, self.offset)
        self.offset += 4
        return value

    def f64(self) -> float:
        (value,) = struct.unpack_from("<d", self.blob, self.offset)
        self.offset += 8
        return value

    def text(self) -> str:
        length = self.size()
        raw = self.blob[self.offset : self.offset + length]
        self.offset += length
        return raw.decode("utf-8")


def encode_summary(summary: CampaignSummary) -> bytes:
    """Serialise *summary* to the compact versioned wire format.

    Struct-packed integers and length-prefixed UTF-8 — a few hundred
    bytes per campaign instead of a pickled report object graph, and a
    stable format the orchestrator can decode without importing any
    campaign machinery.
    """
    parts: list = [struct.pack("<B", SUMMARY_FORMAT_VERSION)]
    for text in (summary.target_name, summary.fuzz_target, summary.strategy):
        _pack_str(parts, text)
    parts.append(
        struct.pack(
            "<IIId",
            summary.state_space,
            summary.packets_sent,
            summary.sweeps_completed,
            summary.elapsed_seconds,
        )
    )
    parts.append(
        struct.pack(
            "<IIII",
            summary.transmitted,
            summary.malformed,
            summary.received,
            summary.rejections,
        )
    )
    parts.append(
        struct.pack(
            "<III",
            summary.corpus_entries_added,
            summary.corpus_findings_new,
            summary.corpus_findings_duplicate,
        )
    )
    # State-name token table: every coverage/visit/transition row
    # references a token index instead of repeating the string (the
    # same dozen state names appear across all three sections).
    tokens = sorted(
        {token for token in summary.covered_states}
        | {token for token, _ in summary.state_visits}
        | {source for source, _, _ in summary.transition_visits}
        | {destination for _, destination, _ in summary.transition_visits}
    )
    index_of = {token: index for index, token in enumerate(tokens)}
    _pack_size(parts, len(tokens))
    for token in tokens:
        _pack_str(parts, token)
    _pack_size(parts, len(summary.covered_states))
    for token in summary.covered_states:
        _pack_size(parts, index_of[token])
    _pack_size(parts, len(summary.state_visits))
    for token, count in summary.state_visits:
        _pack_size(parts, index_of[token])
        parts.append(_U32.pack(count))
    _pack_size(parts, len(summary.transition_visits))
    for source, destination, count in summary.transition_visits:
        _pack_size(parts, index_of[source])
        _pack_size(parts, index_of[destination])
        parts.append(_U32.pack(count))
    _pack_size(parts, len(summary.findings))
    for finding in summary.findings:
        for text in (
            finding.vulnerability_class,
            finding.error_message,
            finding.state,
            finding.trigger,
            finding.crash_dump,
            finding.target,
        ):
            _pack_str(parts, text)
        parts.append(
            struct.pack(
                "<dBI",
                finding.sim_time,
                finding.ping_failed,
                _NO_SENT_INDEX
                if finding.sent_index is None
                else finding.sent_index,
            )
        )
    _pack_size(parts, len(summary.coverage_samples))
    for states, sent in summary.coverage_samples:
        _pack_size(parts, states)
        parts.append(_U32.pack(sent))
    return b"".join(parts)


class AbortRequested(ReproError):
    """A :meth:`FleetRuntime.run_specs` call stopped on caller request.

    Raised when the caller's ``should_abort`` hook fires mid-dispatch —
    the control plane's cancel path. Pending shards are dropped without
    being dispatched; shards already on workers run to completion (a
    process-pool task cannot be interrupted) and still write their
    checkpoints, which is exactly the resume trail a cancelled job
    needs.
    """


class SummaryDecodeError(ReproError, ValueError):
    """A campaign-summary blob that cannot be decoded.

    Raised for truncated, corrupt, or unknown-version blobs — the
    typed signal the supervision layer retries on and the checkpoint
    loader skips tolerantly (a partial checkpoint file from a killed
    worker must read as "missing", never crash the resume). Subclasses
    :class:`ValueError` for compatibility with callers that caught the
    old untyped version error.
    """


def decode_summary(blob: bytes) -> CampaignSummary:
    """Decode one :func:`encode_summary` blob.

    :raises SummaryDecodeError: on an empty, truncated, corrupt, or
        unknown-version blob.
    """
    if not blob:
        raise SummaryDecodeError("empty campaign-summary blob")
    version = blob[0]
    if version != SUMMARY_FORMAT_VERSION:
        raise SummaryDecodeError(
            f"unknown campaign-summary format version {version} "
            f"(expected {SUMMARY_FORMAT_VERSION})"
        )
    try:
        summary = _decode_summary_body(blob)
    except (struct.error, IndexError, UnicodeDecodeError) as error:
        raise SummaryDecodeError(
            f"truncated or corrupt campaign-summary blob "
            f"({len(blob)} bytes): {error}"
        ) from error
    return summary


def _decode_summary_body(blob: bytes) -> CampaignSummary:
    reader = _Reader(blob)
    reader.offset = 1
    target_name = reader.text()
    fuzz_target = reader.text()
    strategy = reader.text()
    state_space, packets_sent, sweeps_completed = (
        reader.u32(),
        reader.u32(),
        reader.u32(),
    )
    elapsed_seconds = reader.f64()
    transmitted, malformed, received, rejections = (
        reader.u32(),
        reader.u32(),
        reader.u32(),
        reader.u32(),
    )
    corpus_entries_added = reader.u32()
    corpus_findings_new = reader.u32()
    corpus_findings_duplicate = reader.u32()
    tokens = tuple(reader.text() for _ in range(reader.size()))
    covered_states = tuple(tokens[reader.size()] for _ in range(reader.size()))
    state_visits = tuple(
        (tokens[reader.size()], reader.u32()) for _ in range(reader.size())
    )
    transition_visits = tuple(
        (tokens[reader.size()], tokens[reader.size()], reader.u32())
        for _ in range(reader.size())
    )
    findings = []
    for _ in range(reader.size()):
        vulnerability_class = reader.text()
        error_message = reader.text()
        state = reader.text()
        trigger = reader.text()
        crash_dump = reader.text()
        target = reader.text()
        sim_time = reader.f64()
        ping_failed = bool(blob[reader.offset])
        reader.offset += 1
        sent_index = reader.u32()
        findings.append(
            FindingSummary(
                vulnerability_class=vulnerability_class,
                error_message=error_message,
                state=state,
                trigger=trigger,
                sim_time=sim_time,
                ping_failed=ping_failed,
                crash_dump=crash_dump,
                target=target,
                sent_index=None if sent_index == _NO_SENT_INDEX else sent_index,
            )
        )
    coverage_samples = tuple(
        (reader.size(), reader.u32()) for _ in range(reader.size())
    )
    if reader.offset != len(blob):
        # Over-read happens when a truncated tail was absorbed by a
        # short slice instead of raising; under-read is trailing junk.
        raise SummaryDecodeError(
            f"campaign-summary decode consumed {reader.offset} of "
            f"{len(blob)} bytes"
        )
    return CampaignSummary(
        target_name=target_name,
        fuzz_target=fuzz_target,
        strategy=strategy,
        state_space=state_space,
        packets_sent=packets_sent,
        sweeps_completed=sweeps_completed,
        elapsed_seconds=elapsed_seconds,
        transmitted=transmitted,
        malformed=malformed,
        received=received,
        rejections=rejections,
        covered_states=covered_states,
        state_visits=state_visits,
        transition_visits=transition_visits,
        findings=tuple(findings),
        coverage_samples=coverage_samples,
        corpus_entries_added=corpus_entries_added,
        corpus_findings_new=corpus_findings_new,
        corpus_findings_duplicate=corpus_findings_duplicate,
    )


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class FleetContext:
    """Everything a worker initialises once, shipped at pool start-up.

    Task messages afterwards carry only campaign coordinates (a few
    dozen bytes per campaign), not this context — the per-task pickling
    the old per-run pools paid.
    """

    base_config: FuzzConfig
    armed: bool
    target_state_value: str
    corpus_dir: str | None
    retain_trace: bool
    prior_visits: tuple[tuple[str, int], ...]
    dictionary: tuple[bytes, ...]
    #: Telemetry root directory; None runs the fleet without telemetry
    #: (the default — observation is strictly opt-in).
    telemetry_dir: str | None = None
    #: The fleet run every worker journal segment correlates to.
    run_id: str | None = None
    #: Dump a cProfile per worker shard under the run's profiles/ dir.
    profile_workers: bool = False
    #: Deterministic fault injection (chaos runs and recovery tests);
    #: None — the production default — injects nothing.
    fault_plan: FaultPlan | None = None


#: Bare campaign coordinates: (index, device_id, strategy, seed, target).
ShardSpec = tuple[int, str, str, int, str]

#: Per-process campaign context, set once by the pool initializer.
_WORKER_CONTEXT: FleetContext | None = None


def _worker_init(context: FleetContext) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _run_shard(
    shard: Sequence[ShardSpec], context: FleetContext | None = None
) -> list[bytes]:
    """Process-pool task: run one shard against the initialised context.

    *context*, when given, overrides the pool-initialised context for
    this task only — the control plane ships each job's context with
    its shards so one warm pool serves jobs with different configs,
    corpus namespaces and telemetry run directories.
    """
    return run_shard(
        context if context is not None else _WORKER_CONTEXT,
        shard,
        in_process_worker=True,
    )


def _open_shard_journal(context: FleetContext, shard: Sequence[ShardSpec]):
    """The shard's journal segment writer, or None when telemetry is off."""
    if context.telemetry_dir is None or context.run_id is None:
        return None
    from repro.telemetry import shard_journal

    return shard_journal(context.telemetry_dir, context.run_id, shard[0][0])


def _emit_campaign_telemetry(
    journal, index: int, session, report, summary: CampaignSummary, wall: float
) -> None:
    """Worker-side campaign events: Logfile bridge, findings, counters.

    Emitted strictly *after* the campaign finished — telemetry reads
    the session's counters, it never participates in execution, so the
    campaign stays byte-identical with telemetry on or off (pinned by
    the telemetry-parity tests).
    """
    from repro.telemetry import journal_fuzz_log

    journal_fuzz_log(journal, session.fuzzer.log, campaign=index)
    for ordinal, finding in enumerate(summary.findings):
        journal.emit(
            "finding",
            campaign=index,
            finding=ordinal,
            vulnerability_class=finding.vulnerability_class,
            state=finding.state,
            trigger=finding.trigger,
            target=finding.target,
            vendor=session.profile.vendor,
            sim_time=round(finding.sim_time, 6),
        )
    journal.emit(
        "campaign_end",
        campaign=index,
        device=session.profile.device_id,
        strategy=summary.strategy,
        target=summary.fuzz_target,
        packets_sent=summary.packets_sent,
        sweeps=summary.sweeps_completed,
        elapsed_sim_seconds=round(summary.elapsed_seconds, 6),
        wall_seconds=round(wall, 6),
        sent=summary.transmitted,
        malformed=summary.malformed,
        received=summary.received,
        rejections=summary.rejections,
        covered_states=list(summary.covered_states),
        state_space=summary.state_space,
        findings=len(summary.findings),
        coverage_unlocks=len(summary.coverage_samples),
        engine_outcomes=session.device.engine.outcome_totals(),
    )


def run_shard(
    context: FleetContext,
    shard: Sequence[ShardSpec],
    in_process_worker: bool = False,
) -> list[bytes]:
    """Run every campaign of *shard* back to back; return summary blobs.

    Campaigns run with corpus write-back deferred: sessions execute
    without a corpus directory, and the whole shard is recorded through
    one storage-backend handle at the end (
    :func:`repro.corpus.store.record_campaigns`, which autodetects the
    directory's backend — JSON files or SQLite) — one batched
    write-back per shard instead of one open/scan/write cycle per
    campaign.

    With telemetry enabled on the context, the shard writes its own
    journal segment — shard span events, per-campaign start/end events
    carrying the sniffer/engine counters, finding events and the
    bridged Logfile records — to its private segment file, which the
    orchestrator merges at run boundaries. Same flow as the summary
    blobs: no new IPC, no locks, nothing on the packet hot path.
    """
    from repro.core.strategies import make_strategy
    from repro.l2cap.states import ChannelState
    from repro.testbed.profiles import PROFILES_BY_ID
    from repro.testbed.session import FuzzSession

    if context.fault_plan is not None:
        # Shard-boundary fault injection: planned crashes die and hangs
        # stall *here*, before any journal or corpus side effect, so a
        # requeued shard re-runs from a clean slate.
        context.fault_plan.on_shard_start(shard, in_process_worker)
    journal = _open_shard_journal(context, shard)
    profiler = None
    if context.profile_workers and journal is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    shard_started = time.perf_counter()
    if journal is not None:
        journal.emit(
            "shard_start",
            specs=[index for index, *_ in shard],
            campaigns=len(shard),
        )
    prior_visits = dict(context.prior_visits)
    target_state = ChannelState(context.target_state_value)
    finished = []  # (profile, session, report) for the batched write-back
    blobs: list[bytes] = []
    for index, device_id, strategy_name, seed, target in shard:
        profile = PROFILES_BY_ID[device_id]
        if journal is not None:
            journal.emit(
                "campaign_start",
                campaign=index,
                device=device_id,
                strategy=strategy_name,
                target=target,
                seed=seed,
            )
        campaign_started = time.perf_counter()
        session = FuzzSession(
            profile=profile,
            config=dataclasses.replace(context.base_config, seed=seed),
            armed=context.armed,
            strategy=make_strategy(
                strategy_name,
                target=target_state,
                prior_visits=prior_visits or None,
            ),
            dictionary=context.dictionary,
            retain_trace=context.retain_trace,
            target=target,
        )
        report = session.run()
        summary = summarize_session(session, report)
        if journal is not None:
            _emit_campaign_telemetry(
                journal,
                index,
                session,
                report,
                summary,
                time.perf_counter() - campaign_started,
            )
        if context.corpus_dir is not None:
            finished.append((profile, session.fuzzer, report, summary))
        else:
            blobs.append(encode_summary(summary))
    if context.corpus_dir is not None:
        from repro.corpus.store import record_campaigns

        if context.fault_plan is not None:
            # Transient corpus-IO faults fire before anything is
            # written, so the requeued shard cannot double-write.
            context.fault_plan.on_corpus_writeback(shard)
        stats = record_campaigns(
            context.corpus_dir,
            [
                (profile, fuzzer, report)
                for profile, fuzzer, report, _ in finished
            ],
            armed=context.armed,
        )
        for spec, (_, _, _, summary), campaign_stats in zip(
            shard, finished, stats
        ):
            if journal is not None:
                journal.emit(
                    "corpus_writeback",
                    campaign=spec[0],
                    entries_added=campaign_stats["entries_added"],
                    findings_new=campaign_stats["findings_new"],
                    findings_duplicate=campaign_stats["findings_duplicate"],
                )
            blobs.append(
                encode_summary(
                    dataclasses.replace(
                        summary,
                        corpus_entries_added=campaign_stats["entries_added"],
                        corpus_findings_new=campaign_stats["findings_new"],
                        corpus_findings_duplicate=campaign_stats[
                            "findings_duplicate"
                        ],
                    )
                )
            )
    if journal is not None:
        journal.emit(
            "shard_end",
            campaigns=len(shard),
            wall_seconds=round(time.perf_counter() - shard_started, 6),
        )
        journal.close()
    if profiler is not None:
        profiler.disable()
        from repro.telemetry import PROFILES_DIRNAME

        profile_dir = (
            Path(context.telemetry_dir) / context.run_id / PROFILES_DIRNAME
        )
        profile_dir.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(
            profile_dir / f"worker-{os.getpid()}-shard-{shard[0][0]:06d}.prof"
        )
    if context.fault_plan is not None:
        blobs = context.fault_plan.corrupt_blobs(shard, blobs)
    if context.telemetry_dir is not None and context.run_id is not None:
        write_checkpoints(
            Path(context.telemetry_dir) / context.run_id, shard, blobs
        )
    return blobs


# ---------------------------------------------------------------------------
# Shard checkpoints
# ---------------------------------------------------------------------------

#: Per-run directory holding one summary blob per completed campaign.
CHECKPOINTS_DIRNAME = "checkpoints"


def _checkpoint_path(run_dir: Path, index: int) -> Path:
    return run_dir / CHECKPOINTS_DIRNAME / f"campaign-{index:06d}.bin"


def write_checkpoints(
    run_dir: Path, shard: Sequence[ShardSpec], blobs: Sequence[bytes]
) -> None:
    """Persist a completed shard's summary blobs, one file per campaign.

    Writes are atomic (pid-unique temp file + ``os.replace``): a reader
    — or a resumed run — sees either a whole blob or no file, never a
    torn one; a worker killed mid-write leaves at worst a stale temp
    file. A retried shard simply overwrites its campaigns' files with
    the identical bytes (campaigns are pure functions of their seeds).
    """
    checkpoint_dir = run_dir / CHECKPOINTS_DIRNAME
    checkpoint_dir.mkdir(parents=True, exist_ok=True)
    for spec, blob in zip(shard, blobs):
        final = _checkpoint_path(run_dir, spec[0])
        scratch = final.with_suffix(f".{os.getpid()}.tmp")
        scratch.write_bytes(blob)
        os.replace(scratch, final)


def load_checkpoints(run_dir: Path) -> dict[int, CampaignSummary]:
    """Read every decodable shard checkpoint under *run_dir*.

    Tolerant by design, mirroring the journal's torn-line handling: a
    truncated or corrupt checkpoint (worker killed mid-run, injected
    corruption) is skipped — it reads as "campaign not done", and the
    resumed run re-executes it.
    """
    checkpoint_dir = Path(run_dir) / CHECKPOINTS_DIRNAME
    summaries: dict[int, CampaignSummary] = {}
    if not checkpoint_dir.is_dir():
        return summaries
    for path in sorted(checkpoint_dir.glob("campaign-*.bin")):
        try:
            index = int(path.stem.split("-")[1])
        except (IndexError, ValueError):
            continue
        try:
            summaries[index] = decode_summary(path.read_bytes())
        except SummaryDecodeError:
            _log.warning("skipping undecodable checkpoint %s", path.name)
    return summaries


# ---------------------------------------------------------------------------
# Orchestrator side: supervision
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs for the supervised dispatch loop.

    :param max_attempts: failures a shard absorbs before it is bisected
        (multi-campaign shards) or escalated to a solo-confirmation run
        (singletons).
    :param backoff_base: first-retry delay; doubles per attempt.
    :param backoff_cap: ceiling on the retry delay.
    :param timeout_floor: minimum per-shard deadline — also the whole
        deadline until the first shard completes and calibrates the
        latency estimate.
    :param timeout_factor: deadline multiplier over the observed median
        per-campaign latency (generous on purpose: it must absorb queue
        wait behind the in-flight cap and honest stragglers; only a
        genuinely wedged worker should trip it).
    :param poll_interval: how often the supervisor wakes to scan
        deadlines while futures are outstanding.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    timeout_floor: float = 60.0
    timeout_factor: float = 8.0
    poll_interval: float = 0.05

    def backoff(self, attempts: int) -> float:
        """Capped exponential delay before attempt *attempts* + 1."""
        return min(
            self.backoff_cap, self.backoff_base * (2 ** max(0, attempts - 1))
        )


@dataclasses.dataclass(frozen=True)
class QuarantinedShard:
    """A campaign the supervisor gave up on, and why."""

    spec: ShardSpec
    attempts: int
    reason: str


@dataclasses.dataclass
class SupervisionStats:
    """What the supervisor had to do during one :meth:`run_specs`."""

    retries: int = 0
    requeued: int = 0
    worker_crashes: int = 0
    timeouts: int = 0
    pool_restarts: int = 0
    decode_failures: int = 0
    bisections: int = 0
    quarantined: list[QuarantinedShard] = dataclasses.field(
        default_factory=list
    )

    @property
    def eventful(self) -> bool:
        return any(
            (
                self.retries,
                self.requeued,
                self.worker_crashes,
                self.timeouts,
                self.pool_restarts,
                self.decode_failures,
                self.bisections,
                self.quarantined,
            )
        )


@dataclasses.dataclass
class _ShardJob:
    """One shard's place in the supervised queue."""

    shard: tuple[ShardSpec, ...]
    attempts: int = 0
    not_before: float = 0.0
    #: Set once a singleton exhausts its attempts: the next run gets the
    #: pool to itself, so a failure is attributable to the campaign and
    #: a success exonerates it (it may have been a crashed neighbour's
    #: victim every time).
    require_solo: bool = False


class FleetRuntime:
    """A persistent, supervised pool of campaign workers.

    Created once per fleet context and reused across any number of
    :meth:`run_specs` calls — the pool (and each worker's initialised
    context) survives between runs, so repeated fleets pay the process
    start-up and context shipping cost once.

    Multi-worker dispatch is supervised by default: per-shard deadlines,
    pool restart on worker death or hang, capped-backoff requeue, and
    bisect-to-quarantine for poison campaigns (see the module
    docstring). The runtime stays usable after any recovery — including
    after :meth:`close` — because the pool is rebuilt on demand.

    :param context: the per-worker campaign context.
    :param workers: pool size.
    :param use_processes: real process parallelism (registry-only
        fleets); False uses threads (custom in-process objects).
    :param policy: supervision knobs; None takes the defaults.
    :param on_event: optional callable ``(event, **fields)`` receiving
        supervision events (``worker_crash``, ``shard_retry``,
        ``shard_timeout``, ``shard_quarantined``) — the orchestrator
        wires the telemetry journal in here.
    """

    def __init__(
        self,
        context: FleetContext,
        workers: int,
        use_processes: bool = True,
        policy: SupervisionPolicy | None = None,
        on_event: Callable | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.context = context
        self.workers = workers
        self.use_processes = use_processes
        self.policy = policy if policy is not None else SupervisionPolicy()
        self.on_event = on_event
        #: Stats from the most recent :meth:`run_specs` call.
        self.last_supervision: SupervisionStats | None = None
        self._pool = None
        # Dispatch is exclusive: the supervision loop owns the pool
        # (deadlines, restarts). Concurrent run_specs callers — service
        # jobs racing a dispatcher bug — serialise here instead of
        # corrupting each other's in-flight bookkeeping.
        self._dispatch_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            _log.debug(
                "starting %s pool with %d worker(s)",
                "process" if self.use_processes else "thread",
                self.workers,
            )
            if self.use_processes:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_worker_init,
                    initargs=(self.context,),
                )
            else:
                self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def _restart_pool(self, stats: SupervisionStats | None = None) -> None:
        """Tear the pool down hard — killing its workers — and forget it.

        The next :meth:`_ensure_pool` builds a fresh one. Used when the
        pool is broken (a worker died) or wedged (a shard blew its
        deadline); queued work is cancelled, and it is the caller's job
        to requeue whatever was in flight.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if stats is not None:
            stats.pool_restarts += 1
        processes = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.kill()
            except (OSError, ValueError):  # already reaped
                pass

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "FleetRuntime":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- execution -----------------------------------------------------------------

    def run_specs(
        self,
        specs: Sequence[ShardSpec],
        batch: int | None = None,
        supervised: bool = True,
        *,
        context: FleetContext | None = None,
        on_event: Callable | None = None,
        should_abort: Callable[[], bool] | None = None,
    ) -> list["CampaignSummary | None"]:
        """Run *specs* over the pool; summaries come back in spec order.

        A quarantined campaign's slot holds ``None`` (fault-free runs
        never quarantine, so every slot is a summary on the happy
        path); :attr:`last_supervision` carries the diagnostics.

        :param batch: campaigns per worker message. None auto-sizes so
            every worker gets work without starving the tail: roughly
            four shards per worker, minimum one campaign per shard.
        :param supervised: False bypasses the supervision loop for bare
            ``pool.map`` dispatch — no deadlines, no retry, first
            failure propagates. Kept for overhead benchmarking.
        :param context: per-call context override, shipped with every
            shard message instead of relying on the pool-initialised
            context. This is how the control plane runs many jobs —
            each with its own config, corpus namespace and telemetry
            run — on one warm pool. None uses the initialised context.
        :param on_event: per-call supervision-event sink, restored to
            the constructor-time sink when the call returns.
        :param should_abort: polled between dispatch steps; when it
            returns True the call raises :class:`AbortRequested` —
            pending shards are dropped undispatched, in-flight shards
            finish on their workers (and still checkpoint), and the
            pool stays warm for the next call.
        """
        if not specs:
            self.last_supervision = SupervisionStats()
            return []
        if batch is None:
            batch = self.shard_size(len(specs))
        if batch < 1:
            raise ValueError("batch must be >= 1")
        shards = [
            tuple(specs[start : start + batch])
            for start in range(0, len(specs), batch)
        ]
        _log.debug(
            "dispatching %d campaign(s) as %d shard(s) of <=%d",
            len(specs),
            len(shards),
            batch,
        )
        with self._dispatch_lock:
            saved_on_event = self.on_event
            if on_event is not None:
                self.on_event = on_event
            try:
                return self._dispatch(
                    specs, shards, supervised, context, should_abort
                )
            finally:
                self.on_event = saved_on_event

    def _dispatch(
        self,
        specs: Sequence[ShardSpec],
        shards: list[tuple[ShardSpec, ...]],
        supervised: bool,
        context: FleetContext | None,
        should_abort: Callable[[], bool] | None,
    ) -> list["CampaignSummary | None"]:
        stats = SupervisionStats()
        self.last_supervision = stats
        active = context if context is not None else self.context
        if self.workers == 1:
            # Inline: no pool, no serialisation tax, same code path the
            # workers run (summaries included) for identical results.
            # Nothing to supervise — a failure propagates to the caller.
            blobs: list[bytes] = []
            for shard in shards:
                self._check_abort(should_abort, pending=len(shards))
                blobs.extend(run_shard(active, shard))
            return [decode_summary(blob) for blob in blobs]
        if not supervised:
            pool = self._ensure_pool()
            if self.use_processes:
                if context is not None:
                    shard_results = pool.map(
                        _run_shard, shards, [active] * len(shards)
                    )
                else:
                    shard_results = pool.map(_run_shard, shards)
            else:
                shard_results = pool.map(
                    lambda shard: run_shard(active, shard), shards
                )
            return [
                decode_summary(blob)
                for shard_blobs in shard_results
                for blob in shard_blobs
            ]
        results = self._run_supervised(
            shards, stats, context=context, should_abort=should_abort
        )
        return [results.get(spec[0]) for spec in specs]

    def _check_abort(
        self, should_abort: Callable[[], bool] | None, pending: int
    ) -> None:
        if should_abort is not None and should_abort():
            self._emit("dispatch_abort", pending=pending)
            raise AbortRequested(
                f"fleet dispatch aborted with {pending} shard(s) pending"
            )

    def shard_size(self, spec_count: int) -> int:
        """Auto batch size: ~4 shards per worker, at least 1 campaign."""
        if self.workers == 1:
            return max(1, spec_count)
        return max(1, spec_count // (self.workers * 4) or 1)

    # -- supervised dispatch -------------------------------------------------------

    def _submit(self, job: _ShardJob, context: FleetContext | None = None):
        pool = self._ensure_pool()
        if self.use_processes:
            if context is not None:
                return pool.submit(_run_shard, job.shard, context)
            return pool.submit(_run_shard, job.shard)
        return pool.submit(
            run_shard,
            context if context is not None else self.context,
            job.shard,
        )

    def _emit(self, event: str, **fields) -> None:
        _log.info(
            "supervision: %s %s",
            event,
            " ".join(f"{key}={value}" for key, value in fields.items()),
        )
        if self.on_event is not None:
            self.on_event(event, **fields)

    def _run_supervised(
        self,
        shards: list[tuple[ShardSpec, ...]],
        stats: SupervisionStats,
        context: FleetContext | None = None,
        should_abort: Callable[[], bool] | None = None,
    ) -> dict[int, CampaignSummary]:
        """Dispatch *shards* as individual futures under supervision.

        The loop keeps at most ``workers * 2`` shards in flight (so
        deadlines, measured from submission, track execution rather
        than queue depth), polls for completions, and reacts:

        * **success** — decode, record, feed the latency estimator;
        * **decode failure** — the shard ran but returned garbage
          (truncated blob, wrong count): requeue with backoff;
        * **worker exception** (thread pool) — requeue with backoff;
        * **broken pool** (process worker died) — restart the pool,
          requeue the shard that surfaced the break with a bumped
          attempt count, requeue innocent in-flight shards unbumped;
        * **deadline blown** — same as a break, for hangs.

        A shard that exhausts ``max_attempts`` is bisected; a singleton
        is re-run with the pool to itself (``require_solo``) and only
        quarantined if it fails *alone* — otherwise it is exonerated.
        """
        policy = self.policy
        pending: list[_ShardJob] = [_ShardJob(shard) for shard in shards]
        in_flight: dict = {}
        results: dict[int, CampaignSummary] = {}
        latencies: list[float] = []
        max_inflight = self.workers * 2
        solo_active = False

        def deadline_budget(shard_len: int) -> float:
            if not latencies:
                return policy.timeout_floor
            return max(
                policy.timeout_floor,
                policy.timeout_factor * median(latencies) * shard_len,
            )

        def record_success(job: _ShardJob, blobs, wall: float) -> None:
            if len(blobs) != len(job.shard):
                raise SummaryDecodeError(
                    f"shard returned {len(blobs)} summaries "
                    f"for {len(job.shard)} campaign(s)"
                )
            decoded = [decode_summary(blob) for blob in blobs]
            for spec, summary in zip(job.shard, decoded):
                results[spec[0]] = summary
            latencies.append(wall / len(job.shard))

        def quarantine(job: _ShardJob, reason: str) -> None:
            for spec in job.shard:
                stats.quarantined.append(
                    QuarantinedShard(
                        spec=spec, attempts=job.attempts, reason=reason
                    )
                )
                self._emit(
                    "shard_quarantined",
                    specs=[spec[0]],
                    attempts=job.attempts,
                    reason=reason,
                )

        def requeue_failed(job: _ShardJob, reason: str, now: float) -> None:
            """The shard implicated in a failure: bump and re-plan."""
            job.attempts += 1
            stats.retries += 1
            self._emit(
                "shard_retry",
                specs=[spec[0] for spec in job.shard],
                attempts=job.attempts,
                reason=reason,
            )
            if job.require_solo:
                # It had the pool to itself and still failed: the
                # campaign is the poison, not a crashed neighbour.
                quarantine(job, reason)
                return
            if job.attempts >= policy.max_attempts:
                if len(job.shard) > 1:
                    # Bisect: halve the blast radius each round until
                    # the poison campaign stands alone.
                    stats.bisections += 1
                    mid = len(job.shard) // 2
                    pending.append(
                        _ShardJob(job.shard[:mid], not_before=now)
                    )
                    pending.append(
                        _ShardJob(job.shard[mid:], not_before=now)
                    )
                else:
                    job.require_solo = True
                    job.not_before = now + policy.backoff(job.attempts)
                    pending.append(job)
            else:
                job.not_before = now + policy.backoff(job.attempts)
                pending.append(job)

        def requeue_victims(jobs, now: float) -> None:
            """Innocent in-flight shards lost to a restart: no bump."""
            for job in jobs:
                stats.requeued += 1
                job.not_before = now
                pending.append(job)

        while pending or in_flight:
            # Abort drops pending shards undispatched and abandons the
            # in-flight ones — a process-pool task cannot be cancelled,
            # so they run to completion on their workers (writing their
            # checkpoints, which the cancelled job's resume picks up)
            # while the pool stays healthy for the next job.
            self._check_abort(should_abort, pending=len(pending))
            now = time.monotonic()
            while (
                pending and not solo_active and len(in_flight) < max_inflight
            ):
                index = next(
                    (
                        position
                        for position, job in enumerate(pending)
                        if job.not_before <= now
                    ),
                    None,
                )
                if index is None:
                    break
                if pending[index].require_solo and in_flight:
                    # Submission barrier: drain the pool so the solo
                    # run's verdict is attributable.
                    break
                job = pending.pop(index)
                future = self._submit(job, context)
                in_flight[future] = (job, time.monotonic())
                if job.require_solo:
                    solo_active = True
            if not in_flight:
                wake = min(job.not_before for job in pending)
                time.sleep(
                    max(
                        0.001,
                        min(
                            policy.poll_interval, wake - time.monotonic()
                        ),
                    )
                )
                continue
            done, _ = wait(
                tuple(in_flight),
                timeout=policy.poll_interval,
                return_when=FIRST_COMPLETED,
            )
            now = time.monotonic()
            broke: "tuple[_ShardJob, str] | None" = None
            victims: list[_ShardJob] = []
            for future in done:
                job, submitted = in_flight.pop(future)
                if job.require_solo:
                    solo_active = False
                try:
                    blobs = future.result()
                except BrokenExecutor as error:
                    # A dead worker breaks every in-flight future at
                    # once; only the first to surface takes the blame.
                    if broke is None:
                        broke = (
                            job,
                            f"worker process died ({type(error).__name__})",
                        )
                    else:
                        victims.append(job)
                    continue
                except Exception as error:  # noqa: BLE001 — worker raised
                    if isinstance(error, WorkerCrashError):
                        stats.worker_crashes += 1
                        self._emit(
                            "worker_crash",
                            specs=[spec[0] for spec in job.shard],
                            reason=str(error),
                        )
                    requeue_failed(
                        job, f"{type(error).__name__}: {error}", now
                    )
                    continue
                try:
                    record_success(job, blobs, now - submitted)
                except SummaryDecodeError as error:
                    stats.decode_failures += 1
                    requeue_failed(
                        job, f"{type(error).__name__}: {error}", now
                    )
            if broke is not None:
                offender, reason = broke
                stats.worker_crashes += 1
                self._emit(
                    "worker_crash",
                    specs=[spec[0] for spec in offender.shard],
                    reason=reason,
                )
                victims.extend(job for job, _ in in_flight.values())
                in_flight.clear()
                solo_active = False
                self._restart_pool(stats)
                requeue_failed(offender, reason, now)
                requeue_victims(victims, now)
                continue
            expired = next(
                (
                    (future, job, submitted)
                    for future, (job, submitted) in in_flight.items()
                    if now - submitted > deadline_budget(len(job.shard))
                ),
                None,
            )
            if expired is not None:
                hung_future, hung, submitted = expired
                stats.timeouts += 1
                reason = (
                    f"shard exceeded its "
                    f"{deadline_budget(len(hung.shard)):.1f}s deadline"
                )
                self._emit(
                    "shard_timeout",
                    specs=[spec[0] for spec in hung.shard],
                    elapsed=round(now - submitted, 3),
                    reason=reason,
                )
                bystanders = [
                    job
                    for future, (job, _) in in_flight.items()
                    if future is not hung_future
                ]
                in_flight.clear()
                solo_active = False
                # The hung worker holds a pool slot hostage — and with
                # a process pool there is no task-level kill. Restart,
                # losing (and requeueing) the innocent in-flight work.
                self._restart_pool(stats)
                requeue_failed(hung, reason, now)
                requeue_victims(bystanders, now)
        return results


def iter_shard_specs(specs: Iterable) -> tuple[ShardSpec, ...]:
    """Flatten :class:`~repro.core.fleet.CampaignSpec` objects to wire tuples."""
    return tuple(
        (spec.index, spec.device_id, spec.strategy, spec.seed, spec.target)
        for spec in specs
    )
