"""Persistent fleet execution runtime: batched workers, compact results.

The first fleet orchestrator paid a fixed tax per ``run()``: a fresh
``ProcessPoolExecutor``, one pickled job per campaign carrying the full
campaign context (config, corpus prior, splice dictionary), and a full
:class:`~repro.core.report.CampaignReport` object graph pickled back per
campaign. This module replaces that with the runtime the paper's
throughput-per-dongle argument (Table 7) wants the simulated fleet to
demonstrate:

* **Persistent workers** — worker processes are started once per
  runtime and initialise their campaign context (config template,
  corpus visit prior, mutation dictionary) exactly once, via the pool
  initializer. Task messages shrink to bare campaign coordinates.
* **Batched shards** — campaigns ship to workers in shards of
  :data:`~FleetRuntime.batch` specs per message, amortising the
  executor round trip; a shard's campaigns run back to back on one
  worker, like a dongle working through its queue.
* **Compact binary summaries** — workers stream back
  :class:`CampaignSummary` blobs (a versioned struct-packed encoding:
  coverage tokens, finding records, efficiency counters, stream
  samples) instead of pickled reports. Everything the fleet merge needs
  lives in the summary; the full ``CampaignReport`` object graph is
  reconstructed lazily, only when markdown/JSON export (or a caller
  poking ``run.report``) asks — see :class:`SummaryRun`.
* **Batched corpus write-back** — with a shared corpus, a worker opens
  the store and finding database once per shard and records every
  campaign of the shard through the same handles, instead of a
  load/write cycle per campaign.

Determinism is untouched: summaries are pure functions of the campaign,
campaigns are pure functions of their derived seed, and results are
re-ordered by spec index — the merged fleet report is byte-identical
for any worker count and any batch size (pinned by the
worker-independence tests).
"""

from __future__ import annotations

import dataclasses
import logging
import os
import struct
import time
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.analysis.metrics import MutationEfficiency, measure
from repro.core.config import FuzzConfig
from repro.core.detection import Finding, VulnerabilityClass
from repro.core.report import CampaignReport

_log = logging.getLogger(__name__)

#: Format version stamped on every encoded summary blob.
#: v2 added the per-finding ``sent_index`` (reproducer-prefix cut).
SUMMARY_FORMAT_VERSION = 2

#: Wire sentinel for a finding without a recorded ``sent_index``.
_NO_SENT_INDEX = 0xFFFFFFFF

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

#: Escape marker for string/collection sizes >= 255 (u8 prefix + u32).
_SIZE_ESCAPE = 0xFF


@dataclasses.dataclass(frozen=True)
class FindingSummary:
    """One campaign finding, flattened to plain data for the wire."""

    vulnerability_class: str
    error_message: str
    state: str
    trigger: str
    sim_time: float
    ping_failed: bool
    crash_dump: str
    target: str
    sent_index: int | None = None

    def to_finding(self) -> Finding:
        """Reconstruct the engine-side :class:`Finding` object."""
        return Finding(
            vulnerability_class=VulnerabilityClass(self.vulnerability_class),
            error_message=self.error_message,
            state=self.state,
            trigger=self.trigger,
            sim_time=self.sim_time,
            ping_failed=self.ping_failed,
            crash_dump=self.crash_dump or None,
            target=self.target,
            sent_index=self.sent_index,
        )

    @classmethod
    def from_finding(cls, finding: Finding) -> "FindingSummary":
        return cls(
            vulnerability_class=finding.vulnerability_class.value,
            error_message=finding.error_message,
            state=finding.state,
            trigger=finding.trigger,
            sim_time=finding.sim_time,
            ping_failed=finding.ping_failed,
            crash_dump=finding.crash_dump or "",
            target=finding.target,
            sent_index=finding.sent_index,
        )


@dataclasses.dataclass(frozen=True)
class CampaignSummary:
    """Everything the fleet merge needs from one campaign, as plain data.

    This is the worker→orchestrator wire unit. Coverage travels as the
    state-name tokens the merge and corpus already key by; findings as
    :class:`FindingSummary` rows; the Table VII counters raw (the ratios
    are derived). ``coverage_samples`` is the sniffer's streamed
    coverage-unlock series — ``(distinct states, packets sent)`` points
    — so fleet-level coverage-over-time pictures never need the trace.

    :meth:`to_report` rebuilds the full :class:`CampaignReport`
    (enum members, :class:`Finding` objects, efficiency wrapper); the
    result is ``==`` to the report the campaign produced in-process,
    which the summary round-trip tests pin per target.
    """

    target_name: str
    fuzz_target: str
    strategy: str
    state_space: int
    packets_sent: int
    sweeps_completed: int
    elapsed_seconds: float
    transmitted: int
    malformed: int
    received: int
    rejections: int
    covered_states: tuple[str, ...]
    state_visits: tuple[tuple[str, int], ...]
    transition_visits: tuple[tuple[str, str, int], ...]
    findings: tuple[FindingSummary, ...]
    coverage_samples: tuple[tuple[int, int], ...]
    corpus_entries_added: int = 0
    corpus_findings_new: int = 0
    corpus_findings_duplicate: int = 0

    def to_report(self) -> CampaignReport:
        """Reconstruct the full campaign report object graph."""
        from repro.targets import make_target

        universe = {
            state.value: state
            for state in make_target(self.fuzz_target).state_universe()
        }
        return CampaignReport(
            target_name=self.target_name,
            findings=tuple(finding.to_finding() for finding in self.findings),
            elapsed_seconds=self.elapsed_seconds,
            packets_sent=self.packets_sent,
            sweeps_completed=self.sweeps_completed,
            efficiency=MutationEfficiency(
                transmitted=self.transmitted,
                malformed=self.malformed,
                received=self.received,
                rejections=self.rejections,
                elapsed_seconds=self.elapsed_seconds,
            ),
            covered_states=frozenset(
                universe[token] for token in self.covered_states
            ),
            strategy=self.strategy,
            state_visits=self.state_visits,
            transition_visits=self.transition_visits,
            fuzz_target=self.fuzz_target,
            state_space=self.state_space,
        )


def summarize_session(session, report: CampaignReport) -> CampaignSummary:
    """Condense a finished :class:`~repro.testbed.session.FuzzSession`.

    Reads the counters off the campaign's sniffer rather than the report
    wrapper so the summary works for streaming (``retain_trace=False``)
    campaigns too.
    """
    sniffer = session.fuzzer.sniffer
    return CampaignSummary(
        target_name=report.target_name,
        fuzz_target=report.fuzz_target,
        strategy=report.strategy,
        state_space=report.state_space,
        packets_sent=report.packets_sent,
        sweeps_completed=report.sweeps_completed,
        elapsed_seconds=report.elapsed_seconds,
        transmitted=report.efficiency.transmitted,
        malformed=report.efficiency.malformed,
        received=report.efficiency.received,
        rejections=report.efficiency.rejections,
        covered_states=tuple(
            sorted(state.value for state in report.covered_states)
        ),
        state_visits=report.state_visits,
        transition_visits=report.transition_visits,
        findings=tuple(
            FindingSummary.from_finding(finding) for finding in report.findings
        ),
        coverage_samples=sniffer.coverage_unlocks,
    )


# ---------------------------------------------------------------------------
# Binary codec
# ---------------------------------------------------------------------------


def _pack_size(parts: list, size: int) -> None:
    """Compact size: one byte for <255, escape + u32 beyond.

    Nearly every size in a summary — state-token lengths, visit counts,
    finding counts — is tiny; paying four bytes each is what made the
    first cut of this format fatter than a pickle.
    """
    if size < _SIZE_ESCAPE:
        parts.append(bytes((size,)))
    else:
        parts.append(bytes((_SIZE_ESCAPE,)))
        parts.append(_U32.pack(size))


def _pack_str(parts: list, text: str) -> None:
    raw = text.encode("utf-8")
    _pack_size(parts, len(raw))
    parts.append(raw)


class _Reader:
    """Sequential decoder over one summary blob."""

    __slots__ = ("blob", "offset")

    def __init__(self, blob: bytes) -> None:
        self.blob = blob
        self.offset = 0

    def size(self) -> int:
        value = self.blob[self.offset]
        self.offset += 1
        if value == _SIZE_ESCAPE:
            return self.u32()
        return value

    def u32(self) -> int:
        (value,) = _U32.unpack_from(self.blob, self.offset)
        self.offset += 4
        return value

    def f64(self) -> float:
        (value,) = struct.unpack_from("<d", self.blob, self.offset)
        self.offset += 8
        return value

    def text(self) -> str:
        length = self.size()
        raw = self.blob[self.offset : self.offset + length]
        self.offset += length
        return raw.decode("utf-8")


def encode_summary(summary: CampaignSummary) -> bytes:
    """Serialise *summary* to the compact versioned wire format.

    Struct-packed integers and length-prefixed UTF-8 — a few hundred
    bytes per campaign instead of a pickled report object graph, and a
    stable format the orchestrator can decode without importing any
    campaign machinery.
    """
    parts: list = [struct.pack("<B", SUMMARY_FORMAT_VERSION)]
    for text in (summary.target_name, summary.fuzz_target, summary.strategy):
        _pack_str(parts, text)
    parts.append(
        struct.pack(
            "<IIId",
            summary.state_space,
            summary.packets_sent,
            summary.sweeps_completed,
            summary.elapsed_seconds,
        )
    )
    parts.append(
        struct.pack(
            "<IIII",
            summary.transmitted,
            summary.malformed,
            summary.received,
            summary.rejections,
        )
    )
    parts.append(
        struct.pack(
            "<III",
            summary.corpus_entries_added,
            summary.corpus_findings_new,
            summary.corpus_findings_duplicate,
        )
    )
    # State-name token table: every coverage/visit/transition row
    # references a token index instead of repeating the string (the
    # same dozen state names appear across all three sections).
    tokens = sorted(
        {token for token in summary.covered_states}
        | {token for token, _ in summary.state_visits}
        | {source for source, _, _ in summary.transition_visits}
        | {destination for _, destination, _ in summary.transition_visits}
    )
    index_of = {token: index for index, token in enumerate(tokens)}
    _pack_size(parts, len(tokens))
    for token in tokens:
        _pack_str(parts, token)
    _pack_size(parts, len(summary.covered_states))
    for token in summary.covered_states:
        _pack_size(parts, index_of[token])
    _pack_size(parts, len(summary.state_visits))
    for token, count in summary.state_visits:
        _pack_size(parts, index_of[token])
        parts.append(_U32.pack(count))
    _pack_size(parts, len(summary.transition_visits))
    for source, destination, count in summary.transition_visits:
        _pack_size(parts, index_of[source])
        _pack_size(parts, index_of[destination])
        parts.append(_U32.pack(count))
    _pack_size(parts, len(summary.findings))
    for finding in summary.findings:
        for text in (
            finding.vulnerability_class,
            finding.error_message,
            finding.state,
            finding.trigger,
            finding.crash_dump,
            finding.target,
        ):
            _pack_str(parts, text)
        parts.append(
            struct.pack(
                "<dBI",
                finding.sim_time,
                finding.ping_failed,
                _NO_SENT_INDEX
                if finding.sent_index is None
                else finding.sent_index,
            )
        )
    _pack_size(parts, len(summary.coverage_samples))
    for states, sent in summary.coverage_samples:
        _pack_size(parts, states)
        parts.append(_U32.pack(sent))
    return b"".join(parts)


def decode_summary(blob: bytes) -> CampaignSummary:
    """Decode one :func:`encode_summary` blob.

    :raises ValueError: on an unknown format version.
    """
    version = blob[0]
    if version != SUMMARY_FORMAT_VERSION:
        raise ValueError(
            f"unknown campaign-summary format version {version} "
            f"(expected {SUMMARY_FORMAT_VERSION})"
        )
    reader = _Reader(blob)
    reader.offset = 1
    target_name = reader.text()
    fuzz_target = reader.text()
    strategy = reader.text()
    state_space, packets_sent, sweeps_completed = (
        reader.u32(),
        reader.u32(),
        reader.u32(),
    )
    elapsed_seconds = reader.f64()
    transmitted, malformed, received, rejections = (
        reader.u32(),
        reader.u32(),
        reader.u32(),
        reader.u32(),
    )
    corpus_entries_added = reader.u32()
    corpus_findings_new = reader.u32()
    corpus_findings_duplicate = reader.u32()
    tokens = tuple(reader.text() for _ in range(reader.size()))
    covered_states = tuple(tokens[reader.size()] for _ in range(reader.size()))
    state_visits = tuple(
        (tokens[reader.size()], reader.u32()) for _ in range(reader.size())
    )
    transition_visits = tuple(
        (tokens[reader.size()], tokens[reader.size()], reader.u32())
        for _ in range(reader.size())
    )
    findings = []
    for _ in range(reader.size()):
        vulnerability_class = reader.text()
        error_message = reader.text()
        state = reader.text()
        trigger = reader.text()
        crash_dump = reader.text()
        target = reader.text()
        sim_time = reader.f64()
        ping_failed = bool(blob[reader.offset])
        reader.offset += 1
        sent_index = reader.u32()
        findings.append(
            FindingSummary(
                vulnerability_class=vulnerability_class,
                error_message=error_message,
                state=state,
                trigger=trigger,
                sim_time=sim_time,
                ping_failed=ping_failed,
                crash_dump=crash_dump,
                target=target,
                sent_index=None if sent_index == _NO_SENT_INDEX else sent_index,
            )
        )
    coverage_samples = tuple(
        (reader.size(), reader.u32()) for _ in range(reader.size())
    )
    return CampaignSummary(
        target_name=target_name,
        fuzz_target=fuzz_target,
        strategy=strategy,
        state_space=state_space,
        packets_sent=packets_sent,
        sweeps_completed=sweeps_completed,
        elapsed_seconds=elapsed_seconds,
        transmitted=transmitted,
        malformed=malformed,
        received=received,
        rejections=rejections,
        covered_states=covered_states,
        state_visits=state_visits,
        transition_visits=transition_visits,
        findings=tuple(findings),
        coverage_samples=coverage_samples,
        corpus_entries_added=corpus_entries_added,
        corpus_findings_new=corpus_findings_new,
        corpus_findings_duplicate=corpus_findings_duplicate,
    )


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class FleetContext:
    """Everything a worker initialises once, shipped at pool start-up.

    Task messages afterwards carry only campaign coordinates (a few
    dozen bytes per campaign), not this context — the per-task pickling
    the old per-run pools paid.
    """

    base_config: FuzzConfig
    armed: bool
    target_state_value: str
    corpus_dir: str | None
    retain_trace: bool
    prior_visits: tuple[tuple[str, int], ...]
    dictionary: tuple[bytes, ...]
    #: Telemetry root directory; None runs the fleet without telemetry
    #: (the default — observation is strictly opt-in).
    telemetry_dir: str | None = None
    #: The fleet run every worker journal segment correlates to.
    run_id: str | None = None
    #: Dump a cProfile per worker shard under the run's profiles/ dir.
    profile_workers: bool = False


#: Bare campaign coordinates: (index, device_id, strategy, seed, target).
ShardSpec = tuple[int, str, str, int, str]

#: Per-process campaign context, set once by the pool initializer.
_WORKER_CONTEXT: FleetContext | None = None


def _worker_init(context: FleetContext) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _run_shard(shard: Sequence[ShardSpec]) -> list[bytes]:
    """Process-pool task: run one shard against the initialised context."""
    return run_shard(_WORKER_CONTEXT, shard)


def _open_shard_journal(context: FleetContext, shard: Sequence[ShardSpec]):
    """The shard's journal segment writer, or None when telemetry is off."""
    if context.telemetry_dir is None or context.run_id is None:
        return None
    from repro.telemetry import shard_journal

    return shard_journal(context.telemetry_dir, context.run_id, shard[0][0])


def _emit_campaign_telemetry(
    journal, index: int, session, report, summary: CampaignSummary, wall: float
) -> None:
    """Worker-side campaign events: Logfile bridge, findings, counters.

    Emitted strictly *after* the campaign finished — telemetry reads
    the session's counters, it never participates in execution, so the
    campaign stays byte-identical with telemetry on or off (pinned by
    the telemetry-parity tests).
    """
    from repro.telemetry import journal_fuzz_log

    journal_fuzz_log(journal, session.fuzzer.log, campaign=index)
    for ordinal, finding in enumerate(summary.findings):
        journal.emit(
            "finding",
            campaign=index,
            finding=ordinal,
            vulnerability_class=finding.vulnerability_class,
            state=finding.state,
            trigger=finding.trigger,
            target=finding.target,
            vendor=session.profile.vendor,
            sim_time=round(finding.sim_time, 6),
        )
    journal.emit(
        "campaign_end",
        campaign=index,
        device=session.profile.device_id,
        strategy=summary.strategy,
        target=summary.fuzz_target,
        packets_sent=summary.packets_sent,
        sweeps=summary.sweeps_completed,
        elapsed_sim_seconds=round(summary.elapsed_seconds, 6),
        wall_seconds=round(wall, 6),
        sent=summary.transmitted,
        malformed=summary.malformed,
        received=summary.received,
        rejections=summary.rejections,
        covered_states=list(summary.covered_states),
        state_space=summary.state_space,
        findings=len(summary.findings),
        coverage_unlocks=len(summary.coverage_samples),
        engine_outcomes=session.device.engine.outcome_totals(),
    )


def run_shard(
    context: FleetContext, shard: Sequence[ShardSpec]
) -> list[bytes]:
    """Run every campaign of *shard* back to back; return summary blobs.

    Campaigns run with corpus write-back deferred: sessions execute
    without a corpus directory, and the whole shard is recorded through
    one storage-backend handle at the end (
    :func:`repro.corpus.store.record_campaigns`, which autodetects the
    directory's backend — JSON files or SQLite) — one batched
    write-back per shard instead of one open/scan/write cycle per
    campaign.

    With telemetry enabled on the context, the shard writes its own
    journal segment — shard span events, per-campaign start/end events
    carrying the sniffer/engine counters, finding events and the
    bridged Logfile records — to its private segment file, which the
    orchestrator merges at run boundaries. Same flow as the summary
    blobs: no new IPC, no locks, nothing on the packet hot path.
    """
    from repro.core.strategies import make_strategy
    from repro.l2cap.states import ChannelState
    from repro.testbed.profiles import PROFILES_BY_ID
    from repro.testbed.session import FuzzSession

    journal = _open_shard_journal(context, shard)
    profiler = None
    if context.profile_workers and journal is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    shard_started = time.perf_counter()
    if journal is not None:
        journal.emit(
            "shard_start",
            specs=[index for index, *_ in shard],
            campaigns=len(shard),
        )
    prior_visits = dict(context.prior_visits)
    target_state = ChannelState(context.target_state_value)
    finished = []  # (profile, session, report) for the batched write-back
    blobs: list[bytes] = []
    for index, device_id, strategy_name, seed, target in shard:
        profile = PROFILES_BY_ID[device_id]
        if journal is not None:
            journal.emit(
                "campaign_start",
                campaign=index,
                device=device_id,
                strategy=strategy_name,
                target=target,
                seed=seed,
            )
        campaign_started = time.perf_counter()
        session = FuzzSession(
            profile=profile,
            config=dataclasses.replace(context.base_config, seed=seed),
            armed=context.armed,
            strategy=make_strategy(
                strategy_name,
                target=target_state,
                prior_visits=prior_visits or None,
            ),
            dictionary=context.dictionary,
            retain_trace=context.retain_trace,
            target=target,
        )
        report = session.run()
        summary = summarize_session(session, report)
        if journal is not None:
            _emit_campaign_telemetry(
                journal,
                index,
                session,
                report,
                summary,
                time.perf_counter() - campaign_started,
            )
        if context.corpus_dir is not None:
            finished.append((profile, session.fuzzer, report, summary))
        else:
            blobs.append(encode_summary(summary))
    if context.corpus_dir is not None:
        from repro.corpus.store import record_campaigns

        stats = record_campaigns(
            context.corpus_dir,
            [
                (profile, fuzzer, report)
                for profile, fuzzer, report, _ in finished
            ],
            armed=context.armed,
        )
        for spec, (_, _, _, summary), campaign_stats in zip(
            shard, finished, stats
        ):
            if journal is not None:
                journal.emit(
                    "corpus_writeback",
                    campaign=spec[0],
                    entries_added=campaign_stats["entries_added"],
                    findings_new=campaign_stats["findings_new"],
                    findings_duplicate=campaign_stats["findings_duplicate"],
                )
            blobs.append(
                encode_summary(
                    dataclasses.replace(
                        summary,
                        corpus_entries_added=campaign_stats["entries_added"],
                        corpus_findings_new=campaign_stats["findings_new"],
                        corpus_findings_duplicate=campaign_stats[
                            "findings_duplicate"
                        ],
                    )
                )
            )
    if journal is not None:
        journal.emit(
            "shard_end",
            campaigns=len(shard),
            wall_seconds=round(time.perf_counter() - shard_started, 6),
        )
        journal.close()
    if profiler is not None:
        profiler.disable()
        from repro.telemetry import PROFILES_DIRNAME
        from pathlib import Path

        profile_dir = (
            Path(context.telemetry_dir) / context.run_id / PROFILES_DIRNAME
        )
        profile_dir.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(
            profile_dir / f"worker-{os.getpid()}-shard-{shard[0][0]:06d}.prof"
        )
    return blobs


# ---------------------------------------------------------------------------
# Orchestrator side
# ---------------------------------------------------------------------------


class FleetRuntime:
    """A persistent pool of campaign workers.

    Created once per fleet context and reused across any number of
    :meth:`run_specs` calls — the pool (and each worker's initialised
    context) survives between runs, so repeated fleets pay the process
    start-up and context shipping cost once.

    :param context: the per-worker campaign context.
    :param workers: pool size.
    :param use_processes: real process parallelism (registry-only
        fleets); False uses threads (custom in-process objects).
    """

    def __init__(
        self, context: FleetContext, workers: int, use_processes: bool = True
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.context = context
        self.workers = workers
        self.use_processes = use_processes
        self._pool = None

    # -- lifecycle -----------------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            _log.debug(
                "starting %s pool with %d worker(s)",
                "process" if self.use_processes else "thread",
                self.workers,
            )
            if self.use_processes:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_worker_init,
                    initargs=(self.context,),
                )
            else:
                self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "FleetRuntime":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- execution -----------------------------------------------------------------

    def run_specs(
        self, specs: Sequence[ShardSpec], batch: int | None = None
    ) -> list[CampaignSummary]:
        """Run *specs* over the pool; summaries come back in spec order.

        :param batch: campaigns per worker message. None auto-sizes so
            every worker gets work without starving the tail: roughly
            four shards per worker, minimum one campaign per shard.
        """
        if not specs:
            return []
        if batch is None:
            batch = self.shard_size(len(specs))
        if batch < 1:
            raise ValueError("batch must be >= 1")
        shards = [
            tuple(specs[start : start + batch])
            for start in range(0, len(specs), batch)
        ]
        _log.debug(
            "dispatching %d campaign(s) as %d shard(s) of <=%d",
            len(specs),
            len(shards),
            batch,
        )
        if self.workers == 1:
            # Inline: no pool, no serialisation tax, same code path the
            # workers run (summaries included) for identical results.
            blobs: list[bytes] = []
            for shard in shards:
                blobs.extend(run_shard(self.context, shard))
        elif self.use_processes:
            pool = self._ensure_pool()
            blobs = [
                blob
                for shard_blobs in pool.map(_run_shard, shards)
                for blob in shard_blobs
            ]
        else:
            pool = self._ensure_pool()
            context = self.context
            blobs = [
                blob
                for shard_blobs in pool.map(
                    lambda shard: run_shard(context, shard), shards
                )
                for blob in shard_blobs
            ]
        return [decode_summary(blob) for blob in blobs]

    def shard_size(self, spec_count: int) -> int:
        """Auto batch size: ~4 shards per worker, at least 1 campaign."""
        if self.workers == 1:
            return max(1, spec_count)
        return max(1, spec_count // (self.workers * 4) or 1)


def iter_shard_specs(specs: Iterable) -> tuple[ShardSpec, ...]:
    """Flatten :class:`~repro.core.fleet.CampaignSpec` objects to wire tuples."""
    return tuple(
        (spec.index, spec.device_id, spec.strategy, spec.seed, spec.target)
        for spec in specs
    )
