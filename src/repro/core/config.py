"""Campaign configuration for L2Fuzz."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class FuzzConfig:
    """Tunable knobs of an L2Fuzz campaign.

    :param seed: RNG seed; campaigns are fully deterministic given a seed.
    :param packets_per_command: ``n`` of Algorithm 1 — malformed packets
        generated per valid command per state visit.
    :param max_packets: total transmission budget for the campaign
        (the paper's efficiency experiments use 100,000).
    :param max_garbage: largest garbage tail appended to a mutated packet,
        in bytes; kept well under the signaling MTU so the tail itself
        never provokes an "MTU exceeded" reject (paper §III.D).
    :param ping_every_commands: run the detection ping test after this
        many fuzzed command batches (1 = after every batch).
    :param stop_on_first_finding: mirror the paper's behaviour — "when a
        valid vulnerability is found, the device and fuzzing are
        terminated". False enables the auto-reset long-term-fuzzing
        extension (paper §V future work).
    :param max_sweeps: upper bound on full state-plan sweeps (0 = until
        the packet budget runs out).
    :param echo_payload: payload carried by detection pings.
    :param wire_fast_path: let mutators that implement ``mutate_wire``
        assemble fuzz frames at the bytes level (template patching with
        a primed encode cache) instead of the field-object→encode round
        trip. Byte-for-byte and RNG-stream identical to the object path
        by contract — False forces the reference path (equivalence
        tests, debugging).

    Ablation switches (all default to the paper's design; flipping one
    removes one of the two key techniques — used by the ablation bench):

    :param state_guiding: walk the 13-state plan. False fuzzes only from
        the CLOSED posture, like a stateless fuzzer.
    :param mutate_core_fields_only: restrict mutation to ``MC``. False
        additionally corrupts the dependent length fields (BFuzz-style),
        which conformant stacks reject wholesale.
    :param append_garbage: append the Fig. 7 garbage tail.
    """

    seed: int = 0x1202
    packets_per_command: int = 5
    max_packets: int = 100_000
    max_garbage: int = 16
    ping_every_commands: int = 1
    stop_on_first_finding: bool = True
    max_sweeps: int = 0
    echo_payload: bytes = b"l2fuzz-ping"
    wire_fast_path: bool = True
    state_guiding: bool = True
    mutate_core_fields_only: bool = True
    append_garbage: bool = True

    def __post_init__(self) -> None:
        if self.packets_per_command < 1:
            raise ValueError("packets_per_command must be >= 1")
        if self.max_packets < 1:
            raise ValueError("max_packets must be >= 1")
        if self.max_garbage < 1:
            raise ValueError("max_garbage must be >= 1")
        if self.ping_every_commands < 1:
            raise ValueError("ping_every_commands must be >= 1")
