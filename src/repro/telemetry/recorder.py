"""Orchestrator-side run recording: manifest, journal, metric folds.

A :class:`RunRecorder` owns one fleet run's telemetry directory::

    <root>/<run_id>/
        run.json        manifest (status, totals — cheap `runs list`)
        events.jsonl    merged event journal
        segments/       live per-worker journal segments (merged away)
        metrics.json    versioned metrics snapshot (JSON exposition)
        metrics.prom    Prometheus text-format exposition
        profiles/       optional per-worker cProfile dumps (--profile)

The recorder is the aggregation side of the telemetry split: workers
emit their own journal segments (:func:`repro.core.runtime.run_shard`),
and the recorder folds everything — campaign summaries, worker shard
spans, the merged fleet report — into the metrics registry in batched
flushes at run boundaries.

Lifecycle is crash-safe: a :func:`weakref.finalize` hook fires at
garbage collection or interpreter exit, so a run that is never
:meth:`~RunRecorder.close`\\ d (killed CLI, forgotten context manager)
still merges its journal segments and records a terminal
``run_abort`` event instead of leaving silence — the manifest says
``aborted``, and every completed line stays readable.
"""

from __future__ import annotations

import datetime
import json
import logging
import os
import secrets
import time
import weakref
from pathlib import Path

from repro.errors import JournalWriteError
from repro.telemetry.journal import (
    EVENTS_FILENAME,
    SEGMENTS_DIRNAME,
    JournalWriter,
    merge_segments,
)
from repro.telemetry.metrics import MetricsRegistry

_log = logging.getLogger(__name__)

#: Format version stamped on every run manifest.
MANIFEST_SCHEMA_VERSION = 1

MANIFEST_FILENAME = "run.json"
METRICS_JSON_FILENAME = "metrics.json"
METRICS_PROM_FILENAME = "metrics.prom"
PROFILES_DIRNAME = "profiles"

#: Bucket layout for per-shard wall latency (seconds).
SHARD_SECONDS_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

#: Bucket layout for per-campaign simulated duration (seconds).
CAMPAIGN_SIM_BUCKETS = (1.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0)


def new_run_id() -> str:
    """A sortable, collision-safe run identifier."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"{stamp}-{secrets.token_hex(3)}"


def _utc_now() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds"
    )


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def read_manifest(run_dir: str | Path) -> dict | None:
    """Parse a run directory's manifest; None when absent/unreadable."""
    path = Path(run_dir) / MANIFEST_FILENAME
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


def _finalize_abandoned(run_dir_text: str) -> None:
    """Terminal cleanup for a run that was never closed.

    Registered via :func:`weakref.finalize`, so it runs when the
    recorder is garbage-collected *or* at interpreter exit — whichever
    comes first. Self-contained on purpose: at interpreter exit, module
    globals may already be torn down elsewhere.
    """
    run_dir = Path(run_dir_text)
    manifest = read_manifest(run_dir)
    if manifest is None or manifest.get("status") != "running":
        return
    try:
        merge_segments(run_dir)
        writer = JournalWriter(
            run_dir / EVENTS_FILENAME,
            run_id=manifest.get("run_id", run_dir.name),
            worker="finalizer",
        )
        writer.emit(
            "run_abort",
            reason="recorder finalized before close() — killed or leaked run",
        )
        writer.close()
        manifest["status"] = "aborted"
        manifest["finished"] = _utc_now()
        _atomic_write(
            run_dir / MANIFEST_FILENAME, json.dumps(manifest, indent=2) + "\n"
        )
    except OSError:  # pragma: no cover - telemetry must never mask exits
        pass


class RunRecorder:
    """Records one fleet run: journal, manifest, metrics, exposition."""

    def __init__(
        self,
        root: str | Path,
        workers: int,
        run_id: str | None = None,
        fleet_signature: str | None = None,
        resumed: bool = False,
    ) -> None:
        self.run_id = run_id if run_id is not None else new_run_id()
        self.root = Path(root)
        self.run_dir = self.root / self.run_id
        (self.run_dir / SEGMENTS_DIRNAME).mkdir(parents=True, exist_ok=True)
        self.workers = workers
        self.metrics = MetricsRegistry()
        self._journal = JournalWriter(
            self.run_dir / EVENTS_FILENAME,
            run_id=self.run_id,
            worker="orchestrator",
        )
        self._closed = False
        self._runs_recorded = 0
        self._shard_walls: list[float] = []
        self._worker_busy: dict[str, float] = {}
        self._totals = {"campaigns": 0, "packets": 0, "findings": 0}
        self._manifest = {
            "schema": MANIFEST_SCHEMA_VERSION,
            "run_id": self.run_id,
            "status": "running",
            "started": _utc_now(),
            "finished": None,
            "pid": os.getpid(),
            "workers": workers,
            "runs_recorded": 0,
            "fleet_signature": fleet_signature,
            "resumed": resumed,
            "failure_reason": None,
            **self._totals,
        }
        self._write_manifest()
        self._finalizer = weakref.finalize(
            self, _finalize_abandoned, str(self.run_dir)
        )
        _log.debug("run %s recording to %s", self.run_id, self.run_dir)

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        """Merge leftovers, mark the run finished, release the journal."""
        if self._closed:
            return
        self._closed = True
        merge_segments(self.run_dir)
        self._journal.emit("run_close", runs_recorded=self._runs_recorded)
        self._journal.close()
        self._manifest["status"] = "finished"
        self._manifest["finished"] = _utc_now()
        self._write_manifest()
        self._finalizer.detach()
        _log.debug("run %s closed", self.run_id)

    def record_failure(self, reason: str) -> None:
        """Terminally mark the run ``aborted``, with a cause.

        The crash-safety finalizer already flips an abandoned run to
        ``aborted``, but silently; this is the orchestrator-side path
        for a failure it actually caught — the manifest gets the
        exception text, the journal a ``run_abort`` event, and the
        completed shards' checkpoints stay on disk for ``--resume``.
        Idempotent with :meth:`close`: whichever runs first wins.
        """
        if self._closed:
            return
        self._closed = True
        # The failure being recorded may *be* the disk (ENOSPC on the
        # journal): best-effort every step, so a sick journal can never
        # stop the manifest from flipping to ``aborted``.
        try:
            merge_segments(self.run_dir)
            self._journal.emit("run_abort", reason=reason)
        except (JournalWriteError, OSError, ValueError) as error:
            _log.warning(
                "run %s: journal unavailable while recording failure: %s",
                self.run_id,
                error,
            )
        self._journal.close()
        self._manifest["status"] = "aborted"
        self._manifest["failure_reason"] = reason
        self._manifest["finished"] = _utc_now()
        try:
            self._write_manifest()
        except OSError as error:
            _log.warning(
                "run %s: could not persist aborted manifest: %s",
                self.run_id,
                error,
            )
        self._finalizer.detach()
        _log.debug("run %s aborted: %s", self.run_id, reason)

    def __enter__(self) -> "RunRecorder":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- journal ---------------------------------------------------------------------

    def emit(self, event: str, **payload) -> dict:
        """Append one orchestrator event to the merged journal."""
        return self._journal.emit(event, **payload)

    def run_started(self, specs, workers: int, batch: int | None) -> None:
        """Record the start of one :meth:`FleetOrchestrator.run` call."""
        profiles: dict[str, None] = {}
        strategies: dict[str, None] = {}
        targets: dict[str, None] = {}
        for spec in specs:
            profiles.setdefault(spec.device_id)
            strategies.setdefault(spec.strategy)
            targets.setdefault(spec.target)
        self.emit(
            "run_start",
            run_index=self._runs_recorded,
            campaigns=len(specs),
            workers=workers,
            batch=batch,
            profiles=list(profiles),
            strategies=list(strategies),
            targets=list(targets),
        )

    # -- aggregation -----------------------------------------------------------------

    def record_run(
        self,
        runs,
        fleet_report,
        wall_seconds: float,
        profiles_by_id: dict,
        emit_campaign_events: bool = False,
        supervision=None,
    ) -> None:
        """Fold one finished fleet run into journal + metrics.

        :param emit_campaign_events: synthesize per-campaign events
            orchestrator-side — used by the thread-fallback path, where
            no worker segments exist. The process path's campaign events
            come from the workers' own journal segments.
        :param supervision: the runtime's
            :class:`~repro.core.runtime.SupervisionStats` for this run,
            folded into retry/requeue counters. Deliberately *not* part
            of the fleet report — supervision activity varies with
            faults, the report must not.
        """
        if emit_campaign_events:
            for run in runs:
                self._emit_synthesized_campaign(run, profiles_by_id)
        merged = merge_segments(self.run_dir)
        self._fold_worker_events(merged)
        for run in runs:
            self._fold_campaign(run, profiles_by_id)
        if supervision is not None:
            self._fold_supervision(supervision)
        self._fold_fleet_report(fleet_report, wall_seconds)
        self._totals["campaigns"] += len(fleet_report.campaigns)
        self._totals["packets"] += fleet_report.total_packets
        self._totals["findings"] += len(fleet_report.findings)
        self.emit(
            "run_end",
            run_index=self._runs_recorded,
            status="ok",
            campaigns=len(fleet_report.campaigns),
            packets=fleet_report.total_packets,
            findings=len(fleet_report.findings),
            wall_seconds=round(wall_seconds, 6),
            simulated_makespan_seconds=round(
                fleet_report.simulated_makespan_seconds, 6
            ),
        )
        self._runs_recorded += 1
        self._manifest["runs_recorded"] = self._runs_recorded
        self._manifest.update(self._totals)
        self._write_manifest()
        self.write_exposition()

    def write_exposition(self) -> None:
        """Write the JSON and Prometheus metric snapshots (atomic)."""
        _atomic_write(
            self.run_dir / METRICS_JSON_FILENAME, self.metrics.to_json() + "\n"
        )
        _atomic_write(
            self.run_dir / METRICS_PROM_FILENAME, self.metrics.to_prometheus()
        )

    # -- internals -------------------------------------------------------------------

    def _write_manifest(self) -> None:
        _atomic_write(
            self.run_dir / MANIFEST_FILENAME,
            json.dumps(self._manifest, indent=2) + "\n",
        )

    @staticmethod
    def _campaign_facts(run) -> dict:
        """Merge-relevant campaign counters, off summary or report.

        Duck-typed like :func:`repro.core.fleet._merge_facts`: a
        ``SummaryRun`` serves plain data, a ``CampaignRun`` derives the
        same view from its report.
        """
        summary = getattr(run, "summary", None)
        if summary is not None:
            return {
                "packets_sent": summary.packets_sent,
                "elapsed_sim_seconds": summary.elapsed_seconds,
                "sent": summary.transmitted,
                "malformed": summary.malformed,
                "received": summary.received,
                "rejections": summary.rejections,
                "covered_states": list(summary.covered_states),
                "state_space": summary.state_space,
                "findings": len(summary.findings),
                "coverage_unlocks": len(summary.coverage_samples),
                "corpus_entries_added": summary.corpus_entries_added,
                "corpus_findings_new": summary.corpus_findings_new,
                "corpus_findings_duplicate": summary.corpus_findings_duplicate,
                "sweeps": summary.sweeps_completed,
            }
        report = run.report
        return {
            "packets_sent": report.packets_sent,
            "elapsed_sim_seconds": report.elapsed_seconds,
            "sent": report.efficiency.transmitted,
            "malformed": report.efficiency.malformed,
            "received": report.efficiency.received,
            "rejections": report.efficiency.rejections,
            "covered_states": sorted(
                state.value for state in report.covered_states
            ),
            "state_space": report.state_space,
            "findings": len(report.findings),
            "coverage_unlocks": None,
            "corpus_entries_added": 0,
            "corpus_findings_new": 0,
            "corpus_findings_duplicate": 0,
            "sweeps": report.sweeps_completed,
        }

    def _emit_synthesized_campaign(self, run, profiles_by_id: dict) -> None:
        """Thread-fallback campaign events, from the run's report."""
        spec = run.spec
        facts = self._campaign_facts(run)
        self.emit(
            "campaign_start",
            campaign=spec.index,
            device=spec.device_id,
            strategy=spec.strategy,
            target=spec.target,
            seed=spec.seed,
        )
        for ordinal, finding in enumerate(run.report.findings):
            self.emit(
                "finding",
                campaign=spec.index,
                finding=ordinal,
                vulnerability_class=finding.vulnerability_class.value,
                state=finding.state,
                trigger=finding.trigger,
                target=finding.target,
                vendor=profiles_by_id[spec.device_id].vendor,
                sim_time=round(finding.sim_time, 6),
            )
        self.emit(
            "campaign_end",
            campaign=spec.index,
            device=spec.device_id,
            strategy=spec.strategy,
            target=spec.target,
            packets_sent=facts["packets_sent"],
            sweeps=facts["sweeps"],
            elapsed_sim_seconds=round(facts["elapsed_sim_seconds"], 6),
            sent=facts["sent"],
            malformed=facts["malformed"],
            received=facts["received"],
            rejections=facts["rejections"],
            covered_states=facts["covered_states"],
            state_space=facts["state_space"],
            findings=facts["findings"],
        )

    def _fold_campaign(self, run, profiles_by_id: dict) -> None:
        spec = run.spec
        facts = self._campaign_facts(run)
        metrics = self.metrics
        metrics.inc(
            "repro_campaigns_total", target=spec.target, strategy=spec.strategy
        )
        metrics.inc(
            "repro_packets_sent_total",
            facts["packets_sent"],
            target=spec.target,
            strategy=spec.strategy,
        )
        metrics.inc(
            "repro_packets_malformed_total", facts["malformed"], target=spec.target
        )
        metrics.inc(
            "repro_packets_received_total", facts["received"], target=spec.target
        )
        metrics.inc(
            "repro_rejections_total", facts["rejections"], target=spec.target
        )
        if facts["findings"]:
            metrics.inc(
                "repro_findings_total",
                facts["findings"],
                target=spec.target,
                vendor=profiles_by_id[spec.device_id].vendor,
            )
        if facts["coverage_unlocks"] is not None:
            metrics.inc(
                "repro_coverage_unlocks_total",
                facts["coverage_unlocks"],
                target=spec.target,
            )
        for name, key in (
            ("repro_corpus_entries_added_total", "corpus_entries_added"),
            ("repro_corpus_findings_new_total", "corpus_findings_new"),
            ("repro_corpus_findings_duplicate_total", "corpus_findings_duplicate"),
        ):
            if facts[key]:
                metrics.inc(name, facts[key])
        metrics.observe(
            "repro_campaign_sim_seconds",
            facts["elapsed_sim_seconds"],
            buckets=CAMPAIGN_SIM_BUCKETS,
        )

    def _fold_worker_events(self, events) -> None:
        """Shard spans and engine counters from merged worker segments."""
        metrics = self.metrics
        busy: dict[str, float] = {}
        for event in events:
            kind = event.get("event")
            if kind == "shard_end":
                wall = float(event.get("wall_seconds", 0.0))
                worker = str(event.get("worker"))
                self._shard_walls.append(wall)
                busy[worker] = busy.get(worker, 0.0) + wall
                metrics.inc("repro_shards_total", worker=worker)
                metrics.observe(
                    "repro_shard_seconds", wall, buckets=SHARD_SECONDS_BUCKETS
                )
            elif kind == "campaign_end":
                outcomes = event.get("engine_outcomes")
                if outcomes:
                    rejects = outcomes.get("structural-reject", 0)
                    if rejects:
                        metrics.inc(
                            "repro_structural_rejects_total",
                            rejects,
                            target=event.get("target", "unknown"),
                        )
        for worker, seconds in busy.items():
            current = self._worker_busy.get(worker, 0.0) + seconds
            self._worker_busy[worker] = current
            metrics.set_gauge(
                "repro_worker_busy_seconds", round(current, 6), worker=worker
            )
        if len(self._shard_walls) >= 2:
            ordered = sorted(self._shard_walls)
            median = ordered[len(ordered) // 2]
            metrics.set_gauge(
                "repro_straggler_lag_seconds", round(ordered[-1] - median, 6)
            )

    def _fold_supervision(self, supervision) -> None:
        """Supervisor activity counters — zero on a healthy run."""
        metrics = self.metrics
        for name, value in (
            ("repro_shard_retries_total", supervision.retries),
            ("repro_shards_requeued_total", supervision.requeued),
            ("repro_worker_crashes_total", supervision.worker_crashes),
            ("repro_shard_timeouts_total", supervision.timeouts),
            ("repro_pool_restarts_total", supervision.pool_restarts),
            (
                "repro_summary_decode_failures_total",
                supervision.decode_failures,
            ),
            ("repro_shard_bisections_total", supervision.bisections),
            (
                "repro_quarantined_campaigns_total",
                len(supervision.quarantined),
            ),
        ):
            if value:
                metrics.inc(name, value)

    def _fold_fleet_report(self, fleet_report, wall_seconds: float) -> None:
        metrics = self.metrics
        metrics.inc("repro_fleet_runs_total")
        for target, rows in fleet_report.coverage_by_target().items():
            metrics.set_gauge("repro_merged_states", len(rows), target=target)
        for target, space in fleet_report.state_spaces:
            metrics.set_gauge("repro_state_space", space, target=target)
        metrics.set_gauge(
            "repro_simulated_makespan_seconds",
            round(fleet_report.simulated_makespan_seconds, 6),
        )
        metrics.set_gauge("repro_fleet_wall_seconds", round(wall_seconds, 6))
        metrics.set_gauge(
            "repro_findings_deduplicated", len(fleet_report.findings)
        )
