"""Run introspection: list recorded runs, render live fleet status.

Everything here reads the on-disk telemetry artifacts only — manifest,
merged journal, live segments — so it works identically against a
finished run, a run in another process, and a half-written directory a
killed run left behind. ``repro runs tail`` is a poll loop over
:func:`run_status` / :func:`render_status`; the same functions are what
a future control-plane API would serve over HTTP.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path

from repro.telemetry.journal import scan_events
from repro.telemetry.recorder import MANIFEST_FILENAME, read_manifest


@dataclasses.dataclass(frozen=True)
class RunInfo:
    """One row of ``repro runs list``."""

    run_id: str
    path: Path
    status: str
    started: str | None
    finished: str | None
    workers: int
    campaigns: int
    packets: int
    findings: int
    failure_reason: str | None = None
    resumed: bool = False
    fleet_signature: str | None = None


def load_manifest(
    run_dir: str | Path, attempts: int = 5, delay: float = 0.04
) -> dict | None:
    """:func:`read_manifest` with a mid-write retry guard.

    The recorder publishes ``run.json`` atomically, but not every
    writer of a run directory is the recorder (external tools, tests,
    NFS-style filesystems where rename atomicity is weaker), and the
    service polls manifests continuously while the orchestrator updates
    them. A manifest *file that exists but fails to parse* is treated
    as mid-write and re-read up to *attempts* times; a missing file is
    returned as None immediately (that is a real state, not a race).
    """
    path = Path(run_dir) / MANIFEST_FILENAME
    for attempt in range(attempts):
        manifest = read_manifest(run_dir)
        if manifest is not None:
            return manifest
        if not path.exists() or attempt == attempts - 1:
            return None
        time.sleep(delay)
    return None


def run_info(manifest: dict, path: Path) -> RunInfo:
    """Build one :class:`RunInfo` row from a parsed manifest."""
    return RunInfo(
        run_id=manifest.get("run_id", path.name),
        path=path,
        status=manifest.get("status", "unknown"),
        started=manifest.get("started"),
        finished=manifest.get("finished"),
        workers=manifest.get("workers", 0),
        campaigns=manifest.get("campaigns", 0),
        packets=manifest.get("packets", 0),
        findings=manifest.get("findings", 0),
        failure_reason=manifest.get("failure_reason"),
        resumed=bool(manifest.get("resumed", False)),
        fleet_signature=manifest.get("fleet_signature"),
    )


def run_info_dict(info: RunInfo) -> dict:
    """JSON-safe rendering of one run row.

    The single serializer behind ``repro runs list --json`` and the
    service's run-listing endpoint — scripting against either sees the
    same shape.
    """
    data = dataclasses.asdict(info)
    data["path"] = str(info.path)
    return data


def list_runs(root: str | Path) -> list[RunInfo]:
    """Every run directory under *root* (newest first, by run id)."""
    root = Path(root)
    if not root.is_dir():
        return []
    runs = []
    for entry in sorted(root.iterdir(), reverse=True):
        manifest = load_manifest(entry, attempts=2)
        if manifest is None:
            continue
        runs.append(run_info(manifest, entry))
    return runs


def resolve_run(root: str | Path, ref: str) -> Path:
    """Resolve a run reference: a run id under *root*, or a direct path.

    Tolerates a manifest that is briefly missing or mid-write: a run
    directory that exists but has no readable ``run.json`` yet (the
    recorder creates the directory before its first atomic manifest
    publish; non-atomic external writers have a wider window) is
    retried for a few polls before the reference is declared unknown.

    :raises FileNotFoundError: when neither resolves to a recorded run.
    """
    candidate = Path(root) / ref
    direct = Path(ref)
    for attempt in range(3):
        if (candidate / MANIFEST_FILENAME).exists():
            return candidate
        if (direct / MANIFEST_FILENAME).exists():
            return direct
        # Only a directory that exists without its manifest suggests a
        # write in progress; an absent directory is a genuine miss.
        if not candidate.is_dir() and not direct.is_dir():
            break
        if attempt < 2:
            time.sleep(0.05)
    raise FileNotFoundError(
        f"no recorded run {ref!r} under {root!r} (and {ref!r} is not a run "
        "directory)"
    )


@dataclasses.dataclass
class _WorkerRow:
    shards: int = 0
    campaigns: int = 0
    packets: int = 0
    findings: int = 0
    busy_seconds: float = 0.0
    last_event: str = "-"


def run_status(run_dir: str | Path) -> dict:
    """Aggregate a run's journal into one live status structure.

    Reads the merged journal *and* any live worker segments, so the
    view updates while workers are still mid-shard.
    """
    run_dir = Path(run_dir)
    manifest = load_manifest(run_dir) or {}
    events = scan_events(run_dir)
    workers: dict[str, _WorkerRow] = {}
    total_campaigns: int | None = None
    coverage: dict[str, set[str]] = {}
    state_spaces: dict[str, int] = {}
    open_campaigns: dict[int, str] = {}
    finished_campaigns = 0
    packets = 0
    findings = 0
    for event in events:
        kind = event.get("event")
        worker = str(event.get("worker", "?"))
        if worker not in ("orchestrator", "finalizer", "?"):
            row = workers.setdefault(worker, _WorkerRow())
            campaign = event.get("campaign")
            row.last_event = (
                f"{kind} c{campaign}" if campaign is not None else str(kind)
            )
        if kind == "run_start":
            total_campaigns = (total_campaigns or 0) + event.get("campaigns", 0)
        elif kind == "campaign_start":
            open_campaigns[event.get("campaign")] = (
                f"{event.get('device')}/{event.get('target')}"
                f"/{event.get('strategy')}"
            )
        elif kind == "campaign_end":
            open_campaigns.pop(event.get("campaign"), None)
            finished_campaigns += 1
            packets += event.get("packets_sent", 0)
            target = event.get("target", "?")
            coverage.setdefault(target, set()).update(
                event.get("covered_states", ())
            )
            if event.get("state_space"):
                state_spaces.setdefault(target, event["state_space"])
            if worker in workers:
                workers[worker].campaigns += 1
                workers[worker].packets += event.get("packets_sent", 0)
        elif kind == "finding":
            findings += 1
            if worker in workers:
                workers[worker].findings += 1
        elif kind == "shard_end":
            if worker in workers:
                workers[worker].shards += 1
                workers[worker].busy_seconds += event.get("wall_seconds", 0.0)
    return {
        "run_id": manifest.get("run_id", run_dir.name),
        "status": manifest.get("status", "unknown"),
        "failure_reason": manifest.get("failure_reason"),
        "resumed": bool(manifest.get("resumed", False)),
        "fleet_signature": manifest.get("fleet_signature"),
        "workers": workers,
        "total_campaigns": total_campaigns,
        "finished_campaigns": finished_campaigns,
        "in_flight": open_campaigns,
        "packets": packets,
        "findings": findings,
        "coverage": {
            target: sorted(states) for target, states in sorted(coverage.items())
        },
        "state_spaces": state_spaces,
        "events": len(events),
    }


def status_to_dict(status: dict) -> dict:
    """JSON-safe rendering of one :func:`run_status` structure.

    The worker rows are dataclasses (convenient for
    :func:`render_status`); this flattens them — the single serializer
    behind ``repro runs show --json`` and the service's status
    endpoint.
    """
    data = dict(status)
    data["workers"] = {
        worker: dataclasses.asdict(row)
        for worker, row in status["workers"].items()
    }
    data["in_flight"] = {
        str(campaign): label for campaign, label in status["in_flight"].items()
    }
    return data


def render_status(status: dict) -> str:
    """Render one :func:`run_status` structure as a fleet status table."""
    total = status["total_campaigns"]
    progress = (
        f"{status['finished_campaigns']}/{total}"
        if total is not None
        else str(status["finished_campaigns"])
    )
    resumed = " (resumed)" if status.get("resumed") else ""
    lines = [
        f"run {status['run_id']} [{status['status']}]{resumed}  "
        f"campaigns {progress}  packets {status['packets']}  "
        f"findings {status['findings']}  events {status['events']}",
    ]
    if status.get("failure_reason"):
        lines.append(f"failure: {status['failure_reason']}")
    lines += [
        "",
        "| worker | shards | campaigns | packets | findings | busy s | last event |",
        "|--------|--------|-----------|---------|----------|--------|------------|",
    ]
    if status["workers"]:
        for worker, row in sorted(status["workers"].items()):
            lines.append(
                f"| {worker} | {row.shards} | {row.campaigns} |"
                f" {row.packets} | {row.findings} |"
                f" {row.busy_seconds:.2f} | {row.last_event} |"
            )
    else:
        lines.append("| (no worker events yet) | - | - | - | - | - | - |")
    if status["in_flight"]:
        running = ", ".join(
            f"c{campaign} {label}"
            for campaign, label in sorted(status["in_flight"].items())
        )
        lines += ["", f"in flight: {running}"]
    if status["coverage"]:
        spaces = status["state_spaces"]
        merged = ", ".join(
            f"{target} {len(states)}"
            + (f"/{spaces[target]}" if target in spaces else "")
            for target, states in status["coverage"].items()
        )
        lines += ["", f"merged coverage: {merged}"]
    return "\n".join(lines)


def tail_run(
    run_dir: str | Path,
    write,
    interval: float = 0.5,
    once: bool = False,
    max_polls: int | None = None,
) -> str:
    """Follow a run until it leaves the ``running`` state.

    Renders the fleet status table through *write* on every poll (the
    CLI passes its console emitter). Returns the final status string.
    ``once`` renders a single frame; *max_polls* bounds the loop for
    tests and scripts.
    """
    polls = 0
    while True:
        status = run_status(run_dir)
        rendered = render_status(status)
        write(rendered)
        polls += 1
        if once or status["status"] != "running":
            return status["status"]
        if max_polls is not None and polls >= max_polls:
            return status["status"]
        write("")
        time.sleep(interval)
