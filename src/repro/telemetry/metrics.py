"""Hot-path-safe metrics registry: counters, gauges, histograms.

The registry is deliberately *not* wired into the per-packet loop.
Campaign execution already maintains every number the catalog needs —
the sniffer's running counters, the engine's transition tallies, the
summary codec's corpus stats — so metrics are folded in **batched
flushes at campaign/run boundaries** (one
:meth:`MetricsRegistry.inc`/:meth:`~MetricsRegistry.observe` call per
campaign or shard, never per packet). The hot path pays nothing: no
locks, no allocations, no callbacks — which is how the telemetry
overhead gate (``benchmarks/bench_telemetry.py``) stays under 3% of the
``bench_hotpath`` wall-pps baseline.

Snapshots are versioned (:data:`METRICS_SCHEMA_VERSION`) like the fleet
summary codec, so the future control plane can consume them across
releases; exposition is available as a JSON snapshot and as Prometheus
text format (:meth:`MetricsRegistry.to_prometheus`).
"""

from __future__ import annotations

import json
import math

#: Format version stamped on every metrics snapshot.
METRICS_SCHEMA_VERSION = 1

#: Default histogram bucket upper bounds (seconds-flavoured).
DEFAULT_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> _LabelKey:
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: _LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*key, *extra]
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label(value)}"' for name, value in pairs)
    return "{" + body + "}"


class MetricsRegistry:
    """A flat registry of labelled counters, gauges and histograms.

    All mutation methods take label values as keyword arguments::

        registry.inc("repro_packets_sent_total", 3000,
                     target="l2cap", strategy="sequential")
        registry.set_gauge("repro_worker_busy_seconds", 12.5, worker="41")
        registry.observe("repro_shard_seconds", 0.8)
    """

    def __init__(self) -> None:
        self._counters: dict[str, dict[_LabelKey, float]] = {}
        self._gauges: dict[str, dict[_LabelKey, float]] = {}
        self._histograms: dict[str, dict[_LabelKey, dict]] = {}
        self._buckets: dict[str, tuple[float, ...]] = {}

    # -- mutation (batched flush points only — never per packet) --------------------

    def inc(self, name: str, value: float = 1, **labels) -> None:
        """Add *value* to a counter series (created at zero)."""
        if value < 0:
            raise ValueError(f"counter {name} cannot decrease (got {value})")
        series = self._counters.setdefault(name, {})
        key = _label_key(labels)
        series[key] = series.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge series to *value*."""
        self._gauges.setdefault(name, {})[_label_key(labels)] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] | None = None,
        **labels,
    ) -> None:
        """Record one observation into a histogram series.

        The bucket layout is fixed by the first observation of *name*
        (later calls may omit ``buckets``).
        """
        uppers = self._buckets.setdefault(
            name, tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        )
        series = self._histograms.setdefault(name, {})
        key = _label_key(labels)
        state = series.get(key)
        if state is None:
            state = {"counts": [0] * (len(uppers) + 1), "sum": 0.0, "count": 0}
            series[key] = state
        for position, upper in enumerate(uppers):
            if value <= upper:
                state["counts"][position] += 1
                break
        else:
            state["counts"][-1] += 1  # +Inf bucket
        state["sum"] += value
        state["count"] += 1

    # -- exposition ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Versioned plain-data snapshot (JSON-safe, deterministic order)."""

        def _series(table: dict[str, dict[_LabelKey, float]]) -> dict:
            return {
                name: [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(series.items())
                ]
                for name, series in sorted(table.items())
            }

        histograms = {}
        for name, series in sorted(self._histograms.items()):
            uppers = self._buckets[name]
            histograms[name] = [
                {
                    "labels": dict(key),
                    "buckets": [
                        [upper, count]
                        for upper, count in zip(
                            [*uppers, "+Inf"], state["counts"]
                        )
                    ],
                    "sum": state["sum"],
                    "count": state["count"],
                }
                for key, state in sorted(series.items())
            ]
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "counters": _series(self._counters),
            "gauges": _series(self._gauges),
            "histograms": histograms,
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot as deterministic JSON."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4), sorted and stable."""
        lines: list[str] = []
        for name, series in sorted(self._counters.items()):
            lines.append(f"# TYPE {name} counter")
            for key, value in sorted(series.items()):
                lines.append(f"{name}{_render_labels(key)} {_format_value(value)}")
        for name, series in sorted(self._gauges.items()):
            lines.append(f"# TYPE {name} gauge")
            for key, value in sorted(series.items()):
                lines.append(f"{name}{_render_labels(key)} {_format_value(value)}")
        for name, series in sorted(self._histograms.items()):
            uppers = self._buckets[name]
            lines.append(f"# TYPE {name} histogram")
            for key, state in sorted(series.items()):
                cumulative = 0
                for upper, count in zip([*uppers, math.inf], state["counts"]):
                    cumulative += count
                    upper_text = "+Inf" if upper == math.inf else _format_value(upper)
                    lines.append(
                        f"{name}_bucket"
                        f"{_render_labels(key, (('le', upper_text),))}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_render_labels(key)} {_format_value(state['sum'])}"
                )
                lines.append(f"{name}_count{_render_labels(key)} {state['count']}")
        return "\n".join(lines) + ("\n" if lines else "")

    # -- merging ---------------------------------------------------------------------

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histograms add; gauges take the snapshot's value
        (last write wins). Raises on an unknown schema version, like the
        summary codec.
        """
        version = snapshot.get("schema")
        if version != METRICS_SCHEMA_VERSION:
            raise ValueError(
                f"unknown metrics schema version {version} "
                f"(expected {METRICS_SCHEMA_VERSION})"
            )
        for name, rows in snapshot.get("counters", {}).items():
            for row in rows:
                self.inc(name, row["value"], **row["labels"])
        for name, rows in snapshot.get("gauges", {}).items():
            for row in rows:
                self.set_gauge(name, row["value"], **row["labels"])
        for name, rows in snapshot.get("histograms", {}).items():
            for row in rows:
                uppers = tuple(
                    upper for upper, _ in row["buckets"] if upper != "+Inf"
                )
                stored = self._buckets.setdefault(name, uppers)
                if stored != uppers:
                    raise ValueError(
                        f"histogram {name} bucket layout mismatch: "
                        f"{stored} != {uppers}"
                    )
                series = self._histograms.setdefault(name, {})
                key = _label_key(row["labels"])
                state = series.get(key)
                if state is None:
                    state = {
                        "counts": [0] * (len(uppers) + 1),
                        "sum": 0.0,
                        "count": 0,
                    }
                    series[key] = state
                for position, (_, count) in enumerate(row["buckets"]):
                    state["counts"][position] += count
                state["sum"] += row["sum"]
                state["count"] += row["count"]


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)
