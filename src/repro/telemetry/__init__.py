"""Fleet-wide telemetry: event journal, metrics, run introspection.

The observability layer the fuzzing-as-a-service control plane will be
a thin API over. Three pieces, all versioned like the fleet summary
codec:

* :mod:`repro.telemetry.journal` — append-only JSONL event journal per
  fleet run, written process-safely from pool workers via per-worker
  segments merged at run boundaries.
* :mod:`repro.telemetry.metrics` — hot-path-safe counters, gauges and
  histograms, flushed in batches at campaign/run boundaries and exposed
  as JSON snapshots and Prometheus text format.
* :mod:`repro.telemetry.runs` — queryable run history and a live fleet
  status view (``repro runs list|show|tail``).

:mod:`repro.telemetry.adapter` bridges the paper's per-campaign Logfile
(:mod:`repro.core.fuzz_log`) into the journal without forking schemas.
"""

from repro.telemetry.adapter import (
    CAMPAIGN_LOG_EVENT,
    journal_fuzz_log,
    log_entries_from_events,
)
from repro.telemetry.journal import (
    EVENT_SCHEMA_VERSION,
    EVENTS_FILENAME,
    SEGMENTS_DIRNAME,
    JournalWriter,
    merge_segments,
    read_events,
    scan_events,
    shard_journal,
)
from repro.telemetry.metrics import (
    METRICS_SCHEMA_VERSION,
    MetricsRegistry,
)
from repro.telemetry.recorder import (
    MANIFEST_SCHEMA_VERSION,
    PROFILES_DIRNAME,
    RunRecorder,
    new_run_id,
    read_manifest,
)
from repro.telemetry.runs import (
    RunInfo,
    list_runs,
    load_manifest,
    render_status,
    resolve_run,
    run_info,
    run_info_dict,
    run_status,
    status_to_dict,
    tail_run,
)

__all__ = [
    "CAMPAIGN_LOG_EVENT",
    "EVENTS_FILENAME",
    "EVENT_SCHEMA_VERSION",
    "JournalWriter",
    "MANIFEST_SCHEMA_VERSION",
    "METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "PROFILES_DIRNAME",
    "RunInfo",
    "RunRecorder",
    "SEGMENTS_DIRNAME",
    "journal_fuzz_log",
    "list_runs",
    "load_manifest",
    "log_entries_from_events",
    "merge_segments",
    "new_run_id",
    "read_events",
    "read_manifest",
    "render_status",
    "resolve_run",
    "run_info",
    "run_info_dict",
    "run_status",
    "scan_events",
    "shard_journal",
    "status_to_dict",
    "tail_run",
]
