"""Append-only structured event journal (JSONL, one file per fleet run).

Every fleet run owns a directory — ``<telemetry root>/<run_id>/`` — with
one merged ``events.jsonl`` journal. During the run, each pool worker
writes its own *segment* file under ``segments/`` (one writer per file,
so no cross-process locking or new IPC is needed — the same flow the
compact summary blobs use); segments are folded into the merged journal
at run boundaries and on close.

Event schema (versioned, one JSON object per line):

* ``v`` — :data:`EVENT_SCHEMA_VERSION`.
* ``seq`` — per-writer monotonic sequence number.
* ``ts`` — wall-clock epoch seconds, monotonic *within a writer*
  (a backwards clock step never produces out-of-order timestamps in
  one segment).
* ``event`` — event type name (``run_start``, ``campaign_end``, ...).
* ``run_id`` — the fleet run this event belongs to.
* ``worker`` — emitting writer (worker pid, or ``"orchestrator"``).

plus free payload fields; correlation travels as payload — campaign
events carry ``campaign`` (the spec index), finding events additionally
``finding`` (the per-campaign ordinal), so the chain
``run_id → campaign → finding`` is recoverable from any line.

Writers flush per event, so a killed run leaves every completed line
readable; readers skip a torn trailing line instead of failing.
"""

from __future__ import annotations

import json
import logging
import os
import time
from collections.abc import Callable
from pathlib import Path

from repro.errors import JournalWriteError

_log = logging.getLogger(__name__)

#: Optional chaos hook called before every journal append. Installed by
#: :func:`repro.core.faults.install_service_faults` (set here, not
#: imported, because the core package imports telemetry).
_fault_hook: Callable[[str], object] | None = None


def set_fault_hook(hook: Callable[[str], object] | None) -> None:
    """Install (or with None, clear) the journal's fault-injection hook."""
    global _fault_hook
    _fault_hook = hook

#: Format version stamped on every journal event.
EVENT_SCHEMA_VERSION = 1

#: Keys the writer owns; payload fields may not collide with them.
_RESERVED_KEYS = frozenset({"v", "seq", "ts", "event", "run_id", "worker"})

#: Merged journal filename inside a run directory.
EVENTS_FILENAME = "events.jsonl"

#: Per-writer segment directory inside a run directory.
SEGMENTS_DIRNAME = "segments"


class JournalWriter:
    """Append-only JSONL event writer; exactly one writer per file.

    The file is opened lazily on the first :meth:`emit` and every event
    is flushed immediately — the journal is observability output, so a
    crash must never cost more than the line being written.
    """

    def __init__(self, path: str | Path, run_id: str, worker: str | int) -> None:
        self.path = Path(path)
        self.run_id = run_id
        self.worker = worker
        self._seq = 0
        self._last_ts = 0.0
        self._handle = None
        self._closed = False

    def emit(self, event: str, **payload) -> dict:
        """Append one event; returns the record written."""
        if self._closed:
            raise ValueError(f"journal writer for {self.path} is closed")
        collisions = _RESERVED_KEYS.intersection(payload)
        if collisions:
            raise ValueError(
                f"payload keys collide with journal envelope: {sorted(collisions)}"
            )
        ts = max(time.time(), self._last_ts)
        self._last_ts = ts
        record = {
            "v": EVENT_SCHEMA_VERSION,
            "seq": self._seq,
            "ts": round(ts, 6),
            "event": event,
            "run_id": self.run_id,
            "worker": self.worker,
            **payload,
        }
        self._seq += 1
        if _fault_hook is not None:
            try:
                _fault_hook("journal.emit")
            except OSError as error:
                raise JournalWriteError(self.path, error) from error
        try:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(json.dumps(record) + "\n")
            self._handle.flush()
        except OSError as error:
            # Typed: ENOSPC/EIO on the journal must surface as a clean
            # resumable abort, never a raw traceback in a worker.
            raise JournalWriteError(self.path, error) from error
        return record

    def close(self) -> None:
        """Flush and release the file handle (idempotent)."""
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError as error:
                _log.warning("journal %s close failed: %s", self.path, error)
            self._handle = None
        self._closed = True

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def shard_journal(root: str | Path, run_id: str, shard_key: int) -> JournalWriter:
    """Open the segment writer for one worker shard.

    Segment names carry the worker pid and the shard's first spec index,
    which is unique across one run's shards — so concurrent workers (and
    one worker running many shards) never share a file.
    """
    path = (
        Path(root)
        / run_id
        / SEGMENTS_DIRNAME
        / f"worker-{os.getpid()}-shard-{shard_key:06d}.jsonl"
    )
    return JournalWriter(path, run_id=run_id, worker=os.getpid())


def _parse_lines(raw: str, source: str) -> list[dict]:
    """Parse JSONL, skipping blank lines and a torn (killed-run) tail."""
    events = []
    lines = raw.split("\n")
    for position, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if position >= len(lines) - 2:
                # Torn trailing line: the writer died mid-write. The
                # journal up to here is intact; keep it.
                _log.debug("skipping torn trailing line in %s", source)
                continue
            raise ValueError(
                f"corrupt journal line {position + 1} in {source}"
            ) from None
    return events


def read_events(path: str | Path) -> list[dict]:
    """Parse one journal (or segment) file; [] when it does not exist."""
    path = Path(path)
    if not path.exists():
        return []
    return _parse_lines(path.read_text(encoding="utf-8"), str(path))


def _segment_sort_key(event_and_name: tuple[dict, str]) -> tuple:
    event, name = event_and_name
    return (event.get("ts", 0.0), name, event.get("seq", 0))


def merge_segments(run_dir: str | Path) -> list[dict]:
    """Fold every segment file into the run's merged ``events.jsonl``.

    Segment events are appended to the merged journal ordered by
    ``(ts, segment name, seq)`` — timestamps order across writers,
    sequence numbers keep each writer's own order exact even under
    clock jitter — and the segment files are removed. Returns the
    events that were appended (already parsed, for metric folds).

    Append-only by design: the merged journal is only ever extended, so
    a live reader (``repro runs tail``) never sees it rewritten.
    """
    run_dir = Path(run_dir)
    segments_dir = run_dir / SEGMENTS_DIRNAME
    if not segments_dir.is_dir():
        return []
    ordered: list[tuple[dict, str]] = []
    segment_paths = sorted(segments_dir.glob("*.jsonl"))
    for path in segment_paths:
        for event in _parse_lines(path.read_text(encoding="utf-8"), str(path)):
            ordered.append((event, path.name))
    ordered.sort(key=_segment_sort_key)
    events = [event for event, _ in ordered]
    if events:
        with open(run_dir / EVENTS_FILENAME, "a", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")
    for path in segment_paths:
        path.unlink()
    _log.debug(
        "merged %d event(s) from %d segment(s) into %s",
        len(events),
        len(segment_paths),
        run_dir / EVENTS_FILENAME,
    )
    return events


def scan_events(run_dir: str | Path) -> list[dict]:
    """All events currently readable for a run: merged journal + live segments.

    This is the live view ``repro runs tail`` polls — segment events are
    included *without* merging them, ordered after the merged journal by
    the same ``(ts, segment, seq)`` key.
    """
    run_dir = Path(run_dir)
    events = read_events(run_dir / EVENTS_FILENAME)
    segments_dir = run_dir / SEGMENTS_DIRNAME
    if segments_dir.is_dir():
        live: list[tuple[dict, str]] = []
        for path in sorted(segments_dir.glob("*.jsonl")):
            for event in read_events(path):
                live.append((event, path.name))
        live.sort(key=_segment_sort_key)
        events.extend(event for event, _ in live)
    return events
