"""Bridge between the paper's Logfile and the fleet event journal.

The paper's only observability artifact is the per-campaign structured
log (Fig. 5, :mod:`repro.core.fuzz_log`). Rather than forking a second
schema, each :class:`~repro.core.fuzz_log.LogEntry` is embedded verbatim
(its :meth:`~repro.core.fuzz_log.LogEntry.as_dict` rendering) as the
``record`` payload of one ``campaign_log`` journal event — so a
campaign's Logfile and the fleet telemetry are a single stream, and
anything that can read the journal can reconstruct the exact paper-era
log with :func:`log_entries_from_events`.
"""

from __future__ import annotations

from repro.core.fuzz_log import FuzzLog, LogEntry, LogLevel

#: Journal event type carrying one embedded Logfile record.
CAMPAIGN_LOG_EVENT = "campaign_log"


def journal_fuzz_log(journal, log: FuzzLog, campaign: int) -> int:
    """Emit every Logfile record of one campaign into *journal*.

    One ``campaign_log`` event per :class:`LogEntry`, correlated to the
    campaign by spec index. Returns the number of events written.
    """
    for entry in log.entries:
        journal.emit(CAMPAIGN_LOG_EVENT, campaign=campaign, record=entry.as_dict())
    return len(log.entries)


def log_entries_from_events(events, campaign: int | None = None) -> list[LogEntry]:
    """Reconstruct Logfile entries from journal events (the reverse map).

    :param campaign: restrict to one campaign's stream; None keeps all.
    """
    entries = []
    for event in events:
        if event.get("event") != CAMPAIGN_LOG_EVENT:
            continue
        if campaign is not None and event.get("campaign") != campaign:
            continue
        record = event["record"]
        entries.append(
            LogEntry(
                sim_time=record["t"],
                level=LogLevel(record["level"]),
                phase=record["phase"],
                message=record["message"],
                detail=record.get("detail", {}),
            )
        )
    return entries
