"""Codec for the 26 Bluetooth 5.2 L2CAP signaling commands.

This module replaces the paper's use of scapy. Packets are represented by
:class:`L2capPacket`, a generic container driven by declarative
:class:`CommandSpec` tables, so the fuzzer's mutation engine can reflect
over fields by name instead of hard-coding offsets.

Framing follows paper Fig. 3::

    | Payload Length (2) | Header CID (2) | Code (1) | Identifier (1) |
    | Data Length (2)    | Data Fields (n) | [garbage tail]           |

A key subtlety reproduced from paper Fig. 7: the *garbage tail* appended
by the mutator is **not** counted in ``Payload Length`` / ``Data Length``.
The declared lengths describe the un-garbaged packet, so a spec-conformant
receiver parses the declared region and is left with trailing bytes — the
exact situation that triggered the Pixel 3 null-pointer dereference.
"""

from __future__ import annotations

import dataclasses
import functools
import struct
from collections.abc import Iterator, Mapping

from repro.errors import PacketDecodeError, PacketEncodeError
from repro.l2cap.constants import (
    COMMAND_HEADER_LEN,
    COMMAND_NAME_BY_VALUE,
    L2CAP_HEADER_LEN,
    MAX_L2CAP_PAYLOAD,
    SIGNALING_CID,
    CommandCode,
    ConfigOptionType,
)

#: Sentinel distinguishing "spec not yet resolved" from "no spec".
_UNSET = object()


@dataclasses.dataclass(frozen=True)
class FieldSpec:
    """One fixed-width data field of an L2CAP command.

    :param name: canonical lower-case field name (e.g. ``"psm"``).
    :param size: width in bytes (1 or 2; multi-byte fields are
        little-endian per the Bluetooth specification).
    :param default: value used when the caller does not supply one.
    """

    name: str
    size: int
    default: int = 0

    @property
    def max_value(self) -> int:
        """Largest value representable in this field."""
        return (1 << (8 * self.size)) - 1


@dataclasses.dataclass(frozen=True)
class CommandSpec:
    """Layout of one L2CAP command: fixed fields plus an optional tail.

    :param code: the :class:`CommandCode` this spec describes.
    :param fields: ordered fixed-width fields.
    :param tail_name: name of the trailing variable-length region
        (``"options"``, ``"data"``, ``"cid_list"``) or None if the
        command has no variable part.
    """

    code: CommandCode
    fields: tuple[FieldSpec, ...]
    tail_name: str | None = None

    @functools.cached_property
    def fixed_size(self) -> int:
        """Total bytes occupied by the fixed-width fields.

        Cached: specs are immutable module-level constants, and the hot
        path asks for this on every length computation.
        """
        return sum(field.size for field in self.fields)

    @functools.cached_property
    def defaults(self) -> dict[str, int]:
        """Field-name → default-value map (precomputed for construction)."""
        return {field.name: field.default for field in self.fields}

    @functools.cached_property
    def pack_format(self) -> str:
        """``struct`` format encoding all fixed fields in one call."""
        return "<" + "".join("B" if field.size == 1 else "H" for field in self.fields)

    @functools.cached_property
    def frame_format(self) -> str:
        """``struct`` format for both L2CAP headers plus the fixed fields.

        Lets the encoder emit ``Payload Length | CID | Code | Identifier
        | Data Length | fields...`` in a single pack call.
        """
        return "<HHBBH" + self.pack_format[1:]

    def field(self, name: str) -> FieldSpec:
        """Return the spec for field *name*.

        :raises KeyError: if the command has no such field.
        """
        for field in self.fields:
            if field.name == name:
                return field
        raise KeyError(f"{self.code.name} has no field {name!r}")

    def has_field(self, name: str) -> bool:
        """Return True if the command carries a field called *name*."""
        return any(field.name == name for field in self.fields)


def _u16(name: str, default: int = 0) -> FieldSpec:
    return FieldSpec(name, 2, default)


def _u8(name: str, default: int = 0) -> FieldSpec:
    return FieldSpec(name, 1, default)


#: Declarative layout of every Bluetooth 5.2 signaling command
#: (Core 5.2 Vol 3 Part A §4).
COMMAND_SPECS: dict[CommandCode, CommandSpec] = {
    spec.code: spec
    for spec in (
        CommandSpec(
            CommandCode.COMMAND_REJECT,
            (_u16("reason"),),
            tail_name="data",
        ),
        CommandSpec(
            CommandCode.CONNECTION_REQ,
            (_u16("psm"), _u16("scid")),
        ),
        CommandSpec(
            CommandCode.CONNECTION_RSP,
            (_u16("dcid"), _u16("scid"), _u16("result"), _u16("status")),
        ),
        CommandSpec(
            CommandCode.CONFIGURATION_REQ,
            (_u16("dcid"), _u16("flags")),
            tail_name="options",
        ),
        CommandSpec(
            CommandCode.CONFIGURATION_RSP,
            (_u16("scid"), _u16("flags"), _u16("result")),
            tail_name="options",
        ),
        CommandSpec(
            CommandCode.DISCONNECTION_REQ,
            (_u16("dcid"), _u16("scid")),
        ),
        CommandSpec(
            CommandCode.DISCONNECTION_RSP,
            (_u16("dcid"), _u16("scid")),
        ),
        CommandSpec(CommandCode.ECHO_REQ, (), tail_name="data"),
        CommandSpec(CommandCode.ECHO_RSP, (), tail_name="data"),
        CommandSpec(
            CommandCode.INFORMATION_REQ,
            (_u16("info_type", default=0x0002),),
        ),
        CommandSpec(
            CommandCode.INFORMATION_RSP,
            (_u16("info_type", default=0x0002), _u16("result")),
            tail_name="data",
        ),
        CommandSpec(
            CommandCode.CREATE_CHANNEL_REQ,
            (_u16("psm"), _u16("scid"), _u8("cont_id")),
        ),
        CommandSpec(
            CommandCode.CREATE_CHANNEL_RSP,
            (_u16("dcid"), _u16("scid"), _u16("result"), _u16("status")),
        ),
        CommandSpec(
            CommandCode.MOVE_CHANNEL_REQ,
            (_u16("icid"), _u8("cont_id")),
        ),
        CommandSpec(
            CommandCode.MOVE_CHANNEL_RSP,
            (_u16("icid"), _u16("result")),
        ),
        CommandSpec(
            CommandCode.MOVE_CHANNEL_CONFIRMATION_REQ,
            (_u16("icid"), _u16("result")),
        ),
        CommandSpec(
            CommandCode.MOVE_CHANNEL_CONFIRMATION_RSP,
            (_u16("icid"),),
        ),
        CommandSpec(
            CommandCode.CONNECTION_PARAMETER_UPDATE_REQ,
            (
                _u16("interval_min", default=0x0006),
                _u16("interval_max", default=0x0C80),
                _u16("latency"),
                _u16("timeout", default=0x0A00),
            ),
        ),
        CommandSpec(
            CommandCode.CONNECTION_PARAMETER_UPDATE_RSP,
            (_u16("result"),),
        ),
        CommandSpec(
            CommandCode.LE_CREDIT_BASED_CONNECTION_REQ,
            (
                _u16("spsm", default=0x0080),
                _u16("scid"),
                _u16("mtu", default=0x00F7),
                _u16("mps", default=0x00F7),
                _u16("credit", default=0x0001),
            ),
        ),
        CommandSpec(
            CommandCode.LE_CREDIT_BASED_CONNECTION_RSP,
            (
                _u16("dcid"),
                _u16("mtu", default=0x00F7),
                _u16("mps", default=0x00F7),
                _u16("credit", default=0x0001),
                _u16("result"),
            ),
        ),
        CommandSpec(
            CommandCode.FLOW_CONTROL_CREDIT_IND,
            (_u16("cid"), _u16("credit", default=0x0001)),
        ),
        CommandSpec(
            CommandCode.CREDIT_BASED_CONNECTION_REQ,
            (
                _u16("spsm", default=0x0080),
                _u16("mtu", default=0x00F7),
                _u16("mps", default=0x00F7),
                _u16("credit", default=0x0001),
            ),
            tail_name="cid_list",
        ),
        CommandSpec(
            CommandCode.CREDIT_BASED_CONNECTION_RSP,
            (
                _u16("mtu", default=0x00F7),
                _u16("mps", default=0x00F7),
                _u16("credit", default=0x0001),
                _u16("result"),
            ),
            tail_name="cid_list",
        ),
        CommandSpec(
            CommandCode.CREDIT_BASED_RECONFIGURE_REQ,
            (_u16("mtu", default=0x00F7), _u16("mps", default=0x00F7)),
            tail_name="cid_list",
        ),
        CommandSpec(
            CommandCode.CREDIT_BASED_RECONFIGURE_RSP,
            (_u16("result"),),
        ),
    )
}

assert len(COMMAND_SPECS) == 26, "Bluetooth 5.2 defines 26 L2CAP commands"

#: Hot-path spec lookup keyed by plain int code — a dict hit instead of a
#: ``CommandCode(...)`` enum construction per packet.
SPEC_BY_CODE: dict[int, CommandSpec] = {
    int(code): spec for code, spec in COMMAND_SPECS.items()
}


#: Attributes whose mutation changes the wire encoding (and therefore
#: invalidates the packet's cached bytes and derived validation facts).
#: ``code`` and ``fields`` are handled separately in ``__setattr__``.
_WIRE_ATTRS = frozenset(
    {
        "identifier",
        "tail",
        "garbage",
        "header_cid",
        "declared_payload_len",
        "declared_data_len",
    }
)


class _FieldMap(dict):
    """Field dict that invalidates its packet's codec caches on mutation.

    Packets stay mutable by design (the mutation engine pokes fields in
    place), so the encode cache is guarded by a dirty flag: every mutating
    dict operation drops the owning packet's cached wire bytes and
    validation facts.

    ``_owner`` is a deliberate strong back-reference: a weakref would
    avoid the packet↔fields reference cycle, but weakrefs neither pickle
    (fleet process-pool jobs) nor deepcopy to the copied owner — both
    would silently detach invalidation. The cycle is collected by the
    generational GC; the million-packet bounded-memory test pins that
    this keeps up at campaign rates.
    """

    _owner = None

    def _touch(self) -> None:
        owner = self._owner
        if owner is not None:
            cache = owner.__dict__
            cache["_wire"] = None
            cache["_intrinsic"] = None

    def __setitem__(self, key, value) -> None:
        dict.__setitem__(self, key, value)
        self._touch()

    def __delitem__(self, key) -> None:
        dict.__delitem__(self, key)
        self._touch()

    def __ior__(self, other):
        dict.update(self, other)
        self._touch()
        return self

    def clear(self) -> None:
        dict.clear(self)
        self._touch()

    def pop(self, *args):
        value = dict.pop(self, *args)
        self._touch()
        return value

    def popitem(self):
        item = dict.popitem(self)
        self._touch()
        return item

    def setdefault(self, key, default=None):
        if key in self:
            return dict.__getitem__(self, key)
        dict.__setitem__(self, key, default)
        self._touch()
        return default

    def update(self, *args, **kwargs) -> None:
        dict.update(self, *args, **kwargs)
        self._touch()


@dataclasses.dataclass
class L2capPacket:
    """One L2CAP signaling packet, mutable for fuzzing purposes.

    :param code: command code (may be an int outside :class:`CommandCode`
        when deliberately malformed).
    :param identifier: matching identifier for request/response pairing.
    :param fields: fixed-width data-field values keyed by canonical name.
    :param tail: variable-length region (config options, echo data, CID
        lists) in already-encoded form.
    :param garbage: extra bytes appended *beyond* the declared lengths —
        the paper's garbage tail. Never counted in Payload/Data Length.
    :param header_cid: destination channel of the packet; 0x0001 for
        signaling (the fixed ``F`` field).
    :param declared_payload_len: explicit override of the Payload Length
        header; None derives it from the content (the valid value).
    :param declared_data_len: explicit override of Data Length; None
        derives it. Baseline fuzzers mutate these to model ``D``-field
        corruption.
    :param fill_defaults: fill absent fields with spec defaults at
        construction. The decoder turns this off so that truncated
        packets stay truncated.

    Encoding is cached: the first :meth:`encode` stores the wire bytes on
    the instance and every later call (and :attr:`wire_length`, and the
    validator's structural pass) reuses them. Packets stay mutable — any
    assignment to a wire-relevant attribute or mutation of :attr:`fields`
    drops the cache, so a re-encode always reflects the change.
    """

    code: int
    identifier: int = 1
    fields: dict[str, int] = dataclasses.field(default_factory=dict)
    tail: bytes = b""
    garbage: bytes = b""
    header_cid: int = SIGNALING_CID
    declared_payload_len: int | None = None
    declared_data_len: int | None = None
    fill_defaults: dataclasses.InitVar[bool] = True

    # Cache slots — deliberately unannotated so the dataclass machinery
    # does not treat them as fields; the class-level defaults double as
    # the "empty" state read safely during __init__.
    _wire = None
    _spec_cache = _UNSET
    # Structural validation facts memoized by repro.l2cap.validation.
    _intrinsic = None

    def __init__(
        self,
        code: int,
        identifier: int = 1,
        fields: dict[str, int] | None = None,
        tail: bytes = b"",
        garbage: bytes = b"",
        header_cid: int = SIGNALING_CID,
        declared_payload_len: int | None = None,
        declared_data_len: int | None = None,
        fill_defaults: bool = True,
    ) -> None:
        # Hand-written constructor for the hot path: a campaign builds
        # tens of thousands of packets, so attribute writes go straight
        # into the instance dict (there is no cache to invalidate during
        # construction) and spec defaults come from a precomputed map.
        field_map = _FieldMap() if fields is None else _FieldMap(fields)
        field_map._owner = self
        spec = SPEC_BY_CODE.get(code)
        if spec is not None and fill_defaults:
            if field_map:
                for name, default in spec.defaults.items():
                    if name not in field_map:
                        dict.__setitem__(field_map, name, default)
            else:
                dict.update(field_map, spec.defaults)
        instance = self.__dict__
        instance["code"] = code
        instance["identifier"] = identifier
        instance["fields"] = field_map
        instance["tail"] = tail
        instance["garbage"] = garbage
        instance["header_cid"] = header_cid
        instance["declared_payload_len"] = declared_payload_len
        instance["declared_data_len"] = declared_data_len
        instance["_spec_cache"] = spec

    def __setattr__(self, name: str, value) -> None:
        cache = self.__dict__
        if name in _WIRE_ATTRS:
            cache[name] = value
            cache["_wire"] = None
            cache["_intrinsic"] = None
        elif name == "code":
            cache[name] = value
            cache["_wire"] = None
            cache["_intrinsic"] = None
            cache["_spec_cache"] = _UNSET
        elif name == "fields":
            fields = _FieldMap(value)
            fields._owner = self
            cache["fields"] = fields
            cache["_wire"] = None
            cache["_intrinsic"] = None
        else:
            cache[name] = value

    # -- reflection --------------------------------------------------------

    @property
    def is_data_frame(self) -> bool:
        """True for non-signaling frames (basic B-frames).

        Data frames have no command header: the payload region is the
        upper-layer payload verbatim, carried in :attr:`tail`.
        """
        return self.header_cid != SIGNALING_CID

    @property
    def spec(self) -> CommandSpec | None:
        """The command layout, or None for unknown/invalid codes."""
        spec = self._spec_cache
        if spec is _UNSET:
            spec = SPEC_BY_CODE.get(self.code)
            self.__dict__["_spec_cache"] = spec
        return spec

    @property
    def command_name(self) -> str:
        """Human-readable command name (``"UNKNOWN_0xNN"`` if invalid)."""
        name = COMMAND_NAME_BY_VALUE.get(self.code)
        if name is None:
            return f"UNKNOWN_0x{self.code:02X}"
        return name

    def field_names(self) -> tuple[str, ...]:
        """Names of the fixed-width data fields this command carries."""
        spec = self.spec
        if spec is None:
            return tuple(self.fields)
        return tuple(field.name for field in spec.fields)

    # -- length bookkeeping -------------------------------------------------

    @property
    def data_length(self) -> int:
        """Declared Data Length (derived from content unless overridden)."""
        if self.declared_data_len is not None:
            return self.declared_data_len
        return self._natural_data_length()

    @property
    def payload_length(self) -> int:
        """Declared Payload Length (derived unless overridden)."""
        if self.declared_payload_len is not None:
            return self.declared_payload_len
        if self.is_data_frame:
            return len(self.tail)
        return COMMAND_HEADER_LEN + self._natural_data_length()

    def _natural_data_length(self) -> int:
        spec = self.spec
        if spec is None:
            fixed = 2 * len(self.fields)
        else:
            fixed = spec.fixed_size
        return fixed + len(self.tail)

    @property
    def wire_length(self) -> int:
        """Actual bytes on the wire, including the garbage tail.

        Computed arithmetically in O(1) — the body length never depends
        on the declared-length overrides (those only lie in the headers),
        so no encoding pass is needed.
        """
        wire = self._wire
        if wire is not None:
            return len(wire)
        if self.header_cid != SIGNALING_CID:
            return L2CAP_HEADER_LEN + len(self.tail) + len(self.garbage)
        spec = self.spec
        fixed = spec.fixed_size if spec is not None else 2 * len(self.fields)
        return (
            L2CAP_HEADER_LEN
            + COMMAND_HEADER_LEN
            + fixed
            + len(self.tail)
            + len(self.garbage)
        )

    # -- codec ---------------------------------------------------------------

    def encode(self) -> bytes:
        """Serialise to wire bytes (paper Fig. 3 framing).

        The result is cached on the instance; any mutation of a
        wire-relevant attribute (or of :attr:`fields`) invalidates it.

        :raises PacketEncodeError: if a field value does not fit its width
            or the payload would exceed the 65,535-byte L2CAP maximum.
        """
        wire = self._wire
        if wire is None:
            wire = self._encode_wire()
            self.__dict__["_wire"] = wire
        return wire

    def _encode_wire(self) -> bytes:
        declared_payload = self.declared_payload_len
        if self.header_cid != SIGNALING_CID:
            # B-frame: the payload is the upper-layer bytes verbatim.
            payload_len = (
                len(self.tail) if declared_payload is None else declared_payload
            )
            if payload_len > MAX_L2CAP_PAYLOAD:
                raise PacketEncodeError(
                    f"payload length {payload_len} exceeds L2CAP maximum"
                )
            return (
                struct.pack("<HH", payload_len, self.header_cid)
                + self.tail
                + self.garbage
            )
        spec = self.spec
        fields = self.fields
        fixed = spec.fixed_size if spec is not None else 2 * len(fields)
        natural = fixed + len(self.tail)
        payload_len = (
            COMMAND_HEADER_LEN + natural if declared_payload is None else declared_payload
        )
        if payload_len > MAX_L2CAP_PAYLOAD:
            raise PacketEncodeError(
                f"payload length {payload_len} exceeds L2CAP maximum"
            )
        data_len = (
            natural if self.declared_data_len is None else self.declared_data_len
        )
        if spec is not None:
            try:
                # Headers and fixed fields in a single pack call.
                head = struct.pack(
                    spec.frame_format,
                    payload_len,
                    self.header_cid,
                    self.code & 0xFF,
                    self.identifier & 0xFF,
                    data_len,
                    *[fields.get(field.name, field.default) for field in spec.fields],
                )
                return head + self.tail + self.garbage
            except struct.error:
                # A field value does not fit its width (or a non-int
                # header slipped in): fall through to the field-by-field
                # path, which names the offender.
                pass
        return (
            struct.pack(
                "<HHBBH",
                payload_len,
                self.header_cid,
                self.code & 0xFF,
                self.identifier & 0xFF,
                data_len,
            )
            + self._encode_fields()
            + self.tail
            + self.garbage
        )

    def _encode_fields(self) -> bytes:
        spec = self.spec
        fields = self.fields
        if spec is None:
            # Unknown command: encode whatever fields exist as u16 in
            # insertion order so deliberately-invalid codes still fuzz.
            return b"".join(
                struct.pack("<H", value & 0xFFFF) for value in fields.values()
            )
        try:
            return struct.pack(
                spec.pack_format,
                *[fields.get(field.name, field.default) for field in spec.fields],
            )
        except struct.error:
            # Some value does not fit its width: redo field by field to
            # name the offender in the error.
            for field in spec.fields:
                value = fields.get(field.name, field.default)
                if not 0 <= value <= field.max_value:
                    raise PacketEncodeError(
                        f"{self.command_name}.{field.name}={value:#x} does not "
                        f"fit in {field.size} byte(s)"
                    ) from None
            raise  # pragma: no cover - struct failure without a bad field

    @classmethod
    def decode(cls, raw: bytes) -> "L2capPacket":
        """Parse wire bytes into a packet.

        Trailing bytes beyond the declared Data Length are preserved in
        :attr:`garbage`, mirroring how a real stack sees a garbage tail.

        :raises PacketDecodeError: on truncated or inconsistent framing.
        """
        if len(raw) < L2CAP_HEADER_LEN:
            raise PacketDecodeError(
                f"packet too short: {len(raw)} bytes < header {L2CAP_HEADER_LEN}"
            )
        payload_len, header_cid = struct.unpack_from("<HH", raw, 0)
        if header_cid != SIGNALING_CID:
            return cls._decode_data_frame(raw, payload_len, header_cid)
        if len(raw) < L2CAP_HEADER_LEN + COMMAND_HEADER_LEN:
            raise PacketDecodeError(
                f"signaling packet too short: {len(raw)} bytes < minimum "
                f"{L2CAP_HEADER_LEN + COMMAND_HEADER_LEN}"
            )
        code, identifier, data_len = struct.unpack_from("<BBH", raw, L2CAP_HEADER_LEN)
        body = raw[L2CAP_HEADER_LEN + COMMAND_HEADER_LEN :]
        if data_len > len(body):
            raise PacketDecodeError(
                f"declared data length {data_len} exceeds available "
                f"{len(body)} bytes"
            )
        declared = body[:data_len]
        garbage = body[data_len:]

        fields: dict[str, int] = {}
        tail = b""
        spec = SPEC_BY_CODE.get(code)
        if spec is None:
            tail = declared
        else:
            offset = 0
            for field in spec.fields:
                if offset + field.size > len(declared):
                    # Short packet: remaining fields absent. Keep what we
                    # parsed; stacks treat this as malformed.
                    break
                if field.size == 1:
                    (value,) = struct.unpack_from("<B", declared, offset)
                else:
                    (value,) = struct.unpack_from("<H", declared, offset)
                fields[field.name] = value
                offset += field.size
            tail = declared[offset:]

        packet = cls(
            code=code,
            identifier=identifier,
            fields=fields,
            tail=tail,
            garbage=garbage,
            header_cid=header_cid,
            fill_defaults=False,
        )
        # Preserve declared lengths verbatim if they disagree with content,
        # so re-encoding is byte-faithful and length lies survive a
        # decode/encode round trip.
        if payload_len != packet.payload_length:
            packet.declared_payload_len = payload_len
        if data_len != packet._natural_data_length():
            packet.declared_data_len = data_len
        # Prime the codec caches with the bytes just parsed: a decoded
        # packet re-encodes to its exact wire image without a second
        # serialisation pass (until it is mutated).
        packet.__dict__["_wire"] = bytes(raw)
        packet.__dict__["_spec_cache"] = spec
        return packet

    @classmethod
    def _decode_data_frame(
        cls, raw: bytes, payload_len: int, header_cid: int
    ) -> "L2capPacket":
        body = raw[L2CAP_HEADER_LEN:]
        if payload_len > len(body):
            raise PacketDecodeError(
                f"declared payload length {payload_len} exceeds available "
                f"{len(body)} bytes"
            )
        packet = cls(
            code=0,
            identifier=0,
            fields={},
            tail=body[:payload_len],
            garbage=body[payload_len:],
            header_cid=header_cid,
            fill_defaults=False,
        )
        packet.__dict__["_wire"] = bytes(raw)
        packet.__dict__["_spec_cache"] = None
        return packet

    # -- convenience ---------------------------------------------------------

    def copy(self) -> "L2capPacket":
        """Deep-enough copy for independent mutation."""
        return dataclasses.replace(
            self, fields=dict(self.fields), fill_defaults=False
        )

    def __copy__(self) -> "L2capPacket":
        # A shallow copy must not share the _FieldMap (its owner back-ref
        # would invalidate the wrong packet's caches); reuse copy().
        return self.copy()

    def __getstate__(self) -> dict:
        # Strip the codec caches from pickled/deepcopied state: they are
        # cheap to rebuild, and the _UNSET sentinel in _spec_cache is
        # identity-compared, so a serialised copy of it would no longer
        # be recognised as "unresolved". Missing keys fall back to the
        # class-level empty-cache defaults on restore.
        state = dict(self.__dict__)
        state.pop("_wire", None)
        state.pop("_intrinsic", None)
        state.pop("_spec_cache", None)
        return state

    def loopback_view(self) -> "L2capPacket | None":
        """Return self when ``decode(encode(self))`` is logically identical.

        The in-process virtual link uses this to hand the receiving stack
        the already-decoded packet object instead of re-parsing the wire
        bytes it just serialised. None means the packet does not survive
        a decode round trip unchanged (length lies, missing or extra
        fields, unknown codes, out-of-range identifiers) and the receiver
        must parse the real bytes to see what a conformant stack sees.
        """
        if self.declared_payload_len is not None or self.declared_data_len is not None:
            return None
        if self.header_cid != SIGNALING_CID:
            # B-frame: decode yields code=0, identifier=0, empty fields.
            if self.code == 0 and self.identifier == 0 and not self.fields:
                return self
            return None
        spec = self.spec
        if spec is None:
            return None
        if not 0 <= self.identifier <= 0xFF:
            return None
        fields = self.fields
        if len(fields) != len(spec.fields):
            return None
        for field in spec.fields:
            if field.name not in fields:
                return None
        return self

    @classmethod
    def from_wire_parts(
        cls,
        code: int,
        identifier: int,
        field_values: dict[str, int],
        tail: bytes,
        garbage: bytes,
        wire: bytes,
        spec: CommandSpec | None,
        header_cid: int = SIGNALING_CID,
    ) -> "L2capPacket":
        """Build a packet around already-assembled *wire* bytes.

        The bytes-level mutation fast path serialises the frame itself
        (template patching instead of a field walk), so the constructor
        and :meth:`encode` would each redo work the caller has in hand.
        This bypasses both: the instance dict is populated directly and
        the encode cache primed with *wire*, exactly as :meth:`decode`
        primes a parsed packet. The caller guarantees that *wire* is what
        :meth:`encode` would produce for these parts — the wire-fast-path
        equivalence tests pin that contract per target.
        """
        packet = cls.__new__(cls)
        fields = _FieldMap(field_values)
        fields._owner = packet
        instance = packet.__dict__
        instance["code"] = code
        instance["identifier"] = identifier
        instance["fields"] = fields
        instance["tail"] = tail
        instance["garbage"] = garbage
        instance["header_cid"] = header_cid
        instance["declared_payload_len"] = None
        instance["declared_data_len"] = None
        instance["_spec_cache"] = spec
        instance["_wire"] = wire
        return packet

    def describe(self) -> str:
        """One-line human-readable rendering for logs."""
        if self.is_data_frame:
            # Upper-layer traffic (SDP/RFCOMM/OBEX): the payload bytes
            # are the whole story.
            return f"DATA(cid=0x{self.header_cid:04X}) payload={self.tail.hex()}"
        fields = ", ".join(f"{k}=0x{v:04X}" for k, v in self.fields.items())
        extra = ""
        if self.tail:
            extra += f" tail={self.tail.hex()}"
        if self.garbage:
            extra += f" garbage={self.garbage.hex()}"
        return f"{self.command_name}(id={self.identifier}, {fields}){extra}"


# ---------------------------------------------------------------------------
# Configuration options (the OPT / QoS / MTU members of MA)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ConfigOption:
    """One configuration option TLV (type, length, value)."""

    option_type: int
    value: bytes

    def encode(self) -> bytes:
        """Serialise as ``type(1) | length(1) | value``."""
        if len(self.value) > 0xFF:
            raise PacketEncodeError("config option value exceeds 255 bytes")
        return struct.pack("<BB", self.option_type & 0xFF, len(self.value)) + self.value


def mtu_option(mtu: int = 0x0400) -> ConfigOption:
    """Build the standard MTU configuration option."""
    return ConfigOption(ConfigOptionType.MTU, struct.pack("<H", mtu & 0xFFFF))


def flush_timeout_option(timeout: int = 0xFFFF) -> ConfigOption:
    """Build the flush-timeout configuration option."""
    return ConfigOption(ConfigOptionType.FLUSH_TIMEOUT, struct.pack("<H", timeout & 0xFFFF))


def qos_option(
    service_type: int = 0x01,
    token_rate: int = 0,
    token_bucket: int = 0,
    peak_bandwidth: int = 0,
    latency: int = 0xFFFFFFFF,
    delay_variation: int = 0xFFFFFFFF,
) -> ConfigOption:
    """Build the QoS configuration option (flags byte + 5 u32 parameters)."""
    value = struct.pack(
        "<BBIIIII",
        0,
        service_type & 0xFF,
        token_rate,
        token_bucket,
        peak_bandwidth,
        latency,
        delay_variation,
    )
    return ConfigOption(ConfigOptionType.QOS, value)


def encode_options(options: list[ConfigOption]) -> bytes:
    """Concatenate configuration options into a tail region."""
    return b"".join(option.encode() for option in options)


def decode_options(raw: bytes) -> list[ConfigOption]:
    """Parse a tail region into configuration options.

    :raises PacketDecodeError: on a truncated TLV.
    """
    options = []
    offset = 0
    while offset < len(raw):
        if offset + 2 > len(raw):
            raise PacketDecodeError("truncated config option header")
        option_type, length = struct.unpack_from("<BB", raw, offset)
        offset += 2
        if offset + length > len(raw):
            raise PacketDecodeError("truncated config option value")
        options.append(ConfigOption(option_type, raw[offset : offset + length]))
        offset += length
    return options


def encode_cid_list(cids: list[int]) -> bytes:
    """Encode a list of CIDs (credit-based commands' tail)."""
    return b"".join(struct.pack("<H", cid & 0xFFFF) for cid in cids)


def decode_cid_list(raw: bytes) -> list[int]:
    """Decode the CID-list tail of credit-based commands."""
    if len(raw) % 2:
        raise PacketDecodeError("CID list has odd length")
    return [value for (value,) in struct.iter_unpack("<H", raw)]


# ---------------------------------------------------------------------------
# Builders for the normal packets the state-guiding phase sends
# ---------------------------------------------------------------------------


def connection_request(psm: int, scid: int, identifier: int = 1) -> L2capPacket:
    """Build a spec-valid Connection Request."""
    return L2capPacket(
        CommandCode.CONNECTION_REQ,
        identifier,
        {"psm": psm, "scid": scid},
    )


def connection_response(
    dcid: int, scid: int, result: int, status: int = 0, identifier: int = 1
) -> L2capPacket:
    """Build a Connection Response."""
    return L2capPacket(
        CommandCode.CONNECTION_RSP,
        identifier,
        {"dcid": dcid, "scid": scid, "result": result, "status": status},
    )


def configuration_request(
    dcid: int,
    identifier: int = 1,
    options: list[ConfigOption] | None = None,
    flags: int = 0,
) -> L2capPacket:
    """Build a Configuration Request (default: a single MTU option)."""
    if options is None:
        options = [mtu_option()]
    return L2capPacket(
        CommandCode.CONFIGURATION_REQ,
        identifier,
        {"dcid": dcid, "flags": flags},
        tail=encode_options(options),
    )


def configuration_response(
    scid: int, result: int = 0, identifier: int = 1, flags: int = 0
) -> L2capPacket:
    """Build a Configuration Response."""
    return L2capPacket(
        CommandCode.CONFIGURATION_RSP,
        identifier,
        {"scid": scid, "flags": flags, "result": result},
    )


def disconnection_request(dcid: int, scid: int, identifier: int = 1) -> L2capPacket:
    """Build a Disconnection Request."""
    return L2capPacket(
        CommandCode.DISCONNECTION_REQ,
        identifier,
        {"dcid": dcid, "scid": scid},
    )


def echo_request(data: bytes = b"", identifier: int = 1) -> L2capPacket:
    """Build an Echo Request — the "ping" of the detection phase."""
    return L2capPacket(CommandCode.ECHO_REQ, identifier, tail=data)


def information_request(info_type: int = 0x0002, identifier: int = 1) -> L2capPacket:
    """Build an Information Request."""
    return L2capPacket(CommandCode.INFORMATION_REQ, identifier, {"info_type": info_type})


def create_channel_request(
    psm: int, scid: int, cont_id: int = 0, identifier: int = 1
) -> L2capPacket:
    """Build a Create Channel Request."""
    return L2capPacket(
        CommandCode.CREATE_CHANNEL_REQ,
        identifier,
        {"psm": psm, "scid": scid, "cont_id": cont_id},
    )


def move_channel_request(icid: int, cont_id: int = 1, identifier: int = 1) -> L2capPacket:
    """Build a Move Channel Request."""
    return L2capPacket(
        CommandCode.MOVE_CHANNEL_REQ,
        identifier,
        {"icid": icid, "cont_id": cont_id},
    )


def command_reject(reason: int, identifier: int, data: bytes = b"") -> L2capPacket:
    """Build a Command Reject response."""
    return L2capPacket(
        CommandCode.COMMAND_REJECT,
        identifier,
        {"reason": reason},
        tail=data,
    )


def default_packet(code: CommandCode, identifier: int = 1, **fields: int) -> L2capPacket:
    """Build any command with spec defaults, overriding chosen *fields*."""
    packet = L2capPacket(code, identifier)
    for name, value in fields.items():
        if name not in packet.field_names():
            raise KeyError(f"{code.name} has no field {name!r}")
        packet.fields[name] = value
    return packet


def iter_command_codes() -> Iterator[CommandCode]:
    """Iterate all 26 command codes in numeric order."""
    return iter(sorted(COMMAND_SPECS))


def spec_for(code: int) -> CommandSpec | None:
    """Look up the :class:`CommandSpec` for *code* (None if unknown)."""
    return SPEC_BY_CODE.get(code)


def fields_defaults(code: CommandCode) -> Mapping[str, int]:
    """Return the default field values for *code*."""
    return {field.name: field.default for field in COMMAND_SPECS[code].fields}
