"""The Bluetooth 5.2 L2CAP channel state machine (paper Fig. 2).

L2CAP is channel-oriented: every connection-oriented channel runs its own
instance of a 19-state machine. This module defines the state enum, the
role-aware transition relation used by the virtual host stacks, and the
event/action table of the WAIT_CONNECT state that the paper prints as
Table II.

Terminology note — *initiator* vs *acceptor* states. Several states are
only entered by the side that originated an exchange (e.g. a device only
reaches WAIT_CONNECT_RSP after *sending* a Connection Request). When the
fuzzer is the master and the target a passive slave, the target can never
enter those six initiator-side states; this is exactly the coverage
ceiling the paper reports (13 of 19 states, §IV.D and §V limitation 4).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.l2cap.constants import CommandCode


class ChannelState(enum.Enum):
    """The 19 L2CAP channel states of Bluetooth 5.2 (paper Fig. 2)."""

    CLOSED = "CLOSED"
    WAIT_CONNECT = "WAIT_CONNECT"
    WAIT_CONNECT_RSP = "WAIT_CONNECT_RSP"
    WAIT_CREATE = "WAIT_CREATE"
    WAIT_CREATE_RSP = "WAIT_CREATE_RSP"
    WAIT_CONFIG = "WAIT_CONFIG"
    WAIT_CONFIG_RSP = "WAIT_CONFIG_RSP"
    WAIT_CONFIG_REQ = "WAIT_CONFIG_REQ"
    WAIT_CONFIG_REQ_RSP = "WAIT_CONFIG_REQ_RSP"
    WAIT_SEND_CONFIG = "WAIT_SEND_CONFIG"
    WAIT_IND_FINAL_RSP = "WAIT_IND_FINAL_RSP"
    WAIT_FINAL_RSP = "WAIT_FINAL_RSP"
    WAIT_CONTROL_IND = "WAIT_CONTROL_IND"
    WAIT_DISCONNECT = "WAIT_DISCONNECT"
    WAIT_MOVE = "WAIT_MOVE"
    WAIT_MOVE_RSP = "WAIT_MOVE_RSP"
    WAIT_MOVE_CONFIRM = "WAIT_MOVE_CONFIRM"
    WAIT_CONFIRM_RSP = "WAIT_CONFIRM_RSP"
    OPEN = "OPEN"


ALL_STATES: tuple[ChannelState, ...] = tuple(ChannelState)
assert len(ALL_STATES) == 19, "Bluetooth 5.2 defines 19 L2CAP states"


#: States a device only enters when it *initiates* an exchange. A passive
#: slave probed by an external master never reaches these — the structural
#: reason the best possible master-side fuzzer coverage is 13 states.
INITIATOR_ONLY_STATES = frozenset(
    {
        ChannelState.WAIT_CONNECT_RSP,
        ChannelState.WAIT_CREATE_RSP,
        ChannelState.WAIT_MOVE_RSP,
        ChannelState.WAIT_CONFIRM_RSP,
        ChannelState.WAIT_FINAL_RSP,
        ChannelState.WAIT_CONTROL_IND,
    }
)

#: States an external master can drive a slave target into.
ACCEPTOR_REACHABLE_STATES = frozenset(ALL_STATES) - INITIATOR_ONLY_STATES
assert len(ACCEPTOR_REACHABLE_STATES) == 13

#: Configuration-phase states: a channel in any of these is mid-configuration.
CONFIGURATION_STATES = frozenset(
    {
        ChannelState.WAIT_CONFIG,
        ChannelState.WAIT_CONFIG_RSP,
        ChannelState.WAIT_CONFIG_REQ,
        ChannelState.WAIT_CONFIG_REQ_RSP,
        ChannelState.WAIT_SEND_CONFIG,
        ChannelState.WAIT_IND_FINAL_RSP,
        ChannelState.WAIT_FINAL_RSP,
        ChannelState.WAIT_CONTROL_IND,
    }
)

#: States in which a channel exists (a CID has been allocated).
CHANNEL_ALIVE_STATES = frozenset(ALL_STATES) - {ChannelState.CLOSED}


@dataclasses.dataclass(frozen=True)
class Transition:
    """One acceptor-side transition: event in, action out, next state.

    :param event: the command code received from the peer.
    :param action: the command code sent in response (None = silent).
    :param next_state: resulting channel state (None = no change).
    :param accepts: True when the event is valid in this state; False when
        the stack answers with a reject/refusal.
    """

    event: CommandCode
    action: CommandCode | None
    next_state: ChannelState | None
    accepts: bool = True


def _t(
    event: CommandCode,
    action: CommandCode | None,
    next_state: ChannelState | None,
    accepts: bool = True,
) -> Transition:
    return Transition(event, action, next_state, accepts)


#: Acceptor-side transition relation for the states an external master can
#: exercise. Events absent from a state's list are answered with Command
#: Reject ("command not understood" for responses-out-of-context, per
#: Table II) by the host-stack engine.
ACCEPTOR_TRANSITIONS: dict[ChannelState, tuple[Transition, ...]] = {
    ChannelState.CLOSED: (
        _t(CommandCode.CONNECTION_REQ, CommandCode.CONNECTION_RSP, ChannelState.WAIT_CONFIG),
        _t(
            CommandCode.CREATE_CHANNEL_REQ,
            CommandCode.CREATE_CHANNEL_RSP,
            ChannelState.WAIT_CONFIG,
        ),
    ),
    # WAIT_CONNECT: passive open — the acceptor has advertised a service
    # and waits for a Connection Request (paper Table II).
    ChannelState.WAIT_CONNECT: (
        _t(CommandCode.CONNECTION_REQ, CommandCode.CONNECTION_RSP, ChannelState.WAIT_CONFIG),
    ),
    # WAIT_CREATE: same as WAIT_CONNECT for AMP channel creation.
    ChannelState.WAIT_CREATE: (
        _t(
            CommandCode.CREATE_CHANNEL_REQ,
            CommandCode.CREATE_CHANNEL_RSP,
            ChannelState.WAIT_CONFIG,
        ),
    ),
    # Configuration cluster. The engine refines the next state with its
    # local/remote config bookkeeping; the table records the canonical
    # transitions of Core 5.2 Fig. 6.2.
    ChannelState.WAIT_CONFIG: (
        _t(
            CommandCode.CONFIGURATION_REQ,
            CommandCode.CONFIGURATION_RSP,
            ChannelState.WAIT_SEND_CONFIG,
        ),
        _t(CommandCode.DISCONNECTION_REQ, CommandCode.DISCONNECTION_RSP, ChannelState.CLOSED),
    ),
    ChannelState.WAIT_CONFIG_REQ_RSP: (
        _t(
            CommandCode.CONFIGURATION_REQ,
            CommandCode.CONFIGURATION_RSP,
            ChannelState.WAIT_CONFIG_RSP,
        ),
        _t(CommandCode.CONFIGURATION_RSP, None, ChannelState.WAIT_CONFIG_REQ),
        _t(CommandCode.DISCONNECTION_REQ, CommandCode.DISCONNECTION_RSP, ChannelState.CLOSED),
    ),
    ChannelState.WAIT_CONFIG_REQ: (
        _t(
            CommandCode.CONFIGURATION_REQ,
            CommandCode.CONFIGURATION_RSP,
            ChannelState.OPEN,
        ),
        _t(CommandCode.DISCONNECTION_REQ, CommandCode.DISCONNECTION_RSP, ChannelState.CLOSED),
    ),
    ChannelState.WAIT_CONFIG_RSP: (
        _t(CommandCode.CONFIGURATION_RSP, None, ChannelState.OPEN),
        _t(CommandCode.DISCONNECTION_REQ, CommandCode.DISCONNECTION_RSP, ChannelState.CLOSED),
    ),
    ChannelState.WAIT_SEND_CONFIG: (
        # The acceptor owes its own Configuration Request; the engine sends
        # it spontaneously and moves to WAIT_CONFIG_RSP.
        _t(CommandCode.DISCONNECTION_REQ, CommandCode.DISCONNECTION_RSP, ChannelState.CLOSED),
    ),
    ChannelState.WAIT_IND_FINAL_RSP: (
        _t(CommandCode.CONFIGURATION_RSP, None, ChannelState.OPEN),
        _t(CommandCode.DISCONNECTION_REQ, CommandCode.DISCONNECTION_RSP, ChannelState.CLOSED),
    ),
    ChannelState.OPEN: (
        _t(CommandCode.CONFIGURATION_REQ, CommandCode.CONFIGURATION_RSP, ChannelState.WAIT_CONFIG),
        _t(CommandCode.DISCONNECTION_REQ, CommandCode.DISCONNECTION_RSP, ChannelState.CLOSED),
        _t(CommandCode.MOVE_CHANNEL_REQ, CommandCode.MOVE_CHANNEL_RSP, ChannelState.WAIT_MOVE_CONFIRM),
    ),
    ChannelState.WAIT_MOVE: (
        _t(
            CommandCode.MOVE_CHANNEL_CONFIRMATION_REQ,
            CommandCode.MOVE_CHANNEL_CONFIRMATION_RSP,
            ChannelState.OPEN,
        ),
        _t(CommandCode.DISCONNECTION_REQ, CommandCode.DISCONNECTION_RSP, ChannelState.CLOSED),
    ),
    ChannelState.WAIT_MOVE_CONFIRM: (
        _t(
            CommandCode.MOVE_CHANNEL_CONFIRMATION_REQ,
            CommandCode.MOVE_CHANNEL_CONFIRMATION_RSP,
            ChannelState.OPEN,
        ),
        _t(CommandCode.DISCONNECTION_REQ, CommandCode.DISCONNECTION_RSP, ChannelState.CLOSED),
    ),
    ChannelState.WAIT_DISCONNECT: (
        _t(CommandCode.DISCONNECTION_RSP, None, ChannelState.CLOSED),
        _t(CommandCode.DISCONNECTION_REQ, CommandCode.DISCONNECTION_RSP, ChannelState.CLOSED),
    ),
}


#: Commands that are connection-scoped rather than channel-scoped: they are
#: valid in *any* state because they do not touch a channel state machine.
CONNECTION_SCOPED_COMMANDS = frozenset(
    {
        CommandCode.ECHO_REQ,
        CommandCode.INFORMATION_REQ,
        CommandCode.COMMAND_REJECT,
    }
)


def valid_events(state: ChannelState) -> frozenset[CommandCode]:
    """Commands a spec-conformant acceptor accepts in *state*.

    Connection-scoped commands (echo, information) are always included.
    """
    transitions = ACCEPTOR_TRANSITIONS.get(state, ())
    events = {transition.event for transition in transitions if transition.accepts}
    return frozenset(events) | CONNECTION_SCOPED_COMMANDS


def lookup_transition(state: ChannelState, event: CommandCode) -> Transition | None:
    """Find the acceptor transition for *event* in *state* (None = reject)."""
    for transition in ACCEPTOR_TRANSITIONS.get(state, ()):
        if transition.event == event:
            return transition
    return None


# ---------------------------------------------------------------------------
# Paper Table II — WAIT_CONNECT events and actions
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class EventActionRow:
    """One row of the paper's Table II."""

    event: CommandCode
    action: str
    transitions_to: ChannelState | None


#: Table II verbatim: what a device in WAIT_CONNECT does for each incoming
#: command. Only Connect Req is accepted; everything else is rejected.
WAIT_CONNECT_TABLE: tuple[EventActionRow, ...] = (
    EventActionRow(CommandCode.CONNECTION_REQ, "Connect Rsp", ChannelState.WAIT_CONFIG),
    EventActionRow(CommandCode.CONNECTION_RSP, "Reject", None),
    EventActionRow(CommandCode.CONFIGURATION_REQ, "Reject", None),
    EventActionRow(CommandCode.CONFIGURATION_RSP, "Reject", None),
    EventActionRow(CommandCode.DISCONNECTION_RSP, "Reject", None),
    EventActionRow(CommandCode.CREATE_CHANNEL_REQ, "Reject", None),
    EventActionRow(CommandCode.CREATE_CHANNEL_RSP, "Reject", None),
    EventActionRow(CommandCode.MOVE_CHANNEL_REQ, "Reject", None),
    EventActionRow(CommandCode.MOVE_CHANNEL_RSP, "Reject", None),
    EventActionRow(CommandCode.MOVE_CHANNEL_CONFIRMATION_REQ, "Reject", None),
    EventActionRow(CommandCode.MOVE_CHANNEL_CONFIRMATION_RSP, "Reject", None),
)
