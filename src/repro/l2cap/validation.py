"""Spec-conformance validation of L2CAP packets.

Two consumers:

* the virtual host stacks use :func:`frame_violations` to decide which
  Command Reject to send (the reject semantics the paper's taxonomy is
  designed around), and
* the analysis sniffer uses :func:`is_malformed` to count *malformed*
  packets the way the paper's MP-Ratio does — a packet is malformed when
  any part of it deviates from a spec-clean encoding of its command.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.l2cap.constants import (
    CONNECTIONLESS_CID,
    SIGNALING_CID,
    CommandCode,
    RejectReason,
    is_valid_psm,
)
from repro.l2cap.fields import is_normal_cidp
from repro.l2cap.packets import COMMAND_SPECS, L2capPacket


class Violation(enum.Enum):
    """Categories of spec deviation detectable from a single packet."""

    UNKNOWN_CODE = "unknown command code"
    BAD_HEADER_CID = "header CID is neither a fixed channel nor allocated"
    LENGTH_MISMATCH = "declared length disagrees with content"
    TRUNCATED_FIELDS = "data region shorter than command layout"
    GARBAGE_TAIL = "bytes beyond declared data length"
    INVALID_PSM = "PSM outside the valid port grid"
    UNALLOCATED_CID = "channel-endpoint value ignores dynamic allocation"
    MTU_EXCEEDED = "frame exceeds signaling MTU"


#: Channel-endpoint fields that refer to the *receiver's* CID allocation.
#: Only these can "ignore dynamic allocation": a Connection Request's SCID
#: is the sender's own allocation and is judged by the sender's bookkeeping,
#: not the receiver's.
RECEIVER_CID_FIELDS: dict[int, tuple[str, ...]] = {
    CommandCode.CONFIGURATION_REQ: ("dcid",),
    CommandCode.CONFIGURATION_RSP: ("scid",),
    CommandCode.DISCONNECTION_REQ: ("dcid",),
    CommandCode.MOVE_CHANNEL_REQ: ("icid",),
    CommandCode.MOVE_CHANNEL_CONFIRMATION_REQ: ("icid",),
}


@dataclasses.dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating one packet."""

    violations: tuple[Violation, ...]

    @property
    def clean(self) -> bool:
        """True when the packet is a spec-clean encoding."""
        return not self.violations

    def has(self, violation: Violation) -> bool:
        """True when *violation* was observed."""
        return violation in self.violations


def frame_violations(
    packet: L2capPacket,
    signaling_mtu: int,
    allocated_cids: frozenset[int] = frozenset(),
) -> ValidationReport:
    """Validate *packet* the way a conformant receiving stack would.

    :param packet: decoded packet.
    :param signaling_mtu: the receiver's signaling MTU; larger frames are
        rejected with "Signaling MTU exceeded".
    :param allocated_cids: CIDs the receiver has actually allocated.
        Channel-endpoint fields referencing other dynamic CIDs count as
        :attr:`Violation.UNALLOCATED_CID` ("Invalid CID in request").
    """
    if packet.header_cid != SIGNALING_CID:
        return _data_frame_violations(packet, allocated_cids)

    violations: list[Violation] = []

    if packet.spec is None:
        violations.append(Violation.UNKNOWN_CODE)
    if packet.declared_payload_len is not None or packet.declared_data_len is not None:
        violations.append(Violation.LENGTH_MISMATCH)
    if packet.spec is not None:
        present = set(packet.fields)
        expected = {field.name for field in packet.spec.fields}
        if not expected <= present:
            violations.append(Violation.TRUNCATED_FIELDS)
    if packet.garbage:
        violations.append(Violation.GARBAGE_TAIL)
    if packet.wire_length > signaling_mtu:
        violations.append(Violation.MTU_EXCEEDED)

    psm = packet.fields.get("psm")
    if psm is not None and not is_valid_psm(psm):
        violations.append(Violation.INVALID_PSM)

    for name in RECEIVER_CID_FIELDS.get(packet.code, ()):
        value = packet.fields.get(name)
        if value is None:
            continue
        if is_normal_cidp(value) and value not in allocated_cids:
            violations.append(Violation.UNALLOCATED_CID)
            break

    return ValidationReport(tuple(violations))


def _data_frame_violations(
    packet: L2capPacket, allocated_cids: frozenset[int]
) -> ValidationReport:
    """Judge a non-signaling frame: data to a live or fixed channel is
    clean; data aimed at an unallocated dynamic CID is malformed."""
    violations: list[Violation] = []
    fixed_channels = {SIGNALING_CID, CONNECTIONLESS_CID}
    if packet.header_cid not in fixed_channels and packet.header_cid not in allocated_cids:
        violations.append(Violation.BAD_HEADER_CID)
    return ValidationReport(tuple(violations))


def reject_reason_for(report: ValidationReport) -> RejectReason | None:
    """Map a validation report to the Command Reject reason a stack sends.

    Mirrors paper §III.D: mutated ``F``/``D`` provokes "Command not
    understood", an MTU-busting frame provokes "Signaling MTU exceeded",
    and a bogus channel endpoint provokes "Invalid CID in request". Clean
    packets (or packets whose only oddity is field *values* inside valid
    layouts, e.g. an abnormal PSM or garbage the parser never reaches)
    yield None — they are processed, not rejected.
    """
    if report.has(Violation.MTU_EXCEEDED):
        return RejectReason.SIGNALING_MTU_EXCEEDED
    if (
        report.has(Violation.UNKNOWN_CODE)
        or report.has(Violation.BAD_HEADER_CID)
        or report.has(Violation.LENGTH_MISMATCH)
        or report.has(Violation.TRUNCATED_FIELDS)
    ):
        return RejectReason.COMMAND_NOT_UNDERSTOOD
    if report.has(Violation.UNALLOCATED_CID):
        return RejectReason.INVALID_CID
    return None


def is_malformed(packet: L2capPacket, allocated_cids: frozenset[int] = frozenset()) -> bool:
    """Classify a transmitted packet as malformed (MP-Ratio numerator).

    A packet is malformed when it deviates from the spec-clean encoding a
    cooperating peer would produce: structural violations, garbage tails,
    invalid PSMs, or channel endpoints that ignore the peer's allocation.
    This is the packet-trace-level judgement a Wireshark analyst makes in
    the paper's §IV.C measurement.
    """
    report = frame_violations(packet, signaling_mtu=1 << 30, allocated_cids=allocated_cids)
    return not report.clean


def spec_layout_ok(packet: L2capPacket) -> bool:
    """True if the packet's code and field layout match a 5.2 command."""
    if packet.spec is None:
        return False
    expected = {field.name for field in COMMAND_SPECS[CommandCode(packet.code)].fields}
    return expected <= set(packet.fields)
