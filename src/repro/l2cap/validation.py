"""Spec-conformance validation of L2CAP packets.

Two consumers:

* the virtual host stacks use :func:`frame_violations` to decide which
  Command Reject to send (the reject semantics the paper's taxonomy is
  designed around), and
* the analysis sniffer uses :func:`is_malformed` to count *malformed*
  packets the way the paper's MP-Ratio does — a packet is malformed when
  any part of it deviates from a spec-clean encoding of its command.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.l2cap.constants import (
    CONNECTIONLESS_CID,
    SIGNALING_CID,
    CommandCode,
    RejectReason,
    is_valid_psm,
)
from repro.l2cap.fields import is_normal_cidp
from repro.l2cap.packets import L2capPacket


class Violation(enum.Enum):
    """Categories of spec deviation detectable from a single packet."""

    UNKNOWN_CODE = "unknown command code"
    BAD_HEADER_CID = "header CID is neither a fixed channel nor allocated"
    LENGTH_MISMATCH = "declared length disagrees with content"
    TRUNCATED_FIELDS = "data region shorter than command layout"
    GARBAGE_TAIL = "bytes beyond declared data length"
    INVALID_PSM = "PSM outside the valid port grid"
    UNALLOCATED_CID = "channel-endpoint value ignores dynamic allocation"
    MTU_EXCEEDED = "frame exceeds signaling MTU"


#: Channel-endpoint fields that refer to the *receiver's* CID allocation.
#: Only these can "ignore dynamic allocation": a Connection Request's SCID
#: is the sender's own allocation and is judged by the sender's bookkeeping,
#: not the receiver's.
RECEIVER_CID_FIELDS: dict[int, tuple[str, ...]] = {
    CommandCode.CONFIGURATION_REQ: ("dcid",),
    CommandCode.CONFIGURATION_RSP: ("scid",),
    CommandCode.DISCONNECTION_REQ: ("dcid",),
    CommandCode.MOVE_CHANNEL_REQ: ("icid",),
    CommandCode.MOVE_CHANNEL_CONFIRMATION_REQ: ("icid",),
}


@dataclasses.dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating one packet."""

    violations: tuple[Violation, ...]

    @property
    def clean(self) -> bool:
        """True when the packet is a spec-clean encoding."""
        return not self.violations

    def has(self, violation: Violation) -> bool:
        """True when *violation* was observed."""
        return violation in self.violations


#: Shared empty report: the clean-packet fast path allocates nothing.
_CLEAN_REPORT = ValidationReport(())


def _structural_facts(packet: L2capPacket) -> tuple[tuple[Violation, ...], bool]:
    """Packet-intrinsic validation facts, memoized on the packet.

    Returns ``(structural_violations, invalid_psm)`` — everything about a
    signaling frame that does not depend on the receiver's MTU or CID
    allocation. The result is cached in the packet's codec-cache slot and
    dropped on any mutation, so the sniffer's malformedness call and the
    stack engine's rejection call share one structural pass per packet.
    """
    facts = packet._intrinsic
    if facts is None:
        structural: list[Violation] = []
        spec = packet.spec
        if spec is None:
            structural.append(Violation.UNKNOWN_CODE)
        if (
            packet.declared_payload_len is not None
            or packet.declared_data_len is not None
        ):
            structural.append(Violation.LENGTH_MISMATCH)
        if spec is not None:
            fields = packet.fields
            if any(field.name not in fields for field in spec.fields):
                structural.append(Violation.TRUNCATED_FIELDS)
        if packet.garbage:
            structural.append(Violation.GARBAGE_TAIL)
        psm = packet.fields.get("psm")
        invalid_psm = psm is not None and not is_valid_psm(psm)
        facts = (tuple(structural), invalid_psm)
        packet.__dict__["_intrinsic"] = facts
    return facts


def frame_violations(
    packet: L2capPacket,
    signaling_mtu: int,
    allocated_cids: frozenset[int] = frozenset(),
) -> ValidationReport:
    """Validate *packet* the way a conformant receiving stack would.

    :param packet: decoded packet.
    :param signaling_mtu: the receiver's signaling MTU; larger frames are
        rejected with "Signaling MTU exceeded".
    :param allocated_cids: CIDs the receiver has actually allocated.
        Channel-endpoint fields referencing other dynamic CIDs count as
        :attr:`Violation.UNALLOCATED_CID` ("Invalid CID in request").
    """
    if packet.header_cid != SIGNALING_CID:
        return _data_frame_violations(packet, allocated_cids)

    structural, invalid_psm = _structural_facts(packet)
    violations: list[Violation] = list(structural)

    if packet.wire_length > signaling_mtu:
        # Keep the report's violation order identical to the historical
        # single-pass implementation: MTU before PSM and CID findings.
        violations.append(Violation.MTU_EXCEEDED)
    if invalid_psm:
        violations.append(Violation.INVALID_PSM)

    for name in RECEIVER_CID_FIELDS.get(packet.code, ()):
        value = packet.fields.get(name)
        if value is None:
            continue
        if is_normal_cidp(value) and value not in allocated_cids:
            violations.append(Violation.UNALLOCATED_CID)
            break

    if not violations:
        return _CLEAN_REPORT
    return ValidationReport(tuple(violations))


def _data_frame_violations(
    packet: L2capPacket, allocated_cids: frozenset[int]
) -> ValidationReport:
    """Judge a non-signaling frame: data to a live or fixed channel is
    clean; data aimed at an unallocated dynamic CID is malformed."""
    violations: list[Violation] = []
    fixed_channels = {SIGNALING_CID, CONNECTIONLESS_CID}
    if packet.header_cid not in fixed_channels and packet.header_cid not in allocated_cids:
        violations.append(Violation.BAD_HEADER_CID)
    return ValidationReport(tuple(violations))


def structural_reject_reason(
    packet: L2capPacket, signaling_mtu: int
) -> RejectReason | None:
    """Rejection decidable before command dispatch, straight from the facts.

    Equivalent to running :func:`frame_violations` and mapping the
    ``F``/``D`` violations the way the stack engine does — MTU first,
    then unknown code, then length/truncation — but served from the
    memoized structural pass without building a report. One call per
    accepted signaling frame on the stack engine's hot path.
    """
    if packet.wire_length > signaling_mtu:
        return RejectReason.SIGNALING_MTU_EXCEEDED
    facts = packet._intrinsic
    if facts is None:
        facts = _structural_facts(packet)
    structural = facts[0]
    if structural and (
        Violation.UNKNOWN_CODE in structural
        or Violation.LENGTH_MISMATCH in structural
        or Violation.TRUNCATED_FIELDS in structural
    ):
        return RejectReason.COMMAND_NOT_UNDERSTOOD
    return None


def reject_reason_for(report: ValidationReport) -> RejectReason | None:
    """Map a validation report to the Command Reject reason a stack sends.

    Mirrors paper §III.D: mutated ``F``/``D`` provokes "Command not
    understood", an MTU-busting frame provokes "Signaling MTU exceeded",
    and a bogus channel endpoint provokes "Invalid CID in request". Clean
    packets (or packets whose only oddity is field *values* inside valid
    layouts, e.g. an abnormal PSM or garbage the parser never reaches)
    yield None — they are processed, not rejected.
    """
    if report.has(Violation.MTU_EXCEEDED):
        return RejectReason.SIGNALING_MTU_EXCEEDED
    if (
        report.has(Violation.UNKNOWN_CODE)
        or report.has(Violation.BAD_HEADER_CID)
        or report.has(Violation.LENGTH_MISMATCH)
        or report.has(Violation.TRUNCATED_FIELDS)
    ):
        return RejectReason.COMMAND_NOT_UNDERSTOOD
    if report.has(Violation.UNALLOCATED_CID):
        return RejectReason.INVALID_CID
    return None


def is_malformed(packet: L2capPacket, allocated_cids: frozenset[int] = frozenset()) -> bool:
    """Classify a transmitted packet as malformed (MP-Ratio numerator).

    A packet is malformed when it deviates from the spec-clean encoding a
    cooperating peer would produce: structural violations, garbage tails,
    invalid PSMs, or channel endpoints that ignore the peer's allocation.
    This is the packet-trace-level judgement a Wireshark analyst makes in
    the paper's §IV.C measurement.

    Equivalent to ``not frame_violations(packet, 1 << 30,
    allocated_cids).clean`` but skips building the report — this runs
    once per transmitted packet, and a boolean needs no violation list.
    """
    if packet.header_cid != SIGNALING_CID:
        return (
            packet.header_cid not in (SIGNALING_CID, CONNECTIONLESS_CID)
            and packet.header_cid not in allocated_cids
        )
    # Inline the memo hit (one attribute read) — this and the engine's
    # structural_reject_reason both run once per transmitted packet.
    facts = packet._intrinsic
    if facts is None:
        facts = _structural_facts(packet)
    structural, invalid_psm = facts
    if structural or invalid_psm:
        return True
    for name in RECEIVER_CID_FIELDS.get(packet.code, ()):
        value = packet.fields.get(name)
        if value is None:
            continue
        if is_normal_cidp(value) and value not in allocated_cids:
            return True
    return False


def spec_layout_ok(packet: L2capPacket) -> bool:
    """True if the packet's code and field layout match a 5.2 command."""
    spec = packet.spec
    if spec is None:
        return False
    fields = packet.fields
    return all(field.name in fields for field in spec.fields)
