"""Bluetooth 5.2 L2CAP protocol constants.

Sources: Bluetooth Core Specification 5.2, Vol 3 Part A (L2CAP), plus the
field taxonomy of the L2Fuzz paper (Fig. 3, Fig. 6, Table IV). Everything
the codec, the state machine, the virtual stacks and the fuzzer need to
agree on lives here.
"""

from __future__ import annotations

import enum

# ---------------------------------------------------------------------------
# Channel identifiers (Core 5.2 Vol 3 Part A §2.1)
# ---------------------------------------------------------------------------

#: Signaling channel on ACL-U logical links; the fixed ``F`` field of the
#: paper's taxonomy — L2CAP commands always travel on CID 0x0001.
SIGNALING_CID = 0x0001

#: Connectionless reception channel.
CONNECTIONLESS_CID = 0x0002

#: First dynamically allocatable CID (Core 5.2 Vol 3 Part A Table 2.1).
DYNAMIC_CID_MIN = 0x0040

#: Last dynamically allocatable CID.
DYNAMIC_CID_MAX = 0xFFFF

#: CID value reserved as "null"/invalid.
NULL_CID = 0x0000

# ---------------------------------------------------------------------------
# Sizes (Fig. 3 of the paper)
# ---------------------------------------------------------------------------

#: Bytes in the L2CAP basic header (Payload Length + Header Channel ID).
L2CAP_HEADER_LEN = 4

#: Bytes in an L2CAP command header (Code + Identifier + Data Length).
COMMAND_HEADER_LEN = 4

#: Maximum L2CAP payload ("L2CAP Payload can be up to 65,535 bytes").
MAX_L2CAP_PAYLOAD = 65_535

#: Minimum signaling MTU every BR/EDR device must accept (Core 5.2).
MIN_SIGNALING_MTU = 48

#: Default signaling MTU used by our virtual stacks; mirrors the common
#: BR/EDR default of 672 bytes.
DEFAULT_SIGNALING_MTU = 672


class CommandCode(enum.IntEnum):
    """The 26 L2CAP signaling command codes of Bluetooth 5.2.

    Paper §II.A: "there are 26 L2CAP commands in Bluetooth 5.2, and each
    command has different Data Fields."
    """

    COMMAND_REJECT = 0x01
    CONNECTION_REQ = 0x02
    CONNECTION_RSP = 0x03
    CONFIGURATION_REQ = 0x04
    CONFIGURATION_RSP = 0x05
    DISCONNECTION_REQ = 0x06
    DISCONNECTION_RSP = 0x07
    ECHO_REQ = 0x08
    ECHO_RSP = 0x09
    INFORMATION_REQ = 0x0A
    INFORMATION_RSP = 0x0B
    CREATE_CHANNEL_REQ = 0x0C
    CREATE_CHANNEL_RSP = 0x0D
    MOVE_CHANNEL_REQ = 0x0E
    MOVE_CHANNEL_RSP = 0x0F
    MOVE_CHANNEL_CONFIRMATION_REQ = 0x10
    MOVE_CHANNEL_CONFIRMATION_RSP = 0x11
    CONNECTION_PARAMETER_UPDATE_REQ = 0x12
    CONNECTION_PARAMETER_UPDATE_RSP = 0x13
    LE_CREDIT_BASED_CONNECTION_REQ = 0x14
    LE_CREDIT_BASED_CONNECTION_RSP = 0x15
    FLOW_CONTROL_CREDIT_IND = 0x16
    CREDIT_BASED_CONNECTION_REQ = 0x17
    CREDIT_BASED_CONNECTION_RSP = 0x18
    CREDIT_BASED_RECONFIGURE_REQ = 0x19
    CREDIT_BASED_RECONFIGURE_RSP = 0x1A


#: Hot-path lookup tables: value → member / name. ``enum.EnumType.__call__``
#: is a surprisingly expensive constructor (a 20k-packet campaign performs
#: ~600k of them); decode, dispatch and sniffer classification resolve
#: codes through these dict hits instead.
COMMAND_CODE_BY_VALUE: dict[int, CommandCode] = {
    member.value: member for member in CommandCode
}

COMMAND_NAME_BY_VALUE: dict[int, str] = {
    member.value: member.name for member in CommandCode
}


#: Commands that initiate an exchange (the fuzzer can originate these).
REQUEST_CODES = frozenset(
    {
        CommandCode.CONNECTION_REQ,
        CommandCode.CONFIGURATION_REQ,
        CommandCode.DISCONNECTION_REQ,
        CommandCode.ECHO_REQ,
        CommandCode.INFORMATION_REQ,
        CommandCode.CREATE_CHANNEL_REQ,
        CommandCode.MOVE_CHANNEL_REQ,
        CommandCode.MOVE_CHANNEL_CONFIRMATION_REQ,
        CommandCode.CONNECTION_PARAMETER_UPDATE_REQ,
        CommandCode.LE_CREDIT_BASED_CONNECTION_REQ,
        CommandCode.CREDIT_BASED_CONNECTION_REQ,
        CommandCode.CREDIT_BASED_RECONFIGURE_REQ,
    }
)

#: Commands that answer an exchange.
RESPONSE_CODES = frozenset(
    {
        CommandCode.COMMAND_REJECT,
        CommandCode.CONNECTION_RSP,
        CommandCode.CONFIGURATION_RSP,
        CommandCode.DISCONNECTION_RSP,
        CommandCode.ECHO_RSP,
        CommandCode.INFORMATION_RSP,
        CommandCode.CREATE_CHANNEL_RSP,
        CommandCode.MOVE_CHANNEL_RSP,
        CommandCode.MOVE_CHANNEL_CONFIRMATION_RSP,
        CommandCode.CONNECTION_PARAMETER_UPDATE_RSP,
        CommandCode.LE_CREDIT_BASED_CONNECTION_RSP,
        CommandCode.CREDIT_BASED_CONNECTION_RSP,
        CommandCode.CREDIT_BASED_RECONFIGURE_RSP,
    }
)


class RejectReason(enum.IntEnum):
    """Reason codes of the Command Reject response (Core 5.2 Table 4.4).

    These are the rejections the paper's core-field taxonomy is built to
    avoid: mutating ``F``/``D`` provokes ``COMMAND_NOT_UNDERSTOOD``, an
    abnormal CIDP provokes ``INVALID_CID``, and an oversized tail provokes
    ``SIGNALING_MTU_EXCEEDED``.
    """

    COMMAND_NOT_UNDERSTOOD = 0x0000
    SIGNALING_MTU_EXCEEDED = 0x0001
    INVALID_CID = 0x0002


class ConnectionResult(enum.IntEnum):
    """Result codes of Connection/Create-Channel responses."""

    SUCCESS = 0x0000
    PENDING = 0x0001
    REFUSED_PSM_NOT_SUPPORTED = 0x0002
    REFUSED_SECURITY_BLOCK = 0x0003
    REFUSED_NO_RESOURCES = 0x0004
    REFUSED_CONTROLLER_ID_NOT_SUPPORTED = 0x0005
    REFUSED_INVALID_SCID = 0x0006
    REFUSED_SCID_ALREADY_ALLOCATED = 0x0007


class ConnectionStatus(enum.IntEnum):
    """Status codes accompanying a PENDING connection response."""

    NO_FURTHER_INFORMATION = 0x0000
    AUTHENTICATION_PENDING = 0x0001
    AUTHORIZATION_PENDING = 0x0002


class ConfigResult(enum.IntEnum):
    """Result codes of the Configuration Response."""

    SUCCESS = 0x0000
    UNACCEPTABLE_PARAMETERS = 0x0001
    REJECTED = 0x0002
    UNKNOWN_OPTIONS = 0x0003
    PENDING = 0x0004
    FLOW_SPEC_REJECTED = 0x0005


class MoveResult(enum.IntEnum):
    """Result codes of the Move Channel Response."""

    SUCCESS = 0x0000
    PENDING = 0x0001
    REFUSED_CONTROLLER_ID_NOT_SUPPORTED = 0x0002
    REFUSED_NEW_CONTROLLER_ID_IS_SAME = 0x0003
    REFUSED_CONFIGURATION_NOT_SUPPORTED = 0x0004
    REFUSED_COLLISION = 0x0005
    REFUSED_NOT_ALLOWED = 0x0006


class MoveConfirmResult(enum.IntEnum):
    """Result codes of the Move Channel Confirmation Request."""

    SUCCESS = 0x0000
    FAILURE = 0x0001


class InfoType(enum.IntEnum):
    """InfoType values of the Information Request."""

    CONNECTIONLESS_MTU = 0x0001
    EXTENDED_FEATURES = 0x0002
    FIXED_CHANNELS = 0x0003


class InfoResult(enum.IntEnum):
    """Result values of the Information Response."""

    SUCCESS = 0x0000
    NOT_SUPPORTED = 0x0001


class ConfigOptionType(enum.IntEnum):
    """Configuration option types (Core 5.2 Vol 3 Part A §5)."""

    MTU = 0x01
    FLUSH_TIMEOUT = 0x02
    QOS = 0x03
    RETRANSMISSION_AND_FLOW_CONTROL = 0x04
    FCS = 0x05
    EXTENDED_FLOW_SPEC = 0x06
    EXTENDED_WINDOW_SIZE = 0x07


#: Value sets for per-packet membership tests (avoids rebuilding the set
#: from the enum inside the stack engine's option/info handlers).
CONFIG_OPTION_TYPE_VALUES = frozenset(member.value for member in ConfigOptionType)

INFO_TYPE_BY_VALUE: dict[int, InfoType] = {member.value: member for member in InfoType}


# ---------------------------------------------------------------------------
# PSM (Protocol/Service Multiplexer) assignments — the "port numbers"
# ---------------------------------------------------------------------------


class Psm(enum.IntEnum):
    """Well-known fixed PSM values (Bluetooth SIG assigned numbers).

    PSMs play the role of service ports in the paper's target-scanning
    phase; SDP (0x0001) is the fall-back port that never requires pairing.
    """

    SDP = 0x0001
    RFCOMM = 0x0003
    TCS_BIN = 0x0005
    TCS_BIN_CORDLESS = 0x0007
    BNEP = 0x000F
    HID_CONTROL = 0x0011
    HID_INTERRUPT = 0x0013
    UPNP = 0x0015
    AVCTP = 0x0017
    AVDTP = 0x0019
    AVCTP_BROWSING = 0x001B
    UDI_C_PLANE = 0x001D
    ATT = 0x001F
    THREED_SP = 0x0021
    IPSP = 0x0023
    OTS = 0x0025


#: Valid fixed-PSM space: odd values whose most-significant byte is even,
#: in 0x0001..0x0EFF (Core 5.2 Vol 3 Part A §4.2).
FIXED_PSM_MIN = 0x0001
FIXED_PSM_MAX = 0x0EFF

#: Dynamic PSM space (odd values, 0x1001..0xFFFF).
DYNAMIC_PSM_MIN = 0x1001
DYNAMIC_PSM_MAX = 0xFFFF


def is_valid_psm(psm: int) -> bool:
    """Return True if *psm* is well-formed per the 5.2 specification.

    A valid PSM is odd (least-significant bit of the least-significant
    byte set) and has an even most-significant byte.
    """
    if not 0x0000 < psm <= 0xFFFF:
        return False
    if psm & 0x0001 == 0:  # must be odd
        return False
    return (psm >> 8) & 0x01 == 0  # MSB must be even


# Abnormal PSM ranges used for mutation (paper Table IV). Each tuple is an
# inclusive (start, end) hex range whose values are *not* well-formed PSMs.
ABNORMAL_PSM_RANGES = (
    (0x0100, 0x01FF),
    (0x0300, 0x03FF),
    (0x0500, 0x05FF),
    (0x0700, 0x07FF),
    (0x0900, 0x09FF),
    (0x0B00, 0x0BFF),
    (0x0D00, 0x0DFF),
)

#: CIDP mutation range (paper Table IV): the *normal* dynamic-CID range —
#: values are legal but ignore the device's dynamic allocation.
CIDP_MUTATION_RANGE = (DYNAMIC_CID_MIN, DYNAMIC_CID_MAX)
