"""Field taxonomy of the L2CAP packet frame (paper Fig. 6 and Table IV).

The core-field-mutating technique rests on partitioning every packet into

* ``F``  — fixed fields (the signaling Header CID, always 0x0001),
* ``D``  — dependent fields (lengths, code, identifier — derived values),
* ``MC`` — mutable *core* fields (port and channel settings: PSM + CIDP),
* ``MA`` — mutable *application* fields (everything else carried as data),

so that ``L = F ∪ D ∪ MC ∪ MA`` (paper §III.D). Only ``MC`` is mutated.

This module also encodes Table IV: the abnormal PSM ranges and the CIDP
range used as mutation value pools.
"""

from __future__ import annotations

import enum
import random

from repro.l2cap.constants import (
    ABNORMAL_PSM_RANGES,
    CIDP_MUTATION_RANGE,
    is_valid_psm,
)
from repro.l2cap.packets import COMMAND_SPECS, L2capPacket


class FieldCategory(enum.Enum):
    """The four field classes of the paper's taxonomy."""

    FIXED = "F"
    DEPENDENT = "D"
    MUTABLE_CORE = "MC"
    MUTABLE_APPLICATION = "MA"


#: Frame-level fields (outside the data-field region) and their classes.
FRAME_FIELD_CATEGORY: dict[str, FieldCategory] = {
    "header_cid": FieldCategory.FIXED,
    "payload_len": FieldCategory.DEPENDENT,
    "code": FieldCategory.DEPENDENT,
    "identifier": FieldCategory.DEPENDENT,
    "data_len": FieldCategory.DEPENDENT,
}

#: The mutable core fields (paper Fig. 6): the port field plus the four
#: "Channel ID in Payload" fields.
MC_FIELD_NAMES = frozenset({"psm", "scid", "dcid", "icid", "cont_id"})

#: The CIDP subset of MC — channel-endpoint fields (everything but PSM).
CIDP_FIELD_NAMES = frozenset({"scid", "dcid", "icid", "cont_id"})

#: Mutable application fields (paper Fig. 6): command data that does not
#: affect port or channel management.
MA_FIELD_NAMES = frozenset(
    {
        "reason",
        "result",
        "status",
        "flags",
        "info_type",  # "TYPE" in the paper's figure
        "interval_min",  # "INTERVAL"
        "interval_max",
        "latency",
        "timeout",
        "spsm",
        "mtu",
        "credit",
        "mps",
        "cid",  # flow-control credit CID rides as application data
        "options",  # "OPT"
        "qos",
        "data",
        "cid_list",
    }
)


def categorize_field(name: str) -> FieldCategory:
    """Classify a field name into F / D / MC / MA.

    :raises KeyError: for names outside the Bluetooth 5.2 frame taxonomy.
    """
    if name in FRAME_FIELD_CATEGORY:
        return FRAME_FIELD_CATEGORY[name]
    if name in MC_FIELD_NAMES:
        return FieldCategory.MUTABLE_CORE
    if name in MA_FIELD_NAMES:
        return FieldCategory.MUTABLE_APPLICATION
    raise KeyError(f"unknown L2CAP field {name!r}")


def mutable_core_fields(packet: L2capPacket) -> tuple[str, ...]:
    """Names of the MC fields present in *packet*'s command layout."""
    return tuple(name for name in packet.field_names() if name in MC_FIELD_NAMES)


def mutable_application_fields(packet: L2capPacket) -> tuple[str, ...]:
    """Names of the MA fields present in *packet*'s command layout."""
    return tuple(name for name in packet.field_names() if name in MA_FIELD_NAMES)


def commands_with_core_fields() -> frozenset:
    """Command codes whose layout contains at least one MC field."""
    return frozenset(
        code
        for code, spec in COMMAND_SPECS.items()
        if any(field.name in MC_FIELD_NAMES for field in spec.fields)
    )


# ---------------------------------------------------------------------------
# Table IV value pools
# ---------------------------------------------------------------------------


def abnormal_psm_values() -> tuple[int, ...]:
    """Materialise the abnormal PSM pool of paper Table IV.

    The pool contains the seven odd-MSB hex ranges plus every even value
    in the 16-bit space ("All even values"). None of these are well-formed
    PSMs, so they probe the target's port handling off the valid grid.
    """
    values = set()
    for start, end in ABNORMAL_PSM_RANGES:
        values.update(range(start, end + 1))
    values.update(range(0x0000, 0x10000, 2))
    return tuple(sorted(values))


def random_abnormal_psm(rng: random.Random) -> int:
    """Draw one abnormal PSM (paper Table IV, ``random(abnormal)``).

    Half the draws come from the odd-MSB ranges and half from the even
    space, so both abnormality families are exercised evenly.
    """
    if rng.random() < 0.5:
        start, end = rng.choice(ABNORMAL_PSM_RANGES)
        value = rng.randrange(start, end + 1)
    else:
        value = rng.randrange(0x0000, 0x10000, 2)
    assert not is_valid_psm(value) or value % 2 == 0
    return value


def random_normal_cidp(rng: random.Random, field_size: int = 2) -> int:
    """Draw one CIDP value from the normal dynamic range (Table IV).

    CIDP values are drawn from 0x0040–0xFFFF — legal values that ignore
    the device's dynamic allocation (paper §III.D: "although the value is
    contained in the normal range, it can cause unexpected behavior ...
    due to ignoring dynamic allocation"). One-byte fields (CONT_ID) are
    drawn from their full 8-bit space instead.
    """
    if field_size == 1:
        return rng.randrange(0x00, 0x100)
    low, high = CIDP_MUTATION_RANGE
    return rng.randrange(low, high + 1)


def is_abnormal_psm(value: int) -> bool:
    """True if *value* lies in the Table IV abnormal PSM pool."""
    if value % 2 == 0 and 0 <= value <= 0xFFFF:
        return True
    return any(start <= value <= end for start, end in ABNORMAL_PSM_RANGES)


def is_normal_cidp(value: int) -> bool:
    """True if *value* lies in the Table IV CIDP mutation range."""
    low, high = CIDP_MUTATION_RANGE
    return low <= value <= high
