"""Bluetooth 5.2 L2CAP protocol substrate.

Packet codec, the 19-state channel state machine, the 7-job clustering of
states, and the F/D/MC/MA field taxonomy that the core-field-mutating
technique is built on.
"""

from repro.l2cap.constants import (
    CommandCode,
    ConfigResult,
    ConnectionResult,
    InfoType,
    Psm,
    RejectReason,
    SIGNALING_CID,
    is_valid_psm,
)
from repro.l2cap.fields import FieldCategory, categorize_field
from repro.l2cap.jobs import Job, job_of, valid_commands_for_state
from repro.l2cap.packets import ConfigOption, L2capPacket
from repro.l2cap.states import ChannelState
from repro.l2cap.validation import is_malformed

__all__ = [
    "CommandCode",
    "ConfigOption",
    "ConfigResult",
    "ConnectionResult",
    "ChannelState",
    "FieldCategory",
    "InfoType",
    "Job",
    "L2capPacket",
    "Psm",
    "RejectReason",
    "SIGNALING_CID",
    "categorize_field",
    "is_malformed",
    "is_valid_psm",
    "job_of",
    "valid_commands_for_state",
]
