"""Job clustering of L2CAP states and the valid-command map.

Implements the *state guiding* data of the paper:

* Table I — the 19 states clustered into 7 jobs by their events,
  functions and actions.
* Table III — the valid commands mapped to each job.

The paper deliberately sets the command boundaries "slightly more
generously" than the specification, because real stacks accept commands
the spec says they should reject (§III.C). The generous map is what the
fuzzer uses; the strict per-state event sets live in
:mod:`repro.l2cap.states` and are what the virtual stacks enforce.
"""

from __future__ import annotations

import enum

from repro.l2cap.constants import CommandCode
from repro.l2cap.states import ALL_STATES, ChannelState


class Job(enum.Enum):
    """The seven jobs of paper Table I."""

    CLOSED = "Closed"
    CONNECTION = "Connection"
    CREATION = "Creation"
    CONFIGURATION = "Configuration"
    DISCONNECTION = "Disconnection"
    MOVE = "Move"
    OPEN = "Open"


#: Paper Table I: job → member states.
JOB_STATES: dict[Job, frozenset[ChannelState]] = {
    Job.CLOSED: frozenset({ChannelState.CLOSED}),
    Job.CONNECTION: frozenset(
        {ChannelState.WAIT_CONNECT, ChannelState.WAIT_CONNECT_RSP}
    ),
    Job.CREATION: frozenset({ChannelState.WAIT_CREATE, ChannelState.WAIT_CREATE_RSP}),
    Job.CONFIGURATION: frozenset(
        {
            ChannelState.WAIT_CONFIG,
            ChannelState.WAIT_CONFIG_RSP,
            ChannelState.WAIT_CONFIG_REQ,
            ChannelState.WAIT_CONFIG_REQ_RSP,
            ChannelState.WAIT_SEND_CONFIG,
            ChannelState.WAIT_IND_FINAL_RSP,
            ChannelState.WAIT_FINAL_RSP,
            ChannelState.WAIT_CONTROL_IND,
        }
    ),
    Job.DISCONNECTION: frozenset({ChannelState.WAIT_DISCONNECT}),
    Job.MOVE: frozenset(
        {
            ChannelState.WAIT_MOVE,
            ChannelState.WAIT_MOVE_RSP,
            ChannelState.WAIT_MOVE_CONFIRM,
            ChannelState.WAIT_CONFIRM_RSP,
        }
    ),
    Job.OPEN: frozenset({ChannelState.OPEN}),
}

#: Inverse of :data:`JOB_STATES`.
STATE_JOB: dict[ChannelState, Job] = {
    state: job for job, states in JOB_STATES.items() for state in states
}

assert set(STATE_JOB) == set(ALL_STATES), "every state belongs to exactly one job"


#: All 26 commands — the valid set for the Closed and Open jobs
#: ("All commands", paper Table III).
ALL_COMMANDS: frozenset[CommandCode] = frozenset(CommandCode)

#: Paper Table III: job → valid commands the fuzzer may send in that job.
JOB_VALID_COMMANDS: dict[Job, frozenset[CommandCode]] = {
    Job.CLOSED: ALL_COMMANDS,
    Job.CONNECTION: frozenset(
        {CommandCode.CONNECTION_REQ, CommandCode.CONNECTION_RSP}
    ),
    Job.CREATION: frozenset(
        {CommandCode.CREATE_CHANNEL_REQ, CommandCode.CREATE_CHANNEL_RSP}
    ),
    Job.CONFIGURATION: frozenset(
        {CommandCode.CONFIGURATION_REQ, CommandCode.CONFIGURATION_RSP}
    ),
    Job.DISCONNECTION: frozenset(
        {CommandCode.DISCONNECTION_REQ, CommandCode.DISCONNECTION_RSP}
    ),
    Job.MOVE: frozenset(
        {
            CommandCode.MOVE_CHANNEL_REQ,
            CommandCode.MOVE_CHANNEL_RSP,
            CommandCode.MOVE_CHANNEL_CONFIRMATION_REQ,
            CommandCode.MOVE_CHANNEL_CONFIRMATION_RSP,
        }
    ),
    Job.OPEN: ALL_COMMANDS,
}


def job_of(state: ChannelState) -> Job:
    """Return the job a state belongs to (paper Table I)."""
    return STATE_JOB[state]


def valid_commands_for_state(state: ChannelState) -> frozenset[CommandCode]:
    """Valid commands for *state* via its job (paper Table III).

    This is the *generous* boundary used by the fuzzer; it intentionally
    includes commands some conformant stacks would reject, because real
    devices frequently accept them anyway (paper §III.C).
    """
    return JOB_VALID_COMMANDS[job_of(state)]


def states_of(job: Job) -> frozenset[ChannelState]:
    """Return the member states of *job* (paper Table I)."""
    return JOB_STATES[job]
