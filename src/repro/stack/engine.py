"""The L2CAP host-stack engine driving every virtual device.

One engine instance is the software stack of one target: it parses
incoming signaling frames, enforces the Bluetooth 5.2 rejection rules
(modulated by its :class:`~repro.stack.vendors.VendorPersonality`), runs
the per-channel 19-state machine, and feeds accepted packets past the
injected vulnerability models.

Design invariant reproduced from the paper: **rejected packets never
reach buggy code.** Bug predicates are evaluated only on packets the
stack accepted for parsing, which is why the fuzzer's core-field
discipline matters at all.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from collections.abc import Callable

from repro.errors import ChannelError, PacketDecodeError, TargetCrashedError
from repro.hci.transport import SimClock
from repro.l2cap.constants import (
    COMMAND_NAME_BY_VALUE,
    CONFIG_OPTION_TYPE_VALUES,
    CommandCode,
    ConfigOptionType,
    ConfigResult,
    ConnectionResult,
    InfoResult,
    InfoType,
    MIN_SIGNALING_MTU,
    MoveResult,
    RejectReason,
    SIGNALING_CID,
    is_valid_psm,
)
from repro.l2cap.jobs import Job, job_of
from repro.l2cap.packets import (
    L2capPacket,
    command_reject,
    configuration_request,
    decode_options,
    disconnection_request,
)
from repro.l2cap.states import ChannelState, CONFIGURATION_STATES
from repro.l2cap.validation import structural_reject_reason
from repro.stack.channels import ChannelManager
from repro.stack.crash import CrashReport
from repro.stack.services import ServiceDirectory
from repro.stack.vendors import VendorPersonality
from repro.stack.vulnerabilities import TriggerContext, VulnerabilityModel


@dataclasses.dataclass(frozen=True)
class StateVisit:
    """One recorded entry of a channel into a state."""

    sim_time: float
    local_cid: int
    state: ChannelState


class HostStackEngine:
    """Vendor-flavoured L2CAP acceptor.

    :param personality: behavioural profile of the vendor stack.
    :param services: the device's service directory.
    :param clock: campaign clock (response latency is charged here).
    :param vulnerabilities: injected bug models.
    :param armed: when False the bug predicates are skipped — used by the
        measurement harness so 100k-packet ratio runs are not cut short
        by a crash (the paper measured ratios and detection separately).
    :param data_handlers: upper-layer services keyed by PSM — payload
        bytes in, response payload bytes out (e.g. the SDP server).
        Data frames to a live channel whose PSM has a handler are
        answered on that channel; all other data frames are dropped.
    """

    def __init__(
        self,
        personality: VendorPersonality,
        services: ServiceDirectory,
        clock: SimClock | None = None,
        vulnerabilities: tuple[VulnerabilityModel, ...] = (),
        armed: bool = True,
        data_handlers: dict | None = None,
    ) -> None:
        self.personality = personality
        self.services = services
        self.clock = clock if clock is not None else SimClock()
        self.vulnerabilities = tuple(vulnerabilities)
        self.armed = armed
        self.data_handlers = dict(data_handlers or {})
        self.channels = ChannelManager(personality.max_channels)
        # Ambient-state cache: (channel-table version, state, state.value).
        # Valid until the table's membership or any block's state changes
        # — both bump ``channels.version`` — so the per-packet transition
        # accounting stops re-walking the table for every fuzz frame.
        self._ambient_cache: tuple[int, ChannelState, str] = (
            self.channels.version,
            ChannelState.CLOSED,
            ChannelState.CLOSED.value,
        )
        self.state_history: list[StateVisit] = []
        self.crash: CrashReport | None = None
        self._next_identifier = 0x70
        # Per-packet personality reads, hoisted out of the hot loop
        # (personalities are frozen).
        self._response_latency = personality.response_latency
        self._signaling_mtu = personality.signaling_mtu
        self._rejects_garbage_tail = personality.rejects_garbage_tail
        #: Transition-coverage counters: (command, state, outcome) →
        #: hits. A black-box stand-in for the code coverage the paper
        #: cannot measure (§V cites Frankenstein's firmware-emulation
        #: approach); each key approximates one branch of the command
        #: dispatcher of a real stack.
        self.transition_hits: Counter = Counter()

    # -- public surface --------------------------------------------------------

    def handle_l2cap(self, packet: L2capPacket) -> list[L2capPacket]:
        """Process one incoming L2CAP frame; return outgoing frames.

        :raises TargetCrashedError: when an injected bug triggers.
        """
        if self.crash is not None:
            return []
        self.clock.advance(self._response_latency)

        if packet.header_cid != SIGNALING_CID:
            return self._handle_data_frame(packet)

        # CID checks are done per-command; only the F/D (framing) part of
        # the validation verdict gates dispatch, served from the
        # structural pass the sniffer already memoized on the packet.
        structural_reason = structural_reject_reason(packet, self._signaling_mtu)
        if structural_reason is not None:
            self._record_transition(packet, "structural-reject")
            return [command_reject(structural_reason, packet.identifier)]
        if self._rejects_garbage_tail and packet.garbage:
            # Hardened parsers discard anything beyond the declared length.
            self._record_transition(packet, "structural-reject")
            return [command_reject(RejectReason.COMMAND_NOT_UNDERSTOOD, packet.identifier)]
        responses = self._dispatch(packet)
        self._record_transition(packet, self._outcome_of(responses))
        return responses

    def reset(self) -> None:
        """Restart the stack after a crash (the testbed's device reset)."""
        self.crash = None
        self.channels.clear()

    def visited_states(self) -> frozenset[ChannelState]:
        """All channel states any channel has entered so far."""
        return frozenset(visit.state for visit in self.state_history)

    def transition_coverage(self) -> frozenset[tuple[str, str, str]]:
        """Distinct (command, state, outcome) branches exercised so far."""
        return frozenset(self.transition_hits)

    def outcome_totals(self) -> dict[str, int]:
        """Per-outcome totals of the transition tallies (telemetry view).

        Aggregates the ``(command, state, outcome)`` counters the engine
        already maintains — ``structural-reject``, ``reject``,
        ``handled``, ``silent`` — so the telemetry flush reads finished
        numbers instead of adding anything to the dispatch hot path.
        """
        totals: dict[str, int] = {}
        for (_, _, outcome), hits in self.transition_hits.items():
            totals[outcome] = totals.get(outcome, 0) + hits
        return totals

    def _record_transition(self, packet: L2capPacket, outcome: str) -> None:
        command = COMMAND_NAME_BY_VALUE.get(packet.code, "UNKNOWN")
        cache = self._ambient_cache
        if cache[0] != self.channels.version:
            cache = self._refresh_ambient()
        self.transition_hits[(command, cache[2], outcome)] += 1

    @staticmethod
    def _outcome_of(responses: list[L2capPacket]) -> str:
        if not responses:
            return "silent"
        if responses[0].code == CommandCode.COMMAND_REJECT:
            return "reject"
        return "handled"

    # -- helpers ---------------------------------------------------------------

    def _handle_data_frame(self, packet: L2capPacket) -> list[L2capPacket]:
        """Non-signaling traffic: deliver to a live channel or drop.

        Data frames never elicit *signaling* responses; a frame addressed
        to a live channel whose PSM has an upper-layer handler (the SDP
        server) is answered with a data frame on the same channel.
        """
        block = self.channels.get(packet.header_cid)
        if block is None:
            return []
        handler = self.data_handlers.get(block.psm)
        if handler is None:
            return []
        response_payload = handler(packet.tail)
        if not response_payload:
            return []
        return [
            L2capPacket(
                code=0,
                identifier=0,
                header_cid=block.remote_cid,
                tail=response_payload,
                fill_defaults=False,
            )
        ]

    def _visit(self, local_cid: int, state: ChannelState) -> None:
        self.state_history.append(StateVisit(self.clock.now, local_cid, state))

    def _set_state(self, block, state: ChannelState) -> None:
        block.state = state
        self.channels.version += 1
        self._visit(block.local_cid, state)

    def _take_identifier(self) -> int:
        self._next_identifier = self._next_identifier % 0xFF + 1
        return self._next_identifier

    def _ambient_state(self) -> ChannelState:
        """Best guess at 'the state under test' for orphan packets.

        Real stacks execute their channel state machine with whatever
        control block the lookup produced (possibly NULL); the relevant
        state is that of the connection's active channel. We use the most
        recently progressed live channel, preferring mid-configuration
        ones, falling back to CLOSED. The answer is cached against the
        channel table's version, so state changes must go through
        :meth:`_set_state` (they do — it bumps the version).
        """
        cache = self._ambient_cache
        if cache[0] == self.channels.version:
            return cache[1]
        return self._refresh_ambient()[1]

    def _refresh_ambient(self) -> tuple[int, ChannelState, str]:
        channels = self.channels
        state = None
        if len(channels):
            newest = None
            for block in reversed(channels.blocks()):
                if newest is None:
                    newest = block
                if block.state in CONFIGURATION_STATES:
                    state = block.state
                    break
            if state is None:
                state = newest.state
        else:
            state = ChannelState.CLOSED
        cache = (channels.version, state, state.value)
        self._ambient_cache = cache
        return cache

    def _check_bugs(self, packet: L2capPacket, state: ChannelState | None) -> None:
        """Evaluate injected bug predicates on an accepted packet.

        :raises TargetCrashedError: when a predicate matches (armed only).
        """
        if not self.armed or not self.vulnerabilities or self.crash is not None:
            return
        effective_state = state if state is not None else self._ambient_state()
        context = TriggerContext(
            packet=packet,
            state=effective_state,
            job=job_of(effective_state),
            allocated_cids=self.channels.allocated_cids(),
            live_states=frozenset(
                block.state for block in self.channels.live_channels()
            ),
        )
        for model in self.vulnerabilities:
            if model.check(context):
                self.crash = model.fire(context, self.clock.now)
                raise TargetCrashedError(self.crash)

    def _unsolicited_response(self, packet: L2capPacket) -> list[L2capPacket]:
        """Handle a response command that answers nothing we sent."""
        if self.personality.accepts_unsolicited_responses:
            self._check_bugs(packet, None)
            return []  # the Android quirk of paper §III.C: silently eaten
        return [command_reject(RejectReason.COMMAND_NOT_UNDERSTOOD, packet.identifier)]

    # -- dispatch ----------------------------------------------------------------

    #: Command dispatch table, populated once after the class body: the
    #: per-packet construction of this dict (and the ``CommandCode``
    #: call) was a measurable slice of the 20k-packet hot path.
    _HANDLERS: dict[int, Callable] = {}

    def _dispatch(self, packet: L2capPacket) -> list[L2capPacket]:
        handler = self._HANDLERS.get(packet.code)
        if handler is not None:
            return handler(self, packet)
        return self._on_le_family(packet)

    # -- command handlers ----------------------------------------------------------

    def _on_command_reject(self, packet: L2capPacket) -> list[L2capPacket]:
        return []  # rejects are terminal; never answered

    def _on_connection_req(self, packet: L2capPacket) -> list[L2capPacket]:
        self._check_bugs(packet, ChannelState.CLOSED)
        psm = packet.fields.get("psm", 0)
        scid = packet.fields.get("scid", 0)

        def refuse(result: ConnectionResult) -> list[L2capPacket]:
            return [
                L2capPacket(
                    CommandCode.CONNECTION_RSP,
                    packet.identifier,
                    {"dcid": 0, "scid": scid, "result": result, "status": 0},
                )
            ]

        if not is_valid_psm(psm):
            return refuse(ConnectionResult.REFUSED_PSM_NOT_SUPPORTED)
        record = self.services.lookup(psm)
        if record is None:
            return refuse(ConnectionResult.REFUSED_PSM_NOT_SUPPORTED)
        if record.requires_pairing:
            # Unpaired peer: refused without parsing further (paper §III.B).
            return refuse(ConnectionResult.REFUSED_SECURITY_BLOCK)
        if not 0x0040 <= scid <= 0xFFFF:
            return refuse(ConnectionResult.REFUSED_INVALID_SCID)
        if self.channels.by_remote_cid(scid) is not None:
            return refuse(ConnectionResult.REFUSED_SCID_ALREADY_ALLOCATED)
        try:
            block = self.channels.allocate(
                psm, scid, initiates_config=record.initiates_config
            )
        except ChannelError:
            return refuse(ConnectionResult.REFUSED_NO_RESOURCES)

        # The service sat in passive-open; entering via Connect Req is the
        # WAIT_CONNECT row of paper Table II.
        self._visit(block.local_cid, ChannelState.WAIT_CONNECT)
        responses = [
            L2capPacket(
                CommandCode.CONNECTION_RSP,
                packet.identifier,
                {
                    "dcid": block.local_cid,
                    "scid": scid,
                    "result": ConnectionResult.SUCCESS,
                    "status": 0,
                },
            )
        ]
        self._set_state(block, ChannelState.WAIT_CONFIG)
        if block.initiates_config:
            responses.append(self._send_local_config(block))
            self._set_state(block, ChannelState.WAIT_CONFIG_REQ_RSP)
        return responses

    def _on_create_channel_req(self, packet: L2capPacket) -> list[L2capPacket]:
        self._check_bugs(packet, ChannelState.WAIT_CREATE)
        psm = packet.fields.get("psm", 0)
        scid = packet.fields.get("scid", 0)
        cont_id = packet.fields.get("cont_id", 0)

        def refuse(result: ConnectionResult) -> list[L2capPacket]:
            return [
                L2capPacket(
                    CommandCode.CREATE_CHANNEL_RSP,
                    packet.identifier,
                    {"dcid": 0, "scid": scid, "result": result, "status": 0},
                )
            ]

        if not self.personality.supports_amp:
            return refuse(ConnectionResult.REFUSED_CONTROLLER_ID_NOT_SUPPORTED)
        if cont_id not in (0, 1):
            return refuse(ConnectionResult.REFUSED_CONTROLLER_ID_NOT_SUPPORTED)
        if not is_valid_psm(psm) or not self.services.supports(psm):
            return refuse(ConnectionResult.REFUSED_PSM_NOT_SUPPORTED)
        record = self.services.lookup(psm)
        if record.requires_pairing:
            return refuse(ConnectionResult.REFUSED_SECURITY_BLOCK)
        if not 0x0040 <= scid <= 0xFFFF:
            return refuse(ConnectionResult.REFUSED_INVALID_SCID)
        if self.channels.by_remote_cid(scid) is not None:
            return refuse(ConnectionResult.REFUSED_SCID_ALREADY_ALLOCATED)
        try:
            block = self.channels.allocate(
                psm, scid, initiates_config=record.initiates_config
            )
        except ChannelError:
            return refuse(ConnectionResult.REFUSED_NO_RESOURCES)

        self._visit(block.local_cid, ChannelState.WAIT_CREATE)
        responses = [
            L2capPacket(
                CommandCode.CREATE_CHANNEL_RSP,
                packet.identifier,
                {
                    "dcid": block.local_cid,
                    "scid": scid,
                    "result": ConnectionResult.SUCCESS,
                    "status": 0,
                },
            )
        ]
        self._set_state(block, ChannelState.WAIT_CONFIG)
        if block.initiates_config:
            responses.append(self._send_local_config(block))
            self._set_state(block, ChannelState.WAIT_CONFIG_REQ_RSP)
        return responses

    def _evaluate_config_options(self, packet: L2capPacket) -> ConfigResult:
        """Negotiate the option TLVs of a Configuration Request.

        Core 5.2 Vol 3 Part A §5: an MTU below the 48-byte minimum is
        unacceptable; an unknown option whose type lacks the hint bit
        (0x80) yields UNKNOWN_OPTIONS; undecodable TLVs are rejected.
        """
        if not packet.tail:
            return ConfigResult.SUCCESS
        try:
            options = decode_options(packet.tail)
        except PacketDecodeError:
            return ConfigResult.REJECTED
        for option in options:
            base_type = option.option_type & 0x7F
            if base_type not in CONFIG_OPTION_TYPE_VALUES:
                if option.option_type & 0x80:
                    continue  # hint options may be ignored
                return ConfigResult.UNKNOWN_OPTIONS
            if base_type == ConfigOptionType.MTU and len(option.value) >= 2:
                mtu = int.from_bytes(option.value[:2], "little")
                if mtu < MIN_SIGNALING_MTU:
                    return ConfigResult.UNACCEPTABLE_PARAMETERS
        return ConfigResult.SUCCESS

    def _send_local_config(self, block) -> L2capPacket:
        block.local_config_sent = True
        return configuration_request(
            dcid=block.remote_cid, identifier=self._take_identifier()
        )

    def _on_configuration_req(self, packet: L2capPacket) -> list[L2capPacket]:
        dcid = packet.fields.get("dcid", 0)
        block = self.channels.get(dcid)
        if block is None:
            if self.personality.accepts_unallocated_cidp:
                # The BlueDroid quirk: the CSM executes with whatever the
                # lookup returned — the D1/D2 bug path.
                self._check_bugs(packet, None)
                return [
                    L2capPacket(
                        CommandCode.CONFIGURATION_RSP,
                        packet.identifier,
                        {"scid": 0, "flags": 0, "result": ConfigResult.SUCCESS},
                    )
                ]
            return [command_reject(RejectReason.INVALID_CID, packet.identifier)]

        if block.state not in CONFIGURATION_STATES and block.state is not ChannelState.OPEN:
            return [command_reject(RejectReason.COMMAND_NOT_UNDERSTOOD, packet.identifier)]

        self._check_bugs(packet, block.state)
        option_result = self._evaluate_config_options(packet)
        if option_result is not ConfigResult.SUCCESS:
            # Negotiation failure: the channel stays where it was and the
            # peer must retry with acceptable parameters.
            return [
                L2capPacket(
                    CommandCode.CONFIGURATION_RSP,
                    packet.identifier,
                    {
                        "scid": block.remote_cid,
                        "flags": 0,
                        "result": option_result,
                    },
                )
            ]
        if block.state is ChannelState.OPEN:
            block.reset_config()
            self._set_state(block, ChannelState.WAIT_CONFIG)

        block.remote_config_done = True
        responses = [
            L2capPacket(
                CommandCode.CONFIGURATION_RSP,
                packet.identifier,
                {
                    "scid": block.remote_cid,
                    "flags": 0,
                    "result": ConfigResult.SUCCESS,
                },
            )
        ]
        if not block.local_config_sent:
            # We owe our own Configuration Request: pass through
            # WAIT_SEND_CONFIG and emit it.
            self._set_state(block, ChannelState.WAIT_SEND_CONFIG)
            responses.append(self._send_local_config(block))
            self._set_state(block, ChannelState.WAIT_CONFIG_RSP)
        elif block.local_config_done:
            self._set_state(block, ChannelState.OPEN)
        else:
            self._set_state(block, ChannelState.WAIT_CONFIG_RSP)
        return responses

    def _on_configuration_rsp(self, packet: L2capPacket) -> list[L2capPacket]:
        scid = packet.fields.get("scid", 0)
        block = self.channels.get(scid)
        if block is None or not block.local_config_sent or block.local_config_done:
            return self._unsolicited_response(packet)

        self._check_bugs(packet, block.state)
        result = packet.fields.get("result", 0)
        if result == ConfigResult.PENDING and self.personality.config_pending_supported:
            self._set_state(block, ChannelState.WAIT_IND_FINAL_RSP)
            return []
        if result in (ConfigResult.REJECTED, ConfigResult.UNACCEPTABLE_PARAMETERS):
            if self.personality.disconnects_on_config_rejection:
                request = disconnection_request(
                    dcid=block.remote_cid,
                    scid=block.local_cid,
                    identifier=self._take_identifier(),
                )
                self._set_state(block, ChannelState.WAIT_DISCONNECT)
                return [request]
            return []
        block.local_config_done = True
        if block.remote_config_done:
            self._set_state(block, ChannelState.OPEN)
        else:
            self._set_state(block, ChannelState.WAIT_CONFIG_REQ)
        return []

    def _on_disconnection_req(self, packet: L2capPacket) -> list[L2capPacket]:
        dcid = packet.fields.get("dcid", 0)
        scid = packet.fields.get("scid", 0)
        block = self.channels.get(dcid)
        if block is None or (block.remote_cid != scid and scid != 0):
            self._check_bugs(packet, None)
            return [command_reject(RejectReason.INVALID_CID, packet.identifier)]
        self._check_bugs(packet, block.state)
        self.channels.release(block.local_cid)
        self._visit(block.local_cid, ChannelState.CLOSED)
        return [
            L2capPacket(
                CommandCode.DISCONNECTION_RSP,
                packet.identifier,
                {"dcid": dcid, "scid": scid},
            )
        ]

    def _on_disconnection_rsp(self, packet: L2capPacket) -> list[L2capPacket]:
        scid = packet.fields.get("scid", 0)
        block = self.channels.get(scid)
        if block is None or block.state is not ChannelState.WAIT_DISCONNECT:
            return self._unsolicited_response(packet)
        self._check_bugs(packet, block.state)
        self.channels.release(block.local_cid)
        self._visit(block.local_cid, ChannelState.CLOSED)
        return []

    def _on_echo_req(self, packet: L2capPacket) -> list[L2capPacket]:
        self._check_bugs(packet, None)
        return [
            L2capPacket(CommandCode.ECHO_RSP, packet.identifier, tail=packet.tail)
        ]

    def _on_information_req(self, packet: L2capPacket) -> list[L2capPacket]:
        self._check_bugs(packet, None)
        info_type = packet.fields.get("info_type", 0)
        payload = _INFO_PAYLOADS.get(info_type)
        if payload is None:
            return [
                L2capPacket(
                    CommandCode.INFORMATION_RSP,
                    packet.identifier,
                    {"info_type": info_type, "result": InfoResult.NOT_SUPPORTED},
                )
            ]
        return [
            L2capPacket(
                CommandCode.INFORMATION_RSP,
                packet.identifier,
                {"info_type": info_type, "result": InfoResult.SUCCESS},
                tail=payload,
            )
        ]

    def _on_move_channel_req(self, packet: L2capPacket) -> list[L2capPacket]:
        icid = packet.fields.get("icid", 0)

        def respond(result: MoveResult) -> list[L2capPacket]:
            return [
                L2capPacket(
                    CommandCode.MOVE_CHANNEL_RSP,
                    packet.identifier,
                    {"icid": icid, "result": result},
                )
            ]

        if not self.personality.supports_amp:
            return respond(MoveResult.REFUSED_NOT_ALLOWED)
        block = self.channels.get(icid)
        if block is None:
            self._check_bugs(packet, None)
            return [command_reject(RejectReason.INVALID_CID, packet.identifier)]
        if block.state is not ChannelState.OPEN:
            return respond(MoveResult.REFUSED_COLLISION)
        self._check_bugs(packet, block.state)
        self._visit(block.local_cid, ChannelState.WAIT_MOVE)
        self._set_state(block, ChannelState.WAIT_MOVE_CONFIRM)
        return respond(MoveResult.SUCCESS)

    def _on_move_confirmation_req(self, packet: L2capPacket) -> list[L2capPacket]:
        icid = packet.fields.get("icid", 0)
        block = self.channels.get(icid)
        if not self.personality.supports_amp or block is None:
            self._check_bugs(packet, None)
            return [command_reject(RejectReason.INVALID_CID, packet.identifier)]
        if block.state is not ChannelState.WAIT_MOVE_CONFIRM:
            return [command_reject(RejectReason.COMMAND_NOT_UNDERSTOOD, packet.identifier)]
        self._check_bugs(packet, block.state)
        self._set_state(block, ChannelState.OPEN)
        return [
            L2capPacket(
                CommandCode.MOVE_CHANNEL_CONFIRMATION_RSP,
                packet.identifier,
                {"icid": icid},
            )
        ]

    def _on_le_family(self, packet: L2capPacket) -> list[L2capPacket]:
        """Handle the LE / credit-based command family (codes 0x12–0x1A).

        BR/EDR-only stacks reject these outright; LE-capable stacks parse
        them but refuse the operations on a BR/EDR link.
        """
        if not self.personality.supports_le_signaling:
            return [command_reject(RejectReason.COMMAND_NOT_UNDERSTOOD, packet.identifier)]
        self._check_bugs(packet, None)
        code = packet.code
        if code == CommandCode.CONNECTION_PARAMETER_UPDATE_REQ:
            return [
                L2capPacket(
                    CommandCode.CONNECTION_PARAMETER_UPDATE_RSP,
                    packet.identifier,
                    {"result": 0},
                )
            ]
        if code == CommandCode.LE_CREDIT_BASED_CONNECTION_REQ:
            return [
                L2capPacket(
                    CommandCode.LE_CREDIT_BASED_CONNECTION_RSP,
                    packet.identifier,
                    {"dcid": 0, "mtu": 0, "mps": 0, "credit": 0, "result": 0x0002},
                )
            ]
        if code == CommandCode.CREDIT_BASED_CONNECTION_REQ:
            return [
                L2capPacket(
                    CommandCode.CREDIT_BASED_CONNECTION_RSP,
                    packet.identifier,
                    {"mtu": 0, "mps": 0, "credit": 0, "result": 0x0002},
                )
            ]
        if code == CommandCode.CREDIT_BASED_RECONFIGURE_REQ:
            return [
                L2capPacket(
                    CommandCode.CREDIT_BASED_RECONFIGURE_RSP,
                    packet.identifier,
                    {"result": 0x0001},
                )
            ]
        if code == CommandCode.FLOW_CONTROL_CREDIT_IND:
            return []  # credits for an unknown channel are silently dropped
        return []  # stray LE responses are ignored


#: Information Response payloads keyed by InfoType value (Core 5.2
#: Vol 3 Part A §4.10); a miss means NOT_SUPPORTED.
_INFO_PAYLOADS: dict[int, bytes] = {
    InfoType.CONNECTIONLESS_MTU.value: (672).to_bytes(2, "little"),
    InfoType.EXTENDED_FEATURES.value: (0x000002B8).to_bytes(4, "little"),
    InfoType.FIXED_CHANNELS.value: (0x00000006).to_bytes(8, "little"),
}

#: BR/EDR command dispatch, resolved once. Codes outside this table fall
#: through to the LE / credit-based family handler.
HostStackEngine._HANDLERS = {
    int(CommandCode.COMMAND_REJECT): HostStackEngine._on_command_reject,
    int(CommandCode.CONNECTION_REQ): HostStackEngine._on_connection_req,
    int(CommandCode.CONNECTION_RSP): HostStackEngine._unsolicited_response,
    int(CommandCode.CONFIGURATION_REQ): HostStackEngine._on_configuration_req,
    int(CommandCode.CONFIGURATION_RSP): HostStackEngine._on_configuration_rsp,
    int(CommandCode.DISCONNECTION_REQ): HostStackEngine._on_disconnection_req,
    int(CommandCode.DISCONNECTION_RSP): HostStackEngine._on_disconnection_rsp,
    int(CommandCode.ECHO_REQ): HostStackEngine._on_echo_req,
    int(CommandCode.ECHO_RSP): HostStackEngine._unsolicited_response,
    int(CommandCode.INFORMATION_REQ): HostStackEngine._on_information_req,
    int(CommandCode.INFORMATION_RSP): HostStackEngine._unsolicited_response,
    int(CommandCode.CREATE_CHANNEL_REQ): HostStackEngine._on_create_channel_req,
    int(CommandCode.CREATE_CHANNEL_RSP): HostStackEngine._unsolicited_response,
    int(CommandCode.MOVE_CHANNEL_REQ): HostStackEngine._on_move_channel_req,
    int(CommandCode.MOVE_CHANNEL_RSP): HostStackEngine._unsolicited_response,
    int(CommandCode.MOVE_CHANNEL_CONFIRMATION_REQ): (
        HostStackEngine._on_move_confirmation_req
    ),
    int(CommandCode.MOVE_CHANNEL_CONFIRMATION_RSP): (
        HostStackEngine._unsolicited_response
    ),
}
