"""Crash artefacts: tombstones and crash dumps (paper Fig. 12).

When an injected bug fires, the virtual stack produces a
:class:`CrashReport` describing the failure the way the paper observed
it: Android stacks emit a *tombstone* naming ``l2c_csm_execute`` and the
``t_l2c_ccb`` channel control block, BlueZ emits a kernel-style general
protection fault dump, and RTKit devices simply vanish. The report also
fixes which transport error the fuzzer sees afterwards, which is what the
detection phase classifies (DoS vs crash).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import (
    ConnectionAbortedTargetError,
    ConnectionFailedError,
    ConnectionResetTargetError,
    TargetTimeoutError,
    TransportError,
)


class CrashKind(enum.Enum):
    """Failure modes observed in the paper's Table VI."""

    #: Bluetooth service shut down — "Connection Failed" — a DoS.
    DOS = "DoS"
    #: Process/device crash with uncontrolled termination.
    CRASH = "Crash"


class DumpKind(enum.Enum):
    """Crash-dump artefact styles per stack family."""

    TOMBSTONE = "tombstone"  # Android / BlueDroid
    KERNEL_OOPS = "kernel_oops"  # Linux / BlueZ
    NONE = "none"  # devices that die silently (RTKit earbuds)


_CRASH_ERRORS: dict[CrashKind, type[TransportError]] = {
    CrashKind.DOS: ConnectionFailedError,
    CrashKind.CRASH: ConnectionResetTargetError,
}


@dataclasses.dataclass(frozen=True)
class CrashReport:
    """Everything a triggered bug discloses.

    :param vulnerability_id: identifier of the injected bug model.
    :param kind: DoS or crash (drives the fuzzer-visible error).
    :param dump_kind: which artefact the device leaves behind.
    :param summary: one-line cause ("null pointer dereference", ...).
    :param function: the stack function the fault is attributed to.
    :param fault_address: faulting address (0x20 for the paper's
        null-deref: a member access off a NULL ``t_l2c_ccb``).
    :param trigger_description: the packet that pulled the trigger —
        the root-cause hint the paper lists as future work.
    :param sim_time: simulated timestamp of the crash.
    :param silent: device dies without any reset/abort signalling; the
        fuzzer observes a timeout instead of a reset.
    """

    vulnerability_id: str
    kind: CrashKind
    dump_kind: DumpKind
    summary: str
    function: str
    fault_address: int
    trigger_description: str
    sim_time: float = 0.0
    silent: bool = False

    @property
    def transport_error(self) -> type[TransportError]:
        """Error class the fuzzer's socket operations raise afterwards."""
        if self.silent:
            return TargetTimeoutError
        return _CRASH_ERRORS[self.kind]

    @property
    def leaves_dump(self) -> bool:
        """True when a crash-dump artefact is generated."""
        return self.dump_kind is not DumpKind.NONE

    def render_dump(self, device_name: str = "device", build: str = "unknown") -> str:
        """Render the crash-dump text artefact.

        Tombstones follow the layout of paper Fig. 12; kernel oopses
        follow the classic general-protection-fault trace of dmesg.
        """
        if self.dump_kind is DumpKind.TOMBSTONE:
            return self._render_tombstone(build)
        if self.dump_kind is DumpKind.KERNEL_OOPS:
            return self._render_kernel_oops(device_name)
        return ""

    def _render_tombstone(self, build: str) -> str:
        stars = "*** " * 16
        return (
            f"{stars.strip()}\n"
            f"Build fingerprint: '{build}'\n"
            "Revision: 'MP1.0'\n"
            "ABI: 'arm64'\n"
            f"Timestamp: {self.sim_time:.3f} (simulated)\n"
            "pid: 1948, tid: 2946, name: bt_main_thread "
            ">>> com.android.bluetooth <<<\n"
            "uid: 1002\n"
            "signal 11 (SIGSEGV), code 1 (SEGV_MAPERR), "
            f"fault addr 0x{self.fault_address:x}\n"
            f"Cause: {self.summary}\n"
            "backtrace:\n"
            f"      #00 pc 0000000000378da0  /system/lib64/libbluetooth.so "
            f"({self.function}+3748)\n"
            f"Trigger: {self.trigger_description}\n"
        )

    def _render_kernel_oops(self, device_name: str) -> str:
        return (
            f"{device_name} kernel: general protection fault: 0000 [#1] SMP PTI\n"
            f"{device_name} kernel: RIP: 0010:{self.function}+0x1f4/0x520 [bluetooth]\n"
            f"{device_name} kernel: Call Trace:\n"
            f"{device_name} kernel:  l2cap_recv_frame+0xa51/0x1370 [bluetooth]\n"
            f"{device_name} kernel:  hci_rx_work+0x1a3/0x3e0 [bluetooth]\n"
            f"{device_name} kernel: Cause: {self.summary}\n"
            f"{device_name} kernel: Trigger: {self.trigger_description}\n"
        )
