"""Channel control blocks and CID allocation for a virtual host stack.

Mirrors the ``t_l2c_ccb`` structures of real stacks (the very structure
the Pixel 3 null-pointer dereference of paper Fig. 12 lives in). Each
connection-oriented channel owns a control block holding its CIDs, PSM
and configuration progress; the manager allocates local CIDs from the
dynamic range 0x0040 upward, exactly the dynamic allocation the paper's
CIDP mutation deliberately ignores.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ChannelError
from repro.l2cap.constants import DYNAMIC_CID_MAX, DYNAMIC_CID_MIN
from repro.l2cap.states import ChannelState


@dataclasses.dataclass
class ChannelControlBlock:
    """Per-channel state (a ``t_l2c_ccb`` analogue).

    :param local_cid: CID this device allocated for the channel.
    :param remote_cid: peer's CID (0 until learned from the peer).
    :param psm: service port the channel was opened against.
    :param state: current position in the 19-state machine.
    :param local_config_done: our Configuration Request was answered.
    :param remote_config_done: the peer's Configuration Request was
        answered by us.
    :param local_config_sent: we have sent our Configuration Request.
    :param initiates_config: channel starts configuration spontaneously.
    """

    local_cid: int
    remote_cid: int = 0
    psm: int = 0
    state: ChannelState = ChannelState.CLOSED
    local_config_done: bool = False
    remote_config_done: bool = False
    local_config_sent: bool = False
    initiates_config: bool = False

    @property
    def is_open(self) -> bool:
        """True once both configuration directions completed."""
        return self.state is ChannelState.OPEN

    def reset_config(self) -> None:
        """Forget configuration progress (re-configuration from OPEN)."""
        self.local_config_done = False
        self.remote_config_done = False
        self.local_config_sent = False


class ChannelManager:
    """Allocates CIDs and tracks the live channels of one device.

    :param max_channels: channel-capacity limit. Real applications "form
        as many channels as the number of supported Bluetooth services"
        (paper §IV.C) — connection requests beyond the limit are refused
        with "no resources", one of the rejection sources the paper
        attributes to L2Fuzz's own traffic.
    """

    def __init__(self, max_channels: int = 8) -> None:
        if max_channels < 1:
            raise ChannelError("a stack needs at least one channel slot")
        self.max_channels = max_channels
        self._channels: dict[int, ChannelControlBlock] = {}
        self._next_cid = DYNAMIC_CID_MIN
        #: Monotonic generation counter: bumped on any membership change
        #: (and by the engine on state transitions), so per-packet
        #: derived views — the engine's ambient-state guess — can be
        #: cached until something actually changed.
        self.version = 0

    def allocate(self, psm: int, remote_cid: int, initiates_config: bool = False) -> ChannelControlBlock:
        """Create a control block with a freshly allocated local CID.

        :raises ChannelError: when the capacity limit is reached or the
            dynamic CID space is exhausted.
        """
        if len(self._channels) >= self.max_channels:
            raise ChannelError("channel capacity exhausted")
        cid = self._next_free_cid()
        block = ChannelControlBlock(
            local_cid=cid,
            remote_cid=remote_cid,
            psm=psm,
            initiates_config=initiates_config,
        )
        self._channels[cid] = block
        self.version += 1
        return block

    def _next_free_cid(self) -> int:
        cid = self._next_cid
        wrapped = False
        while cid in self._channels:
            cid += 1
            if cid > DYNAMIC_CID_MAX:
                if wrapped:
                    raise ChannelError("dynamic CID space exhausted")
                cid = DYNAMIC_CID_MIN
                wrapped = True
        self._next_cid = cid + 1
        if self._next_cid > DYNAMIC_CID_MAX:
            self._next_cid = DYNAMIC_CID_MIN
        return cid

    def release(self, local_cid: int) -> None:
        """Tear down the channel at *local_cid* (no-op if absent)."""
        if self._channels.pop(local_cid, None) is not None:
            self.version += 1

    def get(self, local_cid: int) -> ChannelControlBlock | None:
        """Look up a channel by our local CID."""
        return self._channels.get(local_cid)

    def by_remote_cid(self, remote_cid: int) -> ChannelControlBlock | None:
        """Look up a channel by the peer's CID."""
        for block in self._channels.values():
            if block.remote_cid == remote_cid and remote_cid != 0:
                return block
        return None

    def allocated_cids(self) -> frozenset[int]:
        """The set of local CIDs currently allocated."""
        return frozenset(self._channels)

    def live_channels(self) -> tuple[ChannelControlBlock, ...]:
        """All current control blocks."""
        return tuple(self._channels.values())

    def blocks(self):
        """Live view of the control blocks (insertion order, no copy)."""
        return self._channels.values()

    def clear(self) -> None:
        """Release every channel (stack restart)."""
        self._channels.clear()
        self._next_cid = DYNAMIC_CID_MIN
        self.version += 1

    def __len__(self) -> int:
        return len(self._channels)
