"""Injectable vulnerability models for the virtual host stacks.

The paper found five zero-days in deployed stacks. We reproduce each as a
*bug model*: a predicate over the packet a stack has just **accepted for
parsing** (rejected packets never reach buggy code — the entire premise
of core-field mutating) plus the channel state it arrived in. When the
predicate matches, the stack raises
:class:`~repro.errors.TargetCrashedError` carrying a
:class:`~repro.stack.crash.CrashReport`.

The five models mirror paper Table VI and §IV.E:

* ``bluedroid-cidp-null-deref`` — D1/D2: a Configuration Request whose
  DCID ignores dynamic allocation, with a garbage tail, dereferences a
  NULL ``t_l2c_ccb`` in ``l2c_csm_execute`` → Bluetooth DoS.
* ``bluedroid-create-channel-dos`` — D3: a malformed Create Channel
  Request in the creation job (Wait-Create state) → DoS. The paper notes
  only L2Fuzz covers this state and command.
* ``rtkit-psm-shutdown`` — D5: a connection attempt with an abnormal
  odd-high-byte PSM kills the earbud firmware outright (silent death →
  the fuzzer sees a timeout).
* ``bluez-gpf`` — D8: a rare general protection fault on a Disconnection
  Request carrying an unallocated DCID with a garbage tail and an
  unlucky address alignment; deliberately narrow so discovery takes
  orders of magnitude longer than the others (2h40m in the paper).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.l2cap.constants import CommandCode, is_valid_psm
from repro.l2cap.jobs import Job
from repro.l2cap.states import ChannelState
from repro.stack.crash import CrashKind, CrashReport, DumpKind


@dataclasses.dataclass(frozen=True)
class TriggerContext:
    """What a bug predicate can inspect at the moment of parsing.

    :param packet: the accepted (parsed) L2CAP packet.
    :param state: state of the channel the packet addressed, if any.
    :param job: job of that state (paper Table I), if any.
    :param allocated_cids: the stack's currently allocated local CIDs.
    :param live_states: states of every currently live channel — lets a
        predicate require, e.g., "a half-configured channel exists".
    """

    packet: object
    state: ChannelState | None
    job: Job | None
    allocated_cids: frozenset[int]
    live_states: frozenset[ChannelState] = frozenset()

    def field(self, name: str) -> int | None:
        """Field value from the packet (None when absent)."""
        return self.packet.fields.get(name)

    @property
    def has_garbage(self) -> bool:
        """True when the packet carries a garbage tail."""
        return bool(self.packet.garbage)

    def cid_unallocated(self, name: str) -> bool:
        """True when field *name* holds a dynamic CID we never allocated."""
        value = self.field(name)
        if value is None:
            return False
        return 0x0040 <= value <= 0xFFFF and value not in self.allocated_cids


@dataclasses.dataclass(frozen=True)
class VulnerabilityModel:
    """One injectable bug.

    :param vulnerability_id: stable identifier.
    :param description: paper-style one-liner for reports.
    :param predicate: trigger condition over a :class:`TriggerContext`.
    :param kind: DoS or crash.
    :param dump_kind: artefact style on trigger.
    :param function: stack function blamed in the dump.
    :param fault_address: faulting address recorded in the dump.
    :param silent: device dies without signalling (timeout observed).
    """

    vulnerability_id: str
    description: str
    predicate: Callable[[TriggerContext], bool]
    kind: CrashKind
    dump_kind: DumpKind
    function: str
    fault_address: int = 0x20
    silent: bool = False

    def check(self, context: TriggerContext) -> bool:
        """Evaluate the trigger predicate."""
        return self.predicate(context)

    def fire(self, context: TriggerContext, sim_time: float) -> CrashReport:
        """Build the crash report for a matched trigger."""
        return CrashReport(
            vulnerability_id=self.vulnerability_id,
            kind=self.kind,
            dump_kind=self.dump_kind,
            summary=self.description,
            function=self.function,
            fault_address=self.fault_address,
            trigger_description=context.packet.describe(),
            sim_time=sim_time,
            silent=self.silent,
        )


# ---------------------------------------------------------------------------
# The five paper bugs
# ---------------------------------------------------------------------------


def _cidp_null_deref(context: TriggerContext) -> bool:
    """D1/D2 trigger (§IV.E): config-job CONFIG_REQ, bogus DCID, garbage.

    The BlueDroid channel-state-machine looks up the ``t_l2c_ccb`` for
    the DCID without a NULL check before touching the garbage-extended
    option region; an unallocated-but-legal DCID yields a NULL block.
    """
    if context.packet.code != CommandCode.CONFIGURATION_REQ:
        return False
    if context.job is not Job.CONFIGURATION and context.state is not ChannelState.OPEN:
        return False
    return context.cid_unallocated("dcid") and context.has_garbage


def _create_channel_dos(context: TriggerContext) -> bool:
    """D3 trigger: malformed Create Channel Request in the creation flow.

    Fires only while an AMP channel creation is actually in progress —
    a live, still-unconfigured channel (WAIT_CONFIG) must exist, which is
    the Wait-Create fuzzing situation the paper describes ("detected in
    the Wait-Create state, which only L2Fuzz covers"). On top of that the
    packet needs a garbage tail, a controller ID no AMP controller backs,
    and a source CID whose low bits collide with the creation bookkeeping
    hash (a narrow window: this bug took the paper ~7 minutes, not
    seconds).
    """
    if context.packet.code != CommandCode.CREATE_CHANNEL_REQ:
        return False
    if ChannelState.WAIT_CONFIG not in context.live_states:
        return False
    if not context.has_garbage:
        return False
    cont_id = context.field("cont_id") or 0
    scid = context.field("scid") or 0
    return cont_id not in (0, 1) and scid % 4 == 0


def _psm_shutdown(context: TriggerContext) -> bool:
    """D5 trigger: abnormal odd-high-byte PSM in a connection attempt."""
    if context.packet.code not in (
        CommandCode.CONNECTION_REQ,
        CommandCode.CREATE_CHANNEL_REQ,
    ):
        return False
    psm = context.field("psm")
    if psm is None or is_valid_psm(psm):
        return False
    return (psm >> 8) & 0x01 == 1  # the odd-MSB ranges of Table IV


#: Width of the D8 alignment window; 22/65536 ≈ 1/3000 of random DCIDs.
_GPF_WINDOW = 22


def _bluez_gpf(context: TriggerContext) -> bool:
    """D8 trigger: rare GPF on a garbage-tailed Disconnection Request.

    Both CIDs must dodge the allocation table and the DCID must land in
    a narrow hash window — a deliberately tiny target modelling why the
    paper needed 2h40m on BlueZ versus minutes elsewhere.
    """
    if context.packet.code != CommandCode.DISCONNECTION_REQ:
        return False
    if not context.has_garbage:
        return False
    if not (context.cid_unallocated("dcid") and context.cid_unallocated("scid")):
        return False
    dcid = context.field("dcid") or 0
    return (dcid * 0x9E37) % 0xFFFF < _GPF_WINDOW


BLUEDROID_CIDP_NULL_DEREF = VulnerabilityModel(
    vulnerability_id="bluedroid-cidp-null-deref",
    description="null pointer dereference",
    predicate=_cidp_null_deref,
    kind=CrashKind.DOS,
    dump_kind=DumpKind.TOMBSTONE,
    function="l2c_csm_execute(t_l2c_ccb*, unsigned short, void*)",
    fault_address=0x20,
)

BLUEDROID_CREATE_CHANNEL_DOS = VulnerabilityModel(
    vulnerability_id="bluedroid-create-channel-dos",
    description="null pointer dereference in AMP channel creation",
    predicate=_create_channel_dos,
    kind=CrashKind.DOS,
    dump_kind=DumpKind.TOMBSTONE,
    function="l2c_csm_execute(t_l2c_ccb*, unsigned short, void*)",
    fault_address=0x18,
)

RTKIT_PSM_SHUTDOWN = VulnerabilityModel(
    vulnerability_id="rtkit-psm-shutdown",
    description="unexpected termination on abnormal PSM",
    predicate=_psm_shutdown,
    kind=CrashKind.CRASH,
    dump_kind=DumpKind.NONE,
    function="rtkit_l2cap_connect_ind",
    silent=True,
)

BLUEZ_GPF = VulnerabilityModel(
    vulnerability_id="bluez-gpf",
    description="general protection fault",
    predicate=_bluez_gpf,
    kind=CrashKind.CRASH,
    dump_kind=DumpKind.KERNEL_OOPS,
    function="l2cap_disconnect_req",
    fault_address=0x9E37,
)


#: Registry of every modelled bug, keyed by identifier.
KNOWN_VULNERABILITIES: dict[str, VulnerabilityModel] = {
    model.vulnerability_id: model
    for model in (
        BLUEDROID_CIDP_NULL_DEREF,
        BLUEDROID_CREATE_CHANNEL_DOS,
        RTKIT_PSM_SHUTDOWN,
        BLUEZ_GPF,
    )
}
