"""Vendor personalities: how real host stacks deviate from the spec.

The paper's fuzzer design leans on two empirical facts about deployed
stacks: (1) they reject differently — mutated ``F``/``D`` fields provoke
"command not understood", bogus CIDs provoke "invalid CID", oversized
frames provoke "MTU exceeded" — and (2) they *accept* differently — some
Android builds accept a Connect Rsp while in WAIT_CONNECT (§III.C), and
the buggy stacks parse CIDP values a conformant stack would refuse.

A :class:`VendorPersonality` bundles those deviations so the same engine
reproduces BlueDroid, BlueZ, the Apple stacks, Broadcom BTW and the
Windows stack.
"""

from __future__ import annotations

import dataclasses

from repro.l2cap.constants import DEFAULT_SIGNALING_MTU


@dataclasses.dataclass(frozen=True)
class VendorPersonality:
    """Behavioural profile of one vendor's L2CAP implementation.

    :param name: personality name (e.g. ``"BlueDroid"``).
    :param signaling_mtu: signaling-channel MTU; larger frames get
        "Signaling MTU exceeded" rejects.
    :param max_channels: channel-capacity limit (≈ number of services).
    :param accepts_unsolicited_responses: the Android quirk of §III.C —
        response commands arriving out of context are silently ignored
        instead of rejected.
    :param accepts_unallocated_cidp: parses channel-endpoint values that
        were never dynamically allocated instead of rejecting with
        "Invalid CID" — the quirk that exposes the CIDP bug path.
    :param rejects_garbage_tail: hardened parsers (the stacks where the
        paper found nothing) discard any packet with bytes beyond the
        declared length.
    :param supports_amp: implements Create/Move channel flows; stacks
        without AMP refuse them, which caps reachable states.
    :param supports_le_signaling: answers the LE/credit-based command
        family; BR/EDR-only stacks reject those codes.
    :param config_pending_supported: honours result=PENDING in a
        Configuration Response (enables the WAIT_IND_FINAL_RSP path).
    :param disconnects_on_config_rejection: initiates its own disconnect
        when its Configuration Request is rejected (enables the
        WAIT_DISCONNECT path for an external fuzzer).
    :param response_latency: extra seconds of simulated processing per
        exchange; dominates time-to-vulnerability in Table VI runs.
    """

    name: str
    signaling_mtu: int = DEFAULT_SIGNALING_MTU
    max_channels: int = 8
    accepts_unsolicited_responses: bool = False
    accepts_unallocated_cidp: bool = False
    rejects_garbage_tail: bool = False
    supports_amp: bool = False
    supports_le_signaling: bool = False
    config_pending_supported: bool = True
    disconnects_on_config_rejection: bool = True
    response_latency: float = 0.0


#: Android's open-source stack: permissive parser, AMP code still linked
#: in, accepts unsolicited responses (paper §III.C) and unallocated CIDP
#: values (the D1/D2 bug path).
BLUEDROID = VendorPersonality(
    name="BlueDroid",
    signaling_mtu=672,
    max_channels=10,
    accepts_unsolicited_responses=True,
    accepts_unallocated_cidp=True,
    supports_amp=True,
    supports_le_signaling=True,
)

#: Linux BlueZ: spec-strict on CIDs, AMP-capable, generous MTU.
BLUEZ = VendorPersonality(
    name="BlueZ",
    signaling_mtu=672,
    max_channels=13,
    supports_amp=True,
    supports_le_signaling=True,
)

#: Apple iOS stack: hardened proprietary parser (paper: "they may have
#: implemented an exception handling logic for malformed packets").
IOS_STACK = VendorPersonality(
    name="iOS stack",
    signaling_mtu=672,
    max_channels=12,
    rejects_garbage_tail=True,
    config_pending_supported=False,
)

#: Apple RTKit (AirPods firmware): tiny embedded stack, few channels, no
#: AMP, fragile PSM handling.
RTKIT = VendorPersonality(
    name="RTKit stack",
    signaling_mtu=256,
    max_channels=6,
    config_pending_supported=False,
    disconnects_on_config_rejection=False,
)

#: Broadcom BTW (Galaxy Buds+): hardened embedded stack.
BTW = VendorPersonality(
    name="BTW",
    signaling_mtu=512,
    max_channels=6,
    rejects_garbage_tail=True,
    config_pending_supported=False,
)

#: Microsoft Windows stack: hardened, no AMP exposure to peers.
WINDOWS_STACK = VendorPersonality(
    name="Windows stack",
    signaling_mtu=672,
    max_channels=12,
    rejects_garbage_tail=True,
)


#: All built-in personalities by name.
PERSONALITIES: dict[str, VendorPersonality] = {
    personality.name: personality
    for personality in (BLUEDROID, BLUEZ, IOS_STACK, RTKIT, BTW, WINDOWS_STACK)
}
