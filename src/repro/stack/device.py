"""Virtual Bluetooth devices: the fuzzing targets.

A :class:`VirtualDevice` bundles the meta-information the paper's
target-scanning phase collects (MAC address, device name, class of
device, OUI), a vendor-flavoured :class:`~repro.stack.engine.HostStackEngine`,
and the ACL framing glue that plugs into a
:class:`~repro.hci.transport.VirtualLink`.

Crash handling: when the engine's injected bug fires, the device records
the :class:`~repro.stack.crash.CrashReport`, renders the crash-dump
artefact (tombstone / kernel oops) and re-raises so the link goes down
with the crash's transport error — which is all the fuzzer ever sees.
"""

from __future__ import annotations

import dataclasses
import re

from repro.errors import PacketDecodeError, TargetCrashedError
from repro.hci.fragmentation import Reassembler
from repro.hci.packets import ACL_HEADER_LEN, AclPacket, HCI_ACL_DATA_PKT, encode_acl
from repro.hci.transport import PacketFrame, SimClock, TaggedFrame, VirtualLink
from repro.l2cap.constants import Psm
from repro.l2cap.packets import L2capPacket
from repro.stack.crash import CrashReport
from repro.stack.engine import HostStackEngine
from repro.stack.services import ServiceDirectory, standard_services
from repro.stack.vendors import VendorPersonality
from repro.stack.vulnerabilities import VulnerabilityModel

_MAC_PATTERN = re.compile(r"^([0-9A-Fa-f]{2}:){5}[0-9A-Fa-f]{2}$")


@dataclasses.dataclass(frozen=True)
class DeviceMeta:
    """Scan-visible identity of a device (paper §III.B).

    :param mac_address: Bluetooth device address.
    :param name: friendly device name.
    :param device_class: class-of-device string ("smartphone", ...).
    :param oui: Organizationally Unique Identifier (first three octets).
    """

    mac_address: str
    name: str
    device_class: str

    def __post_init__(self) -> None:
        if not _MAC_PATTERN.match(self.mac_address):
            raise ValueError(f"malformed MAC address {self.mac_address!r}")

    @property
    def oui(self) -> str:
        """The vendor prefix of the MAC address."""
        return self.mac_address[:8].upper()


class VirtualDevice:
    """One fuzz target: identity + host stack + link endpoint.

    :param meta: scan-visible identity.
    :param personality: vendor stack behaviour profile.
    :param services: advertised services; a standard phone-like catalogue
        when omitted.
    :param vulnerabilities: injected bug models.
    :param clock: campaign clock (shared with the link).
    :param armed: False disables bug triggering (ratio-measurement mode).
    :param build_fingerprint: identifier stamped into tombstones.
    """

    def __init__(
        self,
        meta: DeviceMeta,
        personality: VendorPersonality,
        services: ServiceDirectory | None = None,
        vulnerabilities: tuple[VulnerabilityModel, ...] = (),
        clock: SimClock | None = None,
        armed: bool = True,
        build_fingerprint: str = "generic/release-keys",
    ) -> None:
        self.meta = meta
        self.clock = clock if clock is not None else SimClock()
        self.services = services if services is not None else standard_services()
        self.sdp_server = self._build_sdp_server()
        data_handlers = (
            {Psm.SDP: self.sdp_server.handle_request}
            if self.sdp_server is not None
            else {}
        )
        self.engine = HostStackEngine(
            personality,
            self.services,
            clock=self.clock,
            vulnerabilities=vulnerabilities,
            armed=armed,
            data_handlers=data_handlers,
        )
        self.build_fingerprint = build_fingerprint
        self.crash_dumps: list[str] = []
        self.reset_count = 0
        self._reassembler = Reassembler()

    # -- identity / discovery ---------------------------------------------------

    @property
    def personality(self) -> VendorPersonality:
        """The vendor profile of this device's stack."""
        return self.engine.personality

    @property
    def crash(self) -> CrashReport | None:
        """The pending crash, if the device is currently down."""
        return self.engine.crash

    @property
    def is_alive(self) -> bool:
        """True while the Bluetooth service is running."""
        return self.engine.crash is None

    def inquiry(self) -> DeviceMeta:
        """Answer a discovery inquiry (MAC, name, class, OUI)."""
        return self.meta

    def sdp_browse(self):
        """List advertised services through a side channel.

        This is the shortcut view; the scanner's default path performs
        the real over-the-air SDP exchange against :attr:`sdp_server`.
        """
        return self.services.all_records()

    def _build_sdp_server(self):
        """Stand up the on-device SDP server when SDP is advertised."""
        if not self.services.supports(Psm.SDP):
            return None
        from repro.sdp.server import SdpServer

        return SdpServer(self.services)

    # -- link glue -----------------------------------------------------------------

    def attach_to(self, link: VirtualLink) -> None:
        """Register this device as the remote endpoint of *link*."""
        link.attach(self.handle_acl_frame, accepts_l2cap=True)

    def handle_acl_frame(
        self, frame: bytes, l2cap: L2capPacket | None = None
    ) -> list[bytes]:
        """Process one raw ACL frame; return raw ACL responses.

        Continuation fragments are recombined per connection handle; an
        incomplete frame produces no response yet.

        :param l2cap: the sender's already-decoded packet (loopback fast
            path). It is trusted only when its cached encoding matches
            the reassembled payload byte-for-byte, so the stack always
            behaves exactly as if it had parsed the wire bytes.

        :raises TargetCrashedError: when an injected bug fires (after the
            crash dump has been recorded on-device).
        """
        hinted = False
        if (
            l2cap is not None
            and len(frame) - ACL_HEADER_LEN == len(wire := l2cap.encode())
            and frame[0] == HCI_ACL_DATA_PKT
            and frame.endswith(wire)
        ):
            # Loopback fast path: a complete, unfragmented frame whose
            # payload is byte-identical to the sender's decoded packet —
            # skip the ACL parse and reassembly entirely. Hinted frames
            # are never fragments, so the reassembler state is untouched.
            handle = int.from_bytes(frame[1:3], "little") & 0x0FFF
            packet = l2cap
            hinted = True
        else:
            try:
                acl = AclPacket.decode(frame)
            except PacketDecodeError:
                return []  # undecodable radio noise is dropped silently
            payload = self._reassembler.feed(acl)
            if payload is None:
                return []  # waiting for more fragments
            handle = acl.handle
            if l2cap is not None and payload == l2cap.encode():
                packet = l2cap
            else:
                try:
                    packet = L2capPacket.decode(payload)
                except PacketDecodeError:
                    return []
        try:
            responses = self.engine.handle_l2cap(packet)
        except TargetCrashedError as crash_exc:
            self._record_crash(crash_exc.crash)
            raise
        frames: list = []
        for response in responses:
            view = response.loopback_view()
            if view is not None and hinted:
                # The sender proved it reads decoded packets (it hinted
                # one down); hand the response back as an object and
                # skip both serialisations entirely.
                frames.append(PacketFrame(handle, view))
                continue
            raw = encode_acl(handle, response.encode())
            frames.append(TaggedFrame.tag(raw, view) if view is not None else raw)
        return frames

    def _record_crash(self, crash: CrashReport) -> None:
        # Upper-layer handlers (SDP/RFCOMM) raise crashes past the
        # engine's own bug hooks; make the engine agree it is down.
        if self.engine.crash is None:
            self.engine.crash = crash
        if crash.leaves_dump:
            dump = crash.render_dump(
                device_name=self.meta.name, build=self.build_fingerprint
            )
            self.crash_dumps.append(dump)

    # -- lifecycle -------------------------------------------------------------------

    def reset(self, link: VirtualLink | None = None) -> None:
        """Manually reset the device after a crash (paper §V limitation 1:
        "the tester must manually reset the device"). Restores the stack
        and, when given, the link.
        """
        self.engine.reset()
        self.reset_count += 1
        if link is not None:
            link.restore()
