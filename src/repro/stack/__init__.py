"""Virtual host-stack substrate: the fuzzing targets."""

from repro.stack.channels import ChannelControlBlock, ChannelManager
from repro.stack.crash import CrashKind, CrashReport, DumpKind
from repro.stack.device import DeviceMeta, VirtualDevice
from repro.stack.engine import HostStackEngine, StateVisit
from repro.stack.services import ServiceDirectory, ServiceRecord, standard_services
from repro.stack.vendors import (
    BLUEDROID,
    BLUEZ,
    BTW,
    IOS_STACK,
    PERSONALITIES,
    RTKIT,
    WINDOWS_STACK,
    VendorPersonality,
)
from repro.stack.vulnerabilities import (
    KNOWN_VULNERABILITIES,
    TriggerContext,
    VulnerabilityModel,
)

__all__ = [
    "BLUEDROID",
    "BLUEZ",
    "BTW",
    "ChannelControlBlock",
    "ChannelManager",
    "CrashKind",
    "CrashReport",
    "DeviceMeta",
    "DumpKind",
    "HostStackEngine",
    "IOS_STACK",
    "KNOWN_VULNERABILITIES",
    "PERSONALITIES",
    "RTKIT",
    "ServiceDirectory",
    "ServiceRecord",
    "StateVisit",
    "TriggerContext",
    "VendorPersonality",
    "VirtualDevice",
    "VulnerabilityModel",
    "WINDOWS_STACK",
    "standard_services",
]
