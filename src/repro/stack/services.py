"""Service records and the SDP-style service directory of a virtual device.

The paper's target-scanning phase asks the target for its supported
service ports and probes each for "does this port require pairing?",
falling back to SDP (PSM 0x0001) which never requires pairing. This
module is the directory those probes interrogate.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ServiceError
from repro.l2cap.constants import Psm, is_valid_psm


@dataclasses.dataclass(frozen=True)
class ServiceRecord:
    """One L2CAP service exposed by a device.

    :param psm: the service port.
    :param name: human-readable service name (as SDP would report).
    :param requires_pairing: True when unpaired connection requests are
        refused with a security block — the ports the fuzzer must avoid.
    :param initiates_config: True when the service's channel starts its
        own Configuration Request immediately after accepting a
        connection (streaming services like AVDTP do; SDP does not).
        Varying this across services is what lets an external fuzzer
        observe both halves of the configuration sub-machine.
    """

    psm: int
    name: str
    requires_pairing: bool = False
    initiates_config: bool = False

    def __post_init__(self) -> None:
        if not is_valid_psm(self.psm):
            raise ServiceError(f"service PSM {self.psm:#06x} is not a valid PSM")


class ServiceDirectory:
    """The set of services a device advertises, keyed by PSM."""

    def __init__(self, records: list[ServiceRecord] | None = None) -> None:
        self._records: dict[int, ServiceRecord] = {}
        for record in records or ():
            self.register(record)

    def register(self, record: ServiceRecord) -> None:
        """Add a service.

        :raises ServiceError: if the PSM is already registered.
        """
        if record.psm in self._records:
            raise ServiceError(f"PSM {record.psm:#06x} already registered")
        self._records[record.psm] = record

    def override(self, record: ServiceRecord) -> None:
        """Replace (or add) the record at *record.psm*.

        Used by fuzz targets to lift a pairing gate the way a paired
        dongle would, or to mount an extra protocol server on a device.
        """
        self._records[record.psm] = record

    def lookup(self, psm: int) -> ServiceRecord | None:
        """Find the service at *psm* (None if not offered)."""
        return self._records.get(psm)

    def supports(self, psm: int) -> bool:
        """True when the device offers a service on *psm*."""
        return psm in self._records

    def all_records(self) -> tuple[ServiceRecord, ...]:
        """Every service, in ascending PSM order (an SDP browse result)."""
        return tuple(self._records[psm] for psm in sorted(self._records))

    def psms(self) -> tuple[int, ...]:
        """All advertised PSMs in ascending order."""
        return tuple(sorted(self._records))

    def open_psms(self) -> tuple[int, ...]:
        """PSMs connectable without pairing."""
        return tuple(
            psm for psm in sorted(self._records) if not self._records[psm].requires_pairing
        )

    def __len__(self) -> int:
        return len(self._records)


def standard_services(
    *,
    pairing_free: tuple[int, ...] = (Psm.SDP,),
    extra: tuple[ServiceRecord, ...] = (),
) -> ServiceDirectory:
    """Build a typical phone-like service directory.

    Every Bluetooth device supports SDP without pairing (paper §III.B);
    the rest of the catalogue defaults to pairing-required, mirroring how
    consumer devices gate RFCOMM/A2DP behind the pairing ceremony.
    """
    catalogue = (
        ServiceRecord(Psm.SDP, "Service Discovery Protocol"),
        ServiceRecord(Psm.RFCOMM, "RFCOMM", requires_pairing=True),
        ServiceRecord(Psm.HID_CONTROL, "HID Control", requires_pairing=True),
        ServiceRecord(
            Psm.AVDTP, "Audio/Video Distribution", requires_pairing=True, initiates_config=True
        ),
        ServiceRecord(Psm.AVCTP, "Audio/Video Control", requires_pairing=True),
    )
    directory = ServiceDirectory()
    for record in catalogue:
        requires_pairing = record.psm not in pairing_free and record.requires_pairing
        directory.register(dataclasses.replace(record, requires_pairing=requires_pairing))
    for record in extra:
        directory.register(record)
    return directory
