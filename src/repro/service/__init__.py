"""Fuzzing-as-a-service control plane.

The long-lived layer the ROADMAP's north star asks for: an asyncio
HTTP API (stdlib only) in front of the persistent fleet machinery.
Three pieces, mirroring the classic routers/services/workers split:

* :mod:`repro.service.registry` / :mod:`repro.service.jobs` — the
  session registry: job specs, lifecycle records
  (queued → running → finished/cancelled/aborted) persisted one JSON
  manifest per job, recoverable across service restarts.
* :mod:`repro.service.scheduler` — FIFO-within-priority scheduling of
  jobs onto **one shared warm** :class:`~repro.core.runtime.FleetRuntime`
  worker pool, with per-tenant quotas
  (:mod:`repro.service.tenants`), cancel via the runtime's abort hook
  and resume via PR 8's checkpoint machinery.
* :mod:`repro.service.app` / :mod:`repro.service.http` /
  :mod:`repro.service.router` — the asyncio HTTP server: submit /
  list / get / cancel / resume jobs, stream journal events (chunked),
  serve live ``run_status``, ``metrics.json`` + Prometheus text, and
  query findings/corpus entries per tenant namespace.

:mod:`repro.service.client` is the stdlib HTTP client the
``repro jobs`` CLI (and the tests) speak through.
"""

from repro.service.app import ControlPlane, ControlPlaneThread, ServiceConfig
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import (
    JOB_STATUSES,
    JobError,
    JobRecord,
    JobSpec,
    JobStateError,
    JobValidationError,
    QuotaExceededError,
    ServiceSaturatedError,
    UnknownJobError,
)
from repro.service.registry import SessionRegistry
from repro.service.scheduler import JobScheduler
from repro.service.tenants import TenantManager, TenantQuota
from repro.service.watchdog import Watchdog

__all__ = [
    "JOB_STATUSES",
    "ControlPlane",
    "ControlPlaneThread",
    "JobError",
    "JobRecord",
    "JobScheduler",
    "JobSpec",
    "JobStateError",
    "JobValidationError",
    "QuotaExceededError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceSaturatedError",
    "SessionRegistry",
    "TenantManager",
    "TenantQuota",
    "UnknownJobError",
    "Watchdog",
]
