"""The control plane: configuration, routes, server lifecycle.

One :class:`ControlPlane` wires the tenant manager, session registry
and job scheduler behind an asyncio HTTP server. Identity is the
``X-Repro-Tenant`` header; every job and tenant-scoped endpoint checks
it, and a foreign job or tenant resource answers 404 — existence is
not leaked across namespaces.

Endpoints (all JSON unless noted)::

    GET  /healthz                               liveness + job counts
    GET  /metrics                               service Prometheus text
    POST /v1/jobs                               submit a job spec
    GET  /v1/jobs                               this tenant's jobs
    GET  /v1/jobs/{job_id}                      one job record
    POST /v1/jobs/{job_id}/cancel               cancel queued/running
    POST /v1/jobs/{job_id}/resume               continue from checkpoints
    GET  /v1/jobs/{job_id}/report               merged FleetReport (byte-exact)
    GET  /v1/jobs/{job_id}/status               live run_status structure
    GET  /v1/jobs/{job_id}/events[?follow=1]    journal tail (chunked NDJSON)
    GET  /v1/jobs/{job_id}/metrics              the run's metrics.json
    GET  /v1/jobs/{job_id}/metrics.prom         Prometheus exposition
    GET  /v1/tenants/{tenant}/runs              run rows (runs list --json)
    GET  /v1/tenants/{tenant}/findings          query findings (filters)
    GET  /v1/tenants/{tenant}/corpus            corpus stats + entry ids
    GET  /v1/tenants/{tenant}/corpus/{entry_id} download one entry
    POST /v1/admin/shutdown                     graceful stop

Blocking file/DB reads (journal scans, corpus queries) run in the
default executor so a slow disk never stalls the accept loop.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import logging
import signal
import threading
from pathlib import Path

from repro.core.runtime import SupervisionPolicy
from repro.corpus.backend import NAMESPACE_RE
from repro.corpus.entry import entry_to_dict
from repro.corpus.findings import record_to_dict
from repro.service.http import (
    HttpError,
    Request,
    Response,
    StreamingResponse,
    error_response,
    read_request,
    write_response,
)
from repro.errors import JournalWriteError
from repro.service.jobs import (
    JobRecord,
    JobSpec,
    JobStateError,
    JobValidationError,
    QuotaExceededError,
    ServiceSaturatedError,
    UnknownJobError,
)
from repro.service.registry import SessionRegistry
from repro.service.router import Router
from repro.service.scheduler import JobScheduler
from repro.service.tenants import TenantManager, TenantQuota
from repro.service.watchdog import Watchdog
from repro.telemetry import (
    list_runs,
    load_manifest,
    run_info_dict,
    run_status,
    scan_events,
    status_to_dict,
)
from repro.telemetry.recorder import (
    METRICS_JSON_FILENAME,
    METRICS_PROM_FILENAME,
)

_log = logging.getLogger(__name__)

TENANT_HEADER = "X-Repro-Tenant"


@dataclasses.dataclass
class ServiceConfig:
    """Everything ``repro serve`` configures."""

    data_dir: str | Path
    host: str = "127.0.0.1"
    port: int = 8979
    pool_workers: int = 2
    max_active_jobs: int | None = None
    packet_budget: int | None = None
    stream_interval: float = 0.25
    supervision: SupervisionPolicy | None = None
    #: Global bounded admission queue; a full queue answers 503 with
    #: ``Retry-After``. None removes the bound.
    max_queue_depth: int | None = 256
    #: Watchdog tick period; 0 disables the watchdog thread entirely.
    watchdog_interval: float = 1.0
    #: Abort a running job whose run directory shows no change for this
    #: many seconds (wedged worker/pool). None disables the check.
    wedge_deadline: float | None = 120.0
    #: Automatically resume ``aborted(resumable)`` jobs — on start-up
    #: and after watchdog aborts — under the capped retry policy.
    auto_resume: bool = False
    auto_resume_max_attempts: int = 3


class ControlPlane:
    """The service: routes + scheduler + asyncio server."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        data_dir = Path(config.data_dir)
        data_dir.mkdir(parents=True, exist_ok=True)
        quota_kwargs = {}
        if config.max_active_jobs is not None:
            quota_kwargs["max_active_jobs"] = config.max_active_jobs
        if config.packet_budget is not None:
            quota_kwargs["packet_budget"] = config.packet_budget
        self.tenants = TenantManager(
            data_dir, default_quota=TenantQuota(**quota_kwargs)
        )
        self.registry = SessionRegistry(data_dir)
        self.scheduler = JobScheduler(
            self.registry,
            self.tenants,
            pool_workers=config.pool_workers,
            supervision=config.supervision,
            queue_depth=config.max_queue_depth,
            auto_resume=config.auto_resume,
            auto_resume_max_attempts=config.auto_resume_max_attempts,
        )
        self.watchdog: Watchdog | None = None
        if config.watchdog_interval > 0:
            self.watchdog = Watchdog(
                self.scheduler,
                self.tenants,
                interval=config.watchdog_interval,
                wedge_deadline=config.wedge_deadline,
            )
        self.router = Router()
        self._register_routes()
        self._server: asyncio.base_events.Server | None = None
        self._shutdown = asyncio.Event()
        self.host = config.host
        self.port = config.port

    def _register_routes(self) -> None:
        add = self.router.add
        add("GET", "/healthz", self._handle_health)
        add("GET", "/metrics", self._handle_service_metrics)
        add("POST", "/v1/jobs", self._handle_submit)
        add("GET", "/v1/jobs", self._handle_list_jobs)
        add("GET", "/v1/jobs/{job_id}", self._handle_get_job)
        add("POST", "/v1/jobs/{job_id}/cancel", self._handle_cancel)
        add("POST", "/v1/jobs/{job_id}/resume", self._handle_resume)
        add("GET", "/v1/jobs/{job_id}/report", self._handle_report)
        add("GET", "/v1/jobs/{job_id}/status", self._handle_status)
        add("GET", "/v1/jobs/{job_id}/events", self._handle_events)
        add("GET", "/v1/jobs/{job_id}/metrics", self._handle_run_metrics)
        add(
            "GET",
            "/v1/jobs/{job_id}/metrics.prom",
            self._handle_run_metrics_prom,
        )
        add("GET", "/v1/tenants/{tenant}/runs", self._handle_tenant_runs)
        add(
            "GET", "/v1/tenants/{tenant}/findings", self._handle_tenant_findings
        )
        add("GET", "/v1/tenants/{tenant}/corpus", self._handle_tenant_corpus)
        add(
            "GET",
            "/v1/tenants/{tenant}/corpus/{entry_id}",
            self._handle_tenant_corpus_entry,
        )
        add("POST", "/v1/admin/shutdown", self._handle_shutdown)

    # -- request helpers -----------------------------------------------------------

    def _tenant(self, request: Request) -> str:
        tenant = request.header(TENANT_HEADER.lower())
        if not tenant:
            raise HttpError(400, f"missing {TENANT_HEADER} header")
        if not NAMESPACE_RE.match(tenant):
            raise HttpError(400, f"invalid tenant name {tenant!r}")
        return tenant

    def _own_tenant(self, request: Request, tenant: str) -> str:
        """Tenant-scoped paths must match the caller's identity."""
        caller = self._tenant(request)
        if caller != tenant:
            # 404, not 403: a tenant cannot probe another's existence.
            raise HttpError(404, f"no such resource for tenant {caller!r}")
        return tenant

    def _job(self, request: Request, job_id: str) -> JobRecord:
        tenant = self._tenant(request)
        try:
            record = self.registry.get(job_id)
        except UnknownJobError:
            record = None
        if record is None or record.spec.tenant != tenant:
            raise HttpError(404, f"no job {job_id!r}")
        return record

    def _run_dir(self, record: JobRecord) -> Path:
        if record.run_id is None:
            raise HttpError(
                409, f"job {record.job_id} has no recorded run yet"
            )
        return self.tenants.runs_dir(record.spec.tenant) / record.run_id

    # -- handlers: service ---------------------------------------------------------

    async def _handle_health(self, request: Request) -> Response:
        records = self.registry.jobs()
        counts: dict[str, int] = {}
        for record in records:
            counts[record.status] = counts.get(record.status, 0) + 1
        return Response.json_response(
            {
                "status": "draining" if self.scheduler.draining else "ok",
                "jobs": counts,
                "pool_workers": self.config.pool_workers,
            }
        )

    async def _handle_service_metrics(self, request: Request) -> Response:
        return Response.text(
            self.scheduler.metrics.to_prometheus(),
            content_type="text/plain; version=0.0.4",
        )

    async def _handle_shutdown(self, request: Request) -> Response:
        # Stop admission *before* acknowledging: a submit that races the
        # shutdown either lands durably or gets a clean 503, never an
        # accepted job the dying service silently drops.
        self.scheduler.begin_drain()
        self._shutdown.set()
        return Response.json_response({"status": "draining"}, status=202)

    # -- handlers: jobs ------------------------------------------------------------

    async def _handle_submit(self, request: Request) -> Response:
        tenant = self._tenant(request)
        body = request.json()
        if body.get("tenant") not in (None, tenant):
            raise HttpError(
                403, "body tenant does not match the authenticated tenant"
            )
        body["tenant"] = tenant
        idempotency_key = request.header("idempotency-key")
        try:
            spec = JobSpec.from_dict(body)
            record, created = await asyncio.to_thread(
                self.scheduler.submit_idempotent, spec, idempotency_key
            )
        except JobValidationError as error:
            raise HttpError(400, str(error)) from error
        except ServiceSaturatedError as error:
            response = error_response(503, str(error))
            response.headers["Retry-After"] = str(
                max(1, round(error.retry_after))
            )
            return response
        except QuotaExceededError as error:
            raise HttpError(429, str(error)) from error
        except JournalWriteError as error:
            # The job is not admitted (registry rolled it back); the
            # disk may recover, so tell the client to retry later.
            response = error_response(503, str(error))
            response.headers["Retry-After"] = "5"
            return response
        response = Response.json_response(
            record.to_dict(), status=202 if created else 200
        )
        if not created:
            # Replay of an earlier submit with the same Idempotency-Key:
            # same job, nothing charged twice.
            response.headers["X-Repro-Idempotent-Replay"] = "true"
        return response

    async def _handle_list_jobs(self, request: Request) -> Response:
        tenant = self._tenant(request)
        return Response.json_response(
            {
                "jobs": [
                    record.to_dict() for record in self.registry.jobs(tenant)
                ]
            }
        )

    async def _handle_get_job(
        self, request: Request, job_id: str
    ) -> Response:
        return Response.json_response(self._job(request, job_id).to_dict())

    async def _handle_cancel(self, request: Request, job_id: str) -> Response:
        record = self._job(request, job_id)
        try:
            record = await asyncio.to_thread(
                self.scheduler.cancel, job_id, record.spec.tenant
            )
        except JobStateError as error:
            raise HttpError(409, str(error)) from error
        return Response.json_response(record.to_dict(), status=202)

    async def _handle_resume(self, request: Request, job_id: str) -> Response:
        record = self._job(request, job_id)
        try:
            resumed = await asyncio.to_thread(
                self.scheduler.resume, job_id, record.spec.tenant
            )
        except JobStateError as error:
            raise HttpError(409, str(error)) from error
        except QuotaExceededError as error:
            raise HttpError(429, str(error)) from error
        return Response.json_response(resumed.to_dict(), status=202)

    async def _handle_report(self, request: Request, job_id: str) -> Response:
        record = self._job(request, job_id)
        if record.status != "finished":
            raise HttpError(
                409, f"job {job_id} is {record.status}; no report yet"
            )
        text = await asyncio.to_thread(self.registry.report_text, job_id)
        if text is None:
            raise HttpError(404, f"report for job {job_id} not found")
        # Serve the stored bytes verbatim: the report is the byte-exact
        # artifact the determinism tests pin.
        return Response(status=200, body=text.encode("utf-8"))

    async def _handle_status(self, request: Request, job_id: str) -> Response:
        record = self._job(request, job_id)
        run_dir = self._run_dir(record)
        status = status_to_dict(await asyncio.to_thread(run_status, run_dir))
        status["job"] = record.to_dict()
        return Response.json_response(status)

    async def _handle_events(
        self, request: Request, job_id: str
    ) -> StreamingResponse:
        record = self._job(request, job_id)
        run_dir = self._run_dir(record)
        follow = request.query.get("follow", "0") not in ("0", "false", "")
        return StreamingResponse(
            self._event_stream(run_dir, record.job_id, follow)
        )

    async def _event_stream(self, run_dir: Path, job_id: str, follow: bool):
        emitted = 0
        while True:
            events = await asyncio.to_thread(scan_events, run_dir)
            for event in events[emitted:]:
                yield json.dumps(event, sort_keys=True) + "\n"
            emitted = len(events)
            if not follow:
                return
            record = self.registry.get(job_id)
            manifest = await asyncio.to_thread(load_manifest, run_dir)
            manifest_status = (manifest or {}).get("status")
            if not record.active and manifest_status != "running":
                # Final drain: anything emitted between the scan above
                # and the job going terminal.
                events = await asyncio.to_thread(scan_events, run_dir)
                for event in events[emitted:]:
                    yield json.dumps(event, sort_keys=True) + "\n"
                return
            await asyncio.sleep(self.config.stream_interval)

    async def _handle_run_metrics(
        self, request: Request, job_id: str
    ) -> Response:
        return await self._serve_run_file(
            request, job_id, METRICS_JSON_FILENAME, "application/json"
        )

    async def _handle_run_metrics_prom(
        self, request: Request, job_id: str
    ) -> Response:
        return await self._serve_run_file(
            request,
            job_id,
            METRICS_PROM_FILENAME,
            "text/plain; version=0.0.4",
        )

    async def _serve_run_file(
        self, request: Request, job_id: str, filename: str, content_type: str
    ) -> Response:
        record = self._job(request, job_id)
        path = self._run_dir(record) / filename
        try:
            body = await asyncio.to_thread(path.read_bytes)
        except OSError as error:
            raise HttpError(
                404,
                f"{filename} not recorded yet for job {job_id}",
            ) from error
        return Response(status=200, body=body, content_type=content_type)

    # -- handlers: tenant resources ------------------------------------------------

    async def _handle_tenant_runs(
        self, request: Request, tenant: str
    ) -> Response:
        self._own_tenant(request, tenant)
        runs = await asyncio.to_thread(
            list_runs, self.tenants.runs_dir(tenant)
        )
        return Response.json_response(
            {"runs": [run_info_dict(info) for info in runs]}
        )

    async def _handle_tenant_findings(
        self, request: Request, tenant: str
    ) -> Response:
        self._own_tenant(request, tenant)
        filters = {
            "target": request.query.get("target"),
            "vendor": request.query.get("vendor"),
            "vulnerability_class": request.query.get("class"),
            "state": request.query.get("state"),
        }

        def _query() -> list[dict]:
            backend = self.tenants.open_corpus(tenant)
            try:
                return [
                    record_to_dict(record)
                    for record in backend.query_findings(**filters)
                ]
            finally:
                backend.close()

        findings = await asyncio.to_thread(_query)
        return Response.json_response({"findings": findings})

    async def _handle_tenant_corpus(
        self, request: Request, tenant: str
    ) -> Response:
        self._own_tenant(request, tenant)

        def _stats() -> dict:
            backend = self.tenants.open_corpus(tenant)
            try:
                stats = backend.stats()
                return {
                    "backend": backend.name,
                    "stats": dataclasses.asdict(stats),
                    "entries": [
                        entry.entry_id for entry in backend.entries()
                    ],
                }
            finally:
                backend.close()

        return Response.json_response(await asyncio.to_thread(_stats))

    async def _handle_tenant_corpus_entry(
        self, request: Request, tenant: str, entry_id: str
    ) -> Response:
        self._own_tenant(request, tenant)

        def _entry() -> dict | None:
            backend = self.tenants.open_corpus(tenant)
            try:
                for entry in backend.entries():
                    if entry.entry_id == entry_id:
                        return entry_to_dict(entry)
                return None
            finally:
                backend.close()

        entry = await asyncio.to_thread(_entry)
        if entry is None:
            raise HttpError(404, f"no corpus entry {entry_id!r}")
        return Response.json_response(entry)

    # -- server lifecycle ----------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except HttpError as error:
                await write_response(
                    writer, error_response(error.status, error.message)
                )
                return
            if request is None:
                return
            try:
                handler, params = self.router.route(
                    request.method, request.path
                )
                response = await handler(request, **params)
            except HttpError as error:
                response = error_response(error.status, error.message)
            except Exception as error:  # noqa: BLE001 — keep serving
                _log.exception(
                    "unhandled error serving %s %s",
                    request.method,
                    request.path,
                )
                response = error_response(
                    500, f"{type(error).__name__}: {error}"
                )
            await write_response(writer, response)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def start(self) -> None:
        """Start the scheduler and bind the server (port 0 = ephemeral)."""
        await asyncio.to_thread(self.scheduler.start)
        if self.watchdog is not None:
            self.watchdog.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        _log.info("control plane listening on %s:%d", self.host, self.port)

    async def stop(self, abort_running: bool = True, drain: bool = False) -> None:
        """Close the server and stop the scheduler (and its pool).

        With ``drain`` the stop is the graceful-shutdown path: admission
        is already closed, the in-flight job checkpoints and lands
        ``aborted(resumable)``, queued jobs stay queued for the next
        start.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.watchdog is not None:
            await asyncio.to_thread(self.watchdog.stop)
        if drain:
            await asyncio.to_thread(self.scheduler.drain)
        else:
            await asyncio.to_thread(self.scheduler.stop, abort_running)

    async def serve(self) -> None:
        """Start, run until shutdown (endpoint or SIGINT/SIGTERM), stop.

        Both shutdown signals and the shutdown endpoint take the drain
        path: stop admission, checkpoint the in-flight job, mark it
        resumable, exit 0. ``kill -9`` is the *other* durability story —
        the registry's write-ahead intents make that recoverable too.
        """
        await self.start()
        loop = asyncio.get_running_loop()

        def _signalled() -> None:
            self.scheduler.begin_drain()
            self._shutdown.set()

        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, _signalled)
        await self._shutdown.wait()
        await self.stop(drain=True)

    def run(self) -> None:
        """Blocking entry point for ``repro serve``."""
        asyncio.run(self.serve())

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"


class ControlPlaneThread:
    """A live server on a background thread (tests and benchmarks).

    Runs the control plane's asyncio loop off-thread, waits for the
    bound port, and tears everything down on :meth:`stop` / context
    exit.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.app = ControlPlane(config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._start_error: BaseException | None = None

    def start(self) -> "ControlPlaneThread":
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="control-plane", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("control plane failed to start in 30s")
        if self._start_error is not None:
            raise RuntimeError(
                f"control plane failed to start: {self._start_error}"
            )
        return self

    def _run(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.app.start())
        except BaseException as error:  # noqa: BLE001 — surfaced to start()
            self._start_error = error
            self._started.set()
            return
        self._started.set()
        self._loop.run_forever()
        # stop() stopped the loop; finish the teardown coroutine here.
        self._loop.run_until_complete(self.app.stop(abort_running=True))
        self._loop.close()

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=60)
        self._thread = None
        self._loop = None

    @property
    def base_url(self) -> str:
        return self.app.base_url

    def __enter__(self) -> "ControlPlaneThread":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
