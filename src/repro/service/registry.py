"""Session registry: every job's lifecycle, persisted and recoverable.

One JSON manifest per job under ``<data_dir>/jobs/``, written
atomically (same tmp + ``os.replace`` discipline as the telemetry
manifests) so a poll or a crashed service never reads a torn record.
The in-memory map is the hot path; disk is the durability story.

**Write-ahead intents.** Every persist is two steps: the full new
record is first written atomically to ``jobs/wal/<job_id>.json`` (the
*intent*), then to the manifest, then the intent is removed. A crash —
SIGKILL at any instruction — therefore leaves one of three states, all
of which :meth:`SessionRegistry.recover` reconstructs exactly:

* intent absent, manifest old — the transition never became durable;
  it was also never acknowledged (callers persist *before* answering
  HTTP), so the client retries and nothing is lost;
* intent present, manifest old/absent/torn — recovery replays the
  intent over the manifest; the transition survives, byte-identical;
* intent present (stale), manifest new — replay rewrites the same
  bytes; idempotent.

Torn manifest bytes (a fault-injected tear, a non-atomic filesystem)
are repaired from the intent the same way.

Per-tenant quota state is *derived* — :meth:`packets_committed` folds
over the manifests — so rebuilding the map at start-up rebuilds the
packet-budget accounting with it; there is no second ledger to drift.

Finished jobs also persist their merged :class:`FleetReport` JSON next
to the manifest — the byte-exact artifact the report endpoint serves.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from pathlib import Path

from repro.core.faults import service_fault
from repro.errors import JournalWriteError
from repro.service.jobs import JobRecord, JobSpec, UnknownJobError, new_job_id

_log = logging.getLogger(__name__)

JOBS_DIRNAME = "jobs"
WAL_DIRNAME = "wal"


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(f".tmp-{os.getpid()}-{path.name}")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


class SessionRegistry:
    """Thread-safe job store backed by one manifest file per job."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / JOBS_DIRNAME
        self.wal_dir = self.jobs_dir / WAL_DIRNAME
        self.wal_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._jobs: dict[str, JobRecord] = {}
        self._by_idempotency: dict[tuple[str, str], str] = {}
        #: What the last :meth:`recover` call repaired, for metrics.
        self.last_recovery: dict[str, int] = {
            "intents_replayed": 0,
            "interrupted_jobs": 0,
        }

    # -- persistence ---------------------------------------------------------------

    def _manifest_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _report_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.report.json"

    def _intent_path(self, job_id: str) -> Path:
        return self.wal_dir / f"{job_id}.json"

    def _persist(self, record: JobRecord) -> None:
        """Write-ahead intent, then manifest, then clear the intent.

        :raises JournalWriteError: on ENOSPC/EIO from either write; the
            in-memory record keeps the new state, the caller decides
            whether the operation can be acknowledged.
        """
        text = json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n"
        manifest = self._manifest_path(record.job_id)
        intent = self._intent_path(record.job_id)
        try:
            service_fault("registry.intent")
            _atomic_write(intent, text)
            tear = service_fault("registry.manifest.pre")
            if tear is not None:
                # Injected torn write: truncated bytes land on the real
                # manifest (bypassing the tmp+rename discipline), then
                # the write "fails" — recovery must repair from the
                # intent above.
                manifest.write_text(text[: len(text) // 3], encoding="utf-8")
                raise OSError(5, "injected torn manifest write")
            tmp = manifest.with_name(
                f".tmp-{os.getpid()}-{manifest.name}"
            )
            tmp.write_text(text, encoding="utf-8")
            service_fault("registry.manifest.mid")
            os.replace(tmp, manifest)
        except OSError as error:
            raise JournalWriteError(manifest, error) from error
        try:
            intent.unlink()
        except OSError:
            pass  # a stale intent replays idempotently at recovery

    def _index(self, record: JobRecord) -> None:
        """Maintain the (tenant, idempotency key) → job index."""
        if record.idempotency_key:
            self._by_idempotency[
                (record.spec.tenant, record.idempotency_key)
            ] = record.job_id

    def _replay_intents(self) -> int:
        """Apply every pending write-ahead intent to its manifest.

        An intent is the full post-transition record, so replay is a
        blind rewrite — no merging, no versions to compare. Unreadable
        intents (torn mid-write; the transition was never durable and
        therefore never acknowledged) are discarded.
        """
        replayed = 0
        for path in sorted(self.wal_dir.glob("job-*.json")):
            try:
                record = JobRecord.from_dict(
                    json.loads(path.read_text(encoding="utf-8"))
                )
            except (OSError, ValueError, KeyError):
                _log.warning("discarding torn write-ahead intent %s", path)
                path.unlink(missing_ok=True)
                continue
            _atomic_write(
                self._manifest_path(record.job_id),
                json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n",
            )
            path.unlink(missing_ok=True)
            replayed += 1
            _log.info(
                "replayed write-ahead intent for job %s (%s)",
                record.job_id,
                record.status,
            )
        return replayed

    def recover(self) -> list[JobRecord]:
        """Replay intents, load every persisted job; returns re-enqueues.

        Jobs found ``running`` were interrupted by a service death:
        they flip to ``aborted`` (resumable — their checkpoints are on
        disk) rather than silently resurrecting mid-flight. ``queued``
        jobs are returned for the scheduler to re-enqueue in original
        submission order.
        """
        requeue: list[JobRecord] = []
        interrupted = 0
        with self._lock:
            replayed = self._replay_intents()
            for path in sorted(self.jobs_dir.glob("job-*.json")):
                if path.name.endswith(".report.json"):
                    continue
                try:
                    record = JobRecord.from_dict(
                        json.loads(path.read_text(encoding="utf-8"))
                    )
                except (OSError, ValueError, KeyError):
                    _log.warning("skipping unreadable job manifest %s", path)
                    continue
                if record.status == "running":
                    record.status = "aborted"
                    record.error = "service restarted while job was running"
                    record.finished = time.time()
                    interrupted += 1
                    self._persist(record)
                self._jobs[record.job_id] = record
                self._index(record)
                if record.status == "queued":
                    requeue.append(record)
            self.last_recovery = {
                "intents_replayed": replayed,
                "interrupted_jobs": interrupted,
            }
        return sorted(requeue, key=lambda record: record.created)

    # -- CRUD ----------------------------------------------------------------------

    def create(
        self,
        spec: JobSpec,
        resume_of: str | None = None,
        idempotency_key: str | None = None,
        auto_resume_attempts: int = 0,
    ) -> JobRecord:
        record = JobRecord(
            job_id=new_job_id(),
            spec=spec,
            created=time.time(),
            resume_of=resume_of,
            idempotency_key=idempotency_key,
            auto_resume_attempts=auto_resume_attempts,
        )
        with self._lock:
            while record.job_id in self._jobs:  # same-second collision
                record.job_id = new_job_id()
            self._jobs[record.job_id] = record
            self._index(record)
            try:
                self._persist(record)
            except JournalWriteError:
                # Never acknowledged → never admitted: drop the record
                # so it cannot hold quota the tenant was not charged
                # for. (A durable intent may still replay it at the
                # next recovery; an idempotent retry then finds it.)
                del self._jobs[record.job_id]
                if record.idempotency_key:
                    self._by_idempotency.pop(
                        (spec.tenant, record.idempotency_key), None
                    )
                raise
        return record

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._jobs.get(job_id)
        if record is None:
            raise UnknownJobError(job_id)
        return record

    def find_idempotent(self, tenant: str, key: str) -> JobRecord | None:
        """The job a previous submit with this key created, if any."""
        with self._lock:
            job_id = self._by_idempotency.get((tenant, key))
            return self._jobs.get(job_id) if job_id is not None else None

    def update(self, job_id: str, **fields) -> JobRecord:
        """Apply *fields* to the job and persist the new manifest."""
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                raise UnknownJobError(job_id)
            for key, value in fields.items():
                setattr(record, key, value)
            self._persist(record)
        return record

    def jobs(self, tenant: str | None = None) -> list[JobRecord]:
        """Snapshot of every job (optionally one tenant's), by creation."""
        with self._lock:
            records = list(self._jobs.values())
        if tenant is not None:
            records = [
                record for record in records if record.spec.tenant == tenant
            ]
        return sorted(records, key=lambda record: (record.created, record.job_id))

    # -- quota inputs --------------------------------------------------------------

    def active_count(self, tenant: str) -> int:
        """Jobs currently holding a concurrency slot (queued + running)."""
        with self._lock:
            return sum(
                1
                for record in self._jobs.values()
                if record.spec.tenant == tenant and record.active
            )

    def packets_committed(self, tenant: str) -> int:
        """Cumulative worst-case packet spend across the tenant's jobs.

        Resume jobs charge nothing — their packets were charged when
        the original job was admitted, and a resume re-runs at most
        what the original would have. Jobs cancelled while still queued
        carry ``quota_refunded`` and charge nothing either: they never
        dispatched a packet.
        """
        with self._lock:
            return sum(
                record.spec.packets_requested
                for record in self._jobs.values()
                if record.spec.tenant == tenant
                and record.resume_of is None
                and not record.quota_refunded
            )

    # -- reports -------------------------------------------------------------------

    def save_report(self, job_id: str, report_json: str) -> None:
        """Persist the merged fleet report verbatim (byte-exact)."""
        try:
            _atomic_write(self._report_path(job_id), report_json)
        except OSError as error:
            raise JournalWriteError(self._report_path(job_id), error) from error

    def report_text(self, job_id: str) -> str | None:
        """The stored report JSON, byte-exact, or None when absent."""
        try:
            return self._report_path(job_id).read_text(encoding="utf-8")
        except OSError:
            return None
