"""Session registry: every job's lifecycle, persisted and recoverable.

One JSON manifest per job under ``<data_dir>/jobs/``, written
atomically (same tmp + ``os.replace`` discipline as the telemetry
manifests) so a poll or a crashed service never reads a torn record.
The in-memory map is the hot path; disk is the durability story:
:meth:`SessionRegistry.recover` reloads every manifest at start-up,
marks jobs that were ``running`` when the service died as ``aborted``
(their run directories keep the checkpoints, so they are resumable)
and hands ``queued`` jobs back to the scheduler for re-enqueue.

Finished jobs also persist their merged :class:`FleetReport` JSON next
to the manifest — the byte-exact artifact the report endpoint serves.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from pathlib import Path

from repro.service.jobs import JobRecord, JobSpec, UnknownJobError, new_job_id

_log = logging.getLogger(__name__)

JOBS_DIRNAME = "jobs"


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(f".tmp-{os.getpid()}-{path.name}")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


class SessionRegistry:
    """Thread-safe job store backed by one manifest file per job."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / JOBS_DIRNAME
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._jobs: dict[str, JobRecord] = {}

    # -- persistence ---------------------------------------------------------------

    def _manifest_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _report_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.report.json"

    def _persist(self, record: JobRecord) -> None:
        _atomic_write(
            self._manifest_path(record.job_id),
            json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n",
        )

    def recover(self) -> list[JobRecord]:
        """Load every persisted job; returns jobs to re-enqueue.

        Jobs found ``running`` were interrupted by a service death:
        they flip to ``aborted`` (resumable — their checkpoints are on
        disk) rather than silently resurrecting mid-flight. ``queued``
        jobs are returned for the scheduler to re-enqueue in original
        submission order.
        """
        requeue: list[JobRecord] = []
        with self._lock:
            for path in sorted(self.jobs_dir.glob("job-*.json")):
                if path.name.endswith(".report.json"):
                    continue
                try:
                    record = JobRecord.from_dict(
                        json.loads(path.read_text(encoding="utf-8"))
                    )
                except (OSError, ValueError, KeyError):
                    _log.warning("skipping unreadable job manifest %s", path)
                    continue
                if record.status == "running":
                    record.status = "aborted"
                    record.error = "service restarted while job was running"
                    record.finished = time.time()
                    self._persist(record)
                self._jobs[record.job_id] = record
                if record.status == "queued":
                    requeue.append(record)
        return sorted(requeue, key=lambda record: record.created)

    # -- CRUD ----------------------------------------------------------------------

    def create(self, spec: JobSpec, resume_of: str | None = None) -> JobRecord:
        record = JobRecord(
            job_id=new_job_id(),
            spec=spec,
            created=time.time(),
            resume_of=resume_of,
        )
        with self._lock:
            while record.job_id in self._jobs:  # same-second collision
                record.job_id = new_job_id()
            self._jobs[record.job_id] = record
            self._persist(record)
        return record

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._jobs.get(job_id)
        if record is None:
            raise UnknownJobError(job_id)
        return record

    def update(self, job_id: str, **fields) -> JobRecord:
        """Apply *fields* to the job and persist the new manifest."""
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                raise UnknownJobError(job_id)
            for key, value in fields.items():
                setattr(record, key, value)
            self._persist(record)
        return record

    def jobs(self, tenant: str | None = None) -> list[JobRecord]:
        """Snapshot of every job (optionally one tenant's), by creation."""
        with self._lock:
            records = list(self._jobs.values())
        if tenant is not None:
            records = [
                record for record in records if record.spec.tenant == tenant
            ]
        return sorted(records, key=lambda record: (record.created, record.job_id))

    # -- quota inputs --------------------------------------------------------------

    def active_count(self, tenant: str) -> int:
        """Jobs currently holding a concurrency slot (queued + running)."""
        with self._lock:
            return sum(
                1
                for record in self._jobs.values()
                if record.spec.tenant == tenant and record.active
            )

    def packets_committed(self, tenant: str) -> int:
        """Cumulative worst-case packet spend across the tenant's jobs.

        Resume jobs charge nothing — their packets were charged when
        the original job was admitted, and a resume re-runs at most
        what the original would have.
        """
        with self._lock:
            return sum(
                record.spec.packets_requested
                for record in self._jobs.values()
                if record.spec.tenant == tenant and record.resume_of is None
            )

    # -- reports -------------------------------------------------------------------

    def save_report(self, job_id: str, report_json: str) -> None:
        """Persist the merged fleet report verbatim (byte-exact)."""
        _atomic_write(self._report_path(job_id), report_json)

    def report_text(self, job_id: str) -> str | None:
        """The stored report JSON, byte-exact, or None when absent."""
        try:
            return self._report_path(job_id).read_text(encoding="utf-8")
        except OSError:
            return None
