"""Path routing: ``/v1/jobs/{job_id}/cancel`` patterns to handlers.

Patterns are literal segments plus ``{name}`` captures (one path
segment each, compiled to regexes once at registration). Dispatch
distinguishes 404 (no pattern matches the path) from 405 (a pattern
matches but not with this method), which is the difference between a
typo and a misuse.
"""

from __future__ import annotations

import re
from collections.abc import Callable

from repro.service.http import HttpError

_CAPTURE = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")


def _compile(pattern: str) -> re.Pattern:
    parts = []
    position = 0
    for match in _CAPTURE.finditer(pattern):
        parts.append(re.escape(pattern[position : match.start()]))
        parts.append(f"(?P<{match.group(1)}>[^/]+)")
        position = match.end()
    parts.append(re.escape(pattern[position:]))
    return re.compile("^" + "".join(parts) + "$")


class Router:
    """Ordered (method, pattern) → handler table."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, re.Pattern, Callable]] = []

    def add(self, method: str, pattern: str, handler: Callable) -> None:
        self._routes.append((method.upper(), _compile(pattern), handler))

    def route(self, method: str, path: str) -> tuple[Callable, dict[str, str]]:
        """Resolve a request to ``(handler, path_params)``.

        :raises HttpError: 404 on unknown path, 405 on known path with
            the wrong method.
        """
        path_matched = False
        for route_method, pattern, handler in self._routes:
            match = pattern.match(path)
            if match is None:
                continue
            path_matched = True
            if route_method == method:
                return handler, match.groupdict()
        if path_matched:
            raise HttpError(405, f"method {method} not allowed for {path}")
        raise HttpError(404, f"no route for {path}")
