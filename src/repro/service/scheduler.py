"""Job scheduler: FIFO-within-priority onto one shared warm pool.

The scheduler owns the only :class:`~repro.core.runtime.FleetRuntime`
in the service. Worker processes are started once (initialised with an
inert bootstrap context) and stay warm across jobs; each job's real
:class:`~repro.core.runtime.FleetContext` — its config, corpus
namespace, telemetry run — ships with its shard messages via the
runtime's per-call context override. Jobs therefore pay zero pool
start-up after the first, which is the entire point of fronting the
runtime with a service.

Dispatch is a single thread draining a priority heap ordered by
``(priority, submission sequence)`` — strict FIFO within a priority
band. One job runs at a time: the supervised dispatch loop assumes
exclusive pool ownership (deadlines, restarts), so job concurrency is
queueing concurrency, exactly like a CI runner with one executor.

**Quotas** are enforced exactly at submit time under the scheduler
lock: a tenant's queued+running job count must stay within
``max_active_jobs`` and its cumulative worst-case packet spend within
``packet_budget`` — both computed from the registry, which the same
lock serialises against concurrent submits. Cancelling a job that is
still *queued* refunds its packet charge exactly once — the refund
flag rides in the same atomic manifest write as the status flip, so a
replayed cancel (client retry, service restart) cannot refund twice.

**Idempotent submits**: :meth:`JobScheduler.submit_idempotent` keys the
admission on the tenant's ``Idempotency-Key`` — a replay returns the
original record without re-charging quota, which is what makes client
retries over a flaky link (or across a service crash) safe.

**Cancel** sets the job's abort event. A queued job flips to
``cancelled`` immediately; a running one is interrupted at the
runtime's next dispatch step (in-flight shards finish and checkpoint
— the resume trail), surfaces as
:class:`~repro.core.runtime.AbortRequested`, and the orchestrator's
failure path records an ``aborted`` manifest before the job lands in
``cancelled``.

**Resume** submits a new job that reuses the terminal job's spec and
telemetry run id; the orchestrator's checkpoint/resume machinery
re-runs only the missing campaigns and merges byte-identically.

**Self-healing**: with ``auto_resume`` enabled, jobs the service finds
``aborted(resumable)`` at start-up — and jobs the watchdog aborts for
wedging mid-run — are re-submitted automatically under a capped retry
policy (per-chain counter in the manifest, capped exponential
backoff). The watchdog (:mod:`repro.service.watchdog`) also restarts
the dispatcher thread itself if it ever dies.
"""

from __future__ import annotations

import heapq
import logging
import threading
import time

from repro.core.config import FuzzConfig
from repro.core.faults import service_fault
from repro.core.fleet import FleetOrchestrator
from repro.core.runtime import (
    AbortRequested,
    FleetContext,
    FleetRuntime,
    SupervisionPolicy,
)
from repro.errors import JournalWriteError
from repro.l2cap.states import ChannelState
from repro.service.jobs import (
    JobRecord,
    JobSpec,
    JobStateError,
    QuotaExceededError,
    ServiceSaturatedError,
    UnknownJobError,
)
from repro.service.registry import SessionRegistry
from repro.service.tenants import TenantManager
from repro.telemetry import MetricsRegistry

_log = logging.getLogger(__name__)


def _bootstrap_context() -> FleetContext:
    """The inert context the shared pool's workers initialise with.

    Never used to run anything — every job overrides it per call — but
    the pool initializer needs *a* context, and making it obviously
    harmless (disarmed, one packet) beats making it somebody's job.
    """
    return FleetContext(
        base_config=FuzzConfig(max_packets=1),
        armed=False,
        target_state_value=ChannelState.OPEN.value,
        corpus_dir=None,
        retain_trace=False,
        prior_visits=(),
        dictionary=(),
    )


class JobScheduler:
    """Priority queue + dispatcher thread + shared warm runtime."""

    def __init__(
        self,
        registry: SessionRegistry,
        tenants: TenantManager,
        pool_workers: int = 2,
        supervision: SupervisionPolicy | None = None,
        queue_depth: int | None = None,
        auto_resume: bool = False,
        auto_resume_max_attempts: int = 3,
        auto_resume_backoff: float = 0.5,
        auto_resume_backoff_cap: float = 30.0,
    ) -> None:
        if pool_workers < 1:
            raise ValueError("pool_workers must be >= 1")
        if queue_depth is not None and queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.registry = registry
        self.tenants = tenants
        self.pool_workers = pool_workers
        self.supervision = supervision
        self.queue_depth = queue_depth
        self.auto_resume = auto_resume
        self.auto_resume_max_attempts = auto_resume_max_attempts
        self.auto_resume_backoff = auto_resume_backoff
        self.auto_resume_backoff_cap = auto_resume_backoff_cap
        self.metrics = MetricsRegistry()
        self.draining = False
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._heap: list[tuple[int, int, str]] = []
        self._sequence = 0
        self._abort_events: dict[str, threading.Event] = {}
        self._abort_reasons: dict[str, str] = {}
        self._pending_resumes: list[tuple[float, str]] = []
        self._runtime: FleetRuntime | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._current_job: str | None = None
        self._started = False

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Recover persisted jobs and start the dispatcher thread."""
        for record in self.registry.recover():
            with self._lock:
                self._push(record)
        recovery = self.registry.last_recovery
        if recovery.get("intents_replayed"):
            self.metrics.inc(
                "service_recoveries_total",
                recovery["intents_replayed"],
                kind="intent_replay",
            )
        if recovery.get("interrupted_jobs"):
            self.metrics.inc(
                "service_recoveries_total",
                recovery["interrupted_jobs"],
                kind="interrupted_job",
            )
        self._started = True
        self._spawn_dispatcher()
        if self.auto_resume:
            self._schedule_startup_resumes()

    def _spawn_dispatcher(self) -> None:
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="job-dispatcher", daemon=True
        )
        self._thread.start()

    def ensure_dispatcher_alive(self) -> bool:
        """Restart the dispatcher thread if it died; True if restarted.

        A dispatcher death mid-job strands the job as ``running`` with
        nobody driving it: the orphan is flipped to
        ``aborted(resumable)`` (checkpoints are on disk) before the new
        dispatcher starts, so auto-resume can pick it up.
        """
        with self._lock:
            if not self._started or self._stop.is_set():
                return False
            if self._thread is not None and self._thread.is_alive():
                return False
            orphan = self._current_job
            self._current_job = None
        if orphan is not None:
            self._mark_aborted(
                orphan, "dispatcher died while job was running"
            )
            if self.auto_resume:
                self._queue_auto_resume(orphan)
        _log.warning("dispatcher thread died; restarting it")
        self._spawn_dispatcher()
        return True

    def stop(
        self,
        abort_running: bool = True,
        timeout: float = 30.0,
        reason: str = "cancel",
    ) -> None:
        """Stop dispatching; optionally abort the in-flight job.

        With ``abort_running`` (the default) the running job's abort
        event fires — in-flight shards finish and checkpoint, and the
        job lands terminal per *reason* (``cancel`` → ``cancelled``,
        ``drain`` → ``aborted`` and resumable). Without it, the
        dispatcher finishes the current job before exiting (queued jobs
        stay queued; they re-enqueue on the next start via the
        registry).
        """
        with self._lock:
            self._stop.set()
            if abort_running and self._current_job is not None:
                self._abort_reasons.setdefault(self._current_job, reason)
                event = self._abort_events.get(self._current_job)
                if event is not None:
                    event.set()
            self._wakeup.notify_all()
        if self._thread is not None:
            self._thread.join(timeout)
        if self._runtime is not None:
            self._runtime.close()
            self._runtime = None

    def begin_drain(self) -> None:
        """Stop admission; running work continues toward checkpoints."""
        self.draining = True

    def drain(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: no new admissions, in-flight shards
        checkpoint, the running job lands ``aborted(resumable)``."""
        self.begin_drain()
        self.stop(abort_running=True, timeout=timeout, reason="drain")

    def _ensure_runtime(self) -> FleetRuntime:
        if self._runtime is None:
            self._runtime = FleetRuntime(
                context=_bootstrap_context(),
                workers=self.pool_workers,
                use_processes=self.pool_workers > 1,
                policy=self.supervision,
            )
        return self._runtime

    # -- submission ----------------------------------------------------------------

    def _push(self, record: JobRecord) -> None:
        self._sequence += 1
        heapq.heappush(
            self._heap, (record.spec.priority, self._sequence, record.job_id)
        )
        self._wakeup.notify_all()

    def _check_admission(self, spec: JobSpec, charge_packets: bool) -> None:
        """Global saturation first, then the tenant's own quota."""
        if self.draining:
            raise ServiceSaturatedError(
                "service is draining; no new jobs are admitted",
                retry_after=5.0,
            )
        if self.queue_depth is not None:
            queued = sum(
                1
                for record in self.registry.jobs()
                if record.status == "queued"
            )
            if queued >= self.queue_depth:
                self.metrics.inc("service_queue_rejected_total")
                raise ServiceSaturatedError(
                    f"job queue is full ({queued} queued, "
                    f"depth {self.queue_depth})",
                    retry_after=1.0,
                )
        quota = self.tenants.quota(spec.tenant)
        active = self.registry.active_count(spec.tenant)
        if active >= quota.max_active_jobs:
            raise QuotaExceededError(
                f"tenant {spec.tenant!r} already has {active} active job(s) "
                f"(limit {quota.max_active_jobs})"
            )
        if charge_packets:
            committed = self.registry.packets_committed(spec.tenant)
            if committed + spec.packets_requested > quota.packet_budget:
                raise QuotaExceededError(
                    f"tenant {spec.tenant!r} packet budget exhausted: "
                    f"{committed} committed + {spec.packets_requested} "
                    f"requested > {quota.packet_budget}"
                )

    def submit(
        self, spec: JobSpec, idempotency_key: str | None = None
    ) -> JobRecord:
        """Validate, admit against quotas, persist, enqueue."""
        record, _created = self.submit_idempotent(spec, idempotency_key)
        return record

    def submit_idempotent(
        self, spec: JobSpec, idempotency_key: str | None = None
    ) -> tuple[JobRecord, bool]:
        """Like :meth:`submit`, reporting whether a job was created.

        With a key, a replayed submit — client retry after a dropped
        connection, a crashed ack, a service restart — returns the
        original record and charges nothing; the (tenant, key) lookup
        and the create happen under one lock, so two racing submits
        with the same key admit exactly one job.
        """
        spec.validate()
        with self._lock:
            if idempotency_key is not None:
                existing = self.registry.find_idempotent(
                    spec.tenant, idempotency_key
                )
                if existing is not None:
                    self.metrics.inc(
                        "service_idempotent_replays_total",
                        tenant=spec.tenant,
                    )
                    return existing, False
            # Quota check and job creation under one lock: two racing
            # submits cannot both pass a last-slot check.
            self._check_admission(spec, charge_packets=True)
            record = self.registry.create(
                spec, idempotency_key=idempotency_key
            )
            self._abort_events[record.job_id] = threading.Event()
            self._push(record)
            # Crash-anywhere point: the charge (the manifest above) is
            # durable, the HTTP ack is not yet on the wire.
            service_fault("scheduler.quota.charge")
        self.metrics.inc("service_jobs_submitted_total", tenant=spec.tenant)
        self._update_queue_gauge()
        return record, True

    def resume(self, job_id: str, tenant: str, auto: bool = False) -> JobRecord:
        """Submit a continuation of a cancelled/aborted job."""
        original = self.registry.get(job_id)
        if original.spec.tenant != tenant:
            raise UnknownJobError(job_id)
        if not original.resumable:
            raise JobStateError(
                f"job {job_id} is {original.status} and has "
                f"{'a' if original.run_id else 'no'} recorded run; only "
                "cancelled/aborted jobs with a run can be resumed"
            )
        with self._lock:
            self._check_admission(original.spec, charge_packets=False)
            record = self.registry.create(
                original.spec,
                resume_of=job_id,
                auto_resume_attempts=(
                    original.auto_resume_attempts + 1 if auto else 0
                ),
            )
            # The continuation records into the *same* telemetry run:
            # that is where the checkpoints live.
            self.registry.update(record.job_id, run_id=original.run_id)
            self._abort_events[record.job_id] = threading.Event()
            self._push(record)
        self.metrics.inc("service_jobs_resumed_total", tenant=tenant)
        if auto:
            self.metrics.inc("service_recoveries_total", kind="auto_resume")
        self._update_queue_gauge()
        return self.registry.get(record.job_id)

    def cancel(self, job_id: str, tenant: str) -> JobRecord:
        """Cancel a queued or running job (idempotent per state)."""
        record = self.registry.get(job_id)
        if record.spec.tenant != tenant:
            raise UnknownJobError(job_id)
        with self._lock:
            record = self.registry.get(job_id)
            if record.status == "queued":
                # The refund travels in the same atomic manifest write
                # as the status flip: replaying this cancel (retry,
                # restart) finds the job already cancelled and raises,
                # so the budget is handed back exactly once.
                record = self.registry.update(
                    job_id,
                    status="cancelled",
                    error="cancelled while queued",
                    finished=time.time(),
                    quota_refunded=True,
                )
            elif record.status == "running":
                self._abort_reasons.setdefault(job_id, "cancel")
                self._abort_events[job_id].set()
            else:
                raise JobStateError(
                    f"job {job_id} is already {record.status}"
                )
        self.metrics.inc("service_jobs_cancelled_total", tenant=tenant)
        self._update_queue_gauge()
        return record

    # -- self-healing --------------------------------------------------------------

    def abort_job(self, job_id: str, reason: str) -> None:
        """Ask the running *job_id* to abort with a non-cancel reason.

        Used by the watchdog for wedged jobs: the abort fires at the
        runtime's next dispatch step, the job lands
        ``aborted(resumable)``, and — with auto-resume on — a capped
        retry is scheduled.
        """
        with self._lock:
            event = self._abort_events.get(job_id)
            if event is None:
                return
            self._abort_reasons.setdefault(job_id, reason)
            event.set()

    def _auto_resume_delay(self, attempts: int) -> float:
        """Capped exponential backoff for the Nth automatic resume."""
        if attempts <= 0:
            return 0.0
        return min(
            self.auto_resume_backoff_cap,
            self.auto_resume_backoff * (2 ** (attempts - 1)),
        )

    def _queue_auto_resume(self, job_id: str) -> None:
        record = self.registry.get(job_id)
        if record.auto_resume_attempts >= self.auto_resume_max_attempts:
            _log.warning(
                "job %s exhausted its %d automatic resume(s); leaving it "
                "aborted",
                job_id,
                self.auto_resume_max_attempts,
            )
            return
        delay = self._auto_resume_delay(record.auto_resume_attempts)
        with self._lock:
            self._pending_resumes.append((time.monotonic() + delay, job_id))
            self._wakeup.notify_all()

    def _schedule_startup_resumes(self) -> None:
        """Queue an automatic resume for every recoverable aborted job.

        Only chain *tails* are eligible — a job someone (or a previous
        recovery) already resumed is skipped, so one failure never
        fans out into parallel continuations. User-cancelled jobs are
        left alone: the operator said stop.
        """
        records = self.registry.jobs()
        resumed_ids = {
            record.resume_of
            for record in records
            if record.resume_of is not None
        }
        for record in records:
            if (
                record.status == "aborted"
                and record.resumable
                and record.job_id not in resumed_ids
            ):
                self._queue_auto_resume(record.job_id)

    def service_auto_resume(self) -> int:
        """Fire every due pending automatic resume; returns the count.

        Called from the dispatcher's idle loop and the watchdog tick —
        whichever comes first — so delayed resumes fire even if one of
        the two is the thing that just died.
        """
        now = time.monotonic()
        due: list[str] = []
        with self._lock:
            keep: list[tuple[float, str]] = []
            for when, job_id in self._pending_resumes:
                if when <= now:
                    due.append(job_id)
                else:
                    keep.append((when, job_id))
            self._pending_resumes = keep
        fired = 0
        for job_id in due:
            try:
                record = self.registry.get(job_id)
                replacement = self.resume(
                    job_id, record.spec.tenant, auto=True
                )
            except (JobStateError, QuotaExceededError,
                    ServiceSaturatedError, UnknownJobError) as error:
                _log.warning("auto-resume of %s skipped: %s", job_id, error)
                continue
            fired += 1
            _log.info(
                "auto-resumed job %s as %s (attempt %d/%d)",
                job_id,
                replacement.job_id,
                replacement.auto_resume_attempts,
                self.auto_resume_max_attempts,
            )
        return fired

    # -- dispatch ------------------------------------------------------------------

    def _next_job(self) -> JobRecord | None:
        """Pop the next runnable job; None when idle or stopping.

        Waits at most one short tick before giving the dispatch loop
        control back — deferred auto-resumes are serviced between
        ticks, and they need the same lock this wait holds.
        """
        with self._lock:
            if self._stop.is_set():
                return None
            while self._heap:
                _, _, job_id = heapq.heappop(self._heap)
                try:
                    record = self.registry.get(job_id)
                except UnknownJobError:
                    continue
                if record.status != "queued":
                    continue  # cancelled while queued
                self._current_job = job_id
                return record
            self._wakeup.wait(timeout=0.2)
            return None

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            service_fault("scheduler.dispatch")
            if self.auto_resume:
                self.service_auto_resume()
            record = self._next_job()
            if record is None:
                continue
            try:
                self._execute(record)
            except Exception:  # noqa: BLE001 — dispatcher must survive
                _log.exception("job %s dispatch failed", record.job_id)
            finally:
                with self._lock:
                    self._current_job = None
                self._update_queue_gauge()

    def _safe_update(self, job_id: str, **fields) -> None:
        """Persist a terminal transition, surviving a sick disk.

        The in-memory record always takes the new state; if the
        manifest write fails (ENOSPC — quite possibly the same failure
        that aborted the job) the dispatcher must keep serving, so the
        error is logged, not raised.
        """
        try:
            self.registry.update(job_id, **fields)
        except JournalWriteError as error:
            _log.error(
                "job %s: could not persist %s: %s",
                job_id,
                fields.get("status", "update"),
                error,
            )

    def _mark_aborted(self, job_id: str, reason: str) -> None:
        self._safe_update(
            job_id,
            status="aborted",
            error=reason,
            finished=time.time(),
        )
        try:
            tenant = self.registry.get(job_id).spec.tenant
        except UnknownJobError:
            return
        self.metrics.inc(
            "service_jobs_finished_total", tenant=tenant, status="aborted"
        )

    def _execute(self, record: JobRecord) -> None:
        from repro.testbed.profiles import PROFILES_BY_ID

        spec = record.spec
        abort_event = self._abort_events.setdefault(
            record.job_id, threading.Event()
        )
        if abort_event.is_set():
            self._safe_update(
                record.job_id,
                status="cancelled",
                error="cancelled before dispatch",
                finished=time.time(),
                quota_refunded=True,
            )
            return
        started = time.time()
        try:
            self.registry.update(
                record.job_id, status="running", started=started
            )
        except JournalWriteError as error:
            self._mark_aborted(
                record.job_id, f"durability write failed: {error}"
            )
            return
        self.metrics.inc("service_jobs_started_total", tenant=spec.tenant)
        orchestrator = None
        try:
            orchestrator = FleetOrchestrator(
                profiles=[
                    PROFILES_BY_ID[device_id] for device_id in spec.profiles
                ],
                strategies=list(spec.strategies),
                fleet_seed=spec.seed,
                workers=self.pool_workers,
                base_config=FuzzConfig(max_packets=spec.budget),
                armed=spec.armed,
                target_state=ChannelState(spec.target_state),
                corpus_dir=(
                    str(self.tenants.corpus_dir(spec.tenant))
                    if spec.use_corpus
                    else None
                ),
                targets=list(spec.targets),
                batch=spec.batch,
                telemetry_dir=str(self.tenants.runs_dir(spec.tenant)),
                resume_run_id=record.run_id if record.resume_of else None,
                runtime=self._ensure_runtime(),
                abort_check=abort_event.is_set,
            )
            # Publish the run id before dispatch so status/cancel/resume
            # can find the run directory while the job runs.
            self.registry.update(record.job_id, run_id=orchestrator.run_id)
            report = orchestrator.run()
        except AbortRequested:
            reason = self._abort_reasons.pop(record.job_id, "cancel")
            if reason == "cancel":
                self._safe_update(
                    record.job_id,
                    status="cancelled",
                    error="cancelled by request",
                    finished=time.time(),
                )
                status = "cancelled"
            else:
                # Drain or watchdog: the job did not fail and nobody
                # asked for it to stop — it is an abort the service
                # owes a resume for.
                self._mark_aborted(
                    record.job_id,
                    (
                        "service draining; checkpoints are resumable"
                        if reason == "drain"
                        else f"aborted by watchdog: {reason}"
                    ),
                )
                if reason != "drain" and self.auto_resume:
                    self._queue_auto_resume(record.job_id)
                status = "aborted"
            if status == "cancelled":
                self.metrics.inc(
                    "service_jobs_finished_total",
                    tenant=spec.tenant,
                    status="cancelled",
                )
            return
        except JournalWriteError as error:
            # Typed durability failure (ENOSPC/EIO on journal or
            # manifest): a clean resumable abort with the cause as the
            # failure reason, never a traceback.
            self._mark_aborted(
                record.job_id, f"durability write failed: {error}"
            )
            if self.auto_resume:
                self._queue_auto_resume(record.job_id)
            return
        except BaseException as error:  # noqa: BLE001 — record, keep serving
            self._mark_aborted(
                record.job_id, f"{type(error).__name__}: {error}"
            )
            return
        finally:
            self._abort_reasons.pop(record.job_id, None)
            if orchestrator is not None:
                orchestrator.close()
        try:
            self.registry.save_report(record.job_id, report.to_json())
            self.registry.update(
                record.job_id,
                status="finished",
                finished=time.time(),
                campaigns=len(report.campaigns),
                packets=report.total_packets,
                findings=len(report.findings),
                merged_state_count=report.merged_state_count,
            )
        except JournalWriteError as error:
            # The run completed but its result could not be made
            # durable: resumable abort — a resume replays from the
            # checkpoints and retries the persist.
            self._mark_aborted(
                record.job_id, f"durability write failed: {error}"
            )
            if self.auto_resume:
                self._queue_auto_resume(record.job_id)
            return
        self.metrics.inc(
            "service_jobs_finished_total", tenant=spec.tenant, status="finished"
        )
        self.metrics.inc(
            "service_packets_total", report.total_packets, tenant=spec.tenant
        )
        self.metrics.observe(
            "service_job_wall_seconds",
            time.time() - started,
            buckets=(0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0),
        )

    # -- introspection -------------------------------------------------------------

    @property
    def current_job(self) -> str | None:
        """The job the dispatcher is executing right now, if any."""
        with self._lock:
            return self._current_job

    def _update_queue_gauge(self) -> None:
        records = self.registry.jobs()
        for status in ("queued", "running"):
            self.metrics.set_gauge(
                "service_jobs_active",
                sum(1 for record in records if record.status == status),
                status=status,
            )

    def wait(self, job_id: str, timeout: float = 60.0) -> JobRecord:
        """Poll until the job reaches a terminal status (tests, CLI)."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.registry.get(job_id)
            if not record.active:
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record.status} after {timeout}s"
                )
            time.sleep(0.02)
