"""Job scheduler: FIFO-within-priority onto one shared warm pool.

The scheduler owns the only :class:`~repro.core.runtime.FleetRuntime`
in the service. Worker processes are started once (initialised with an
inert bootstrap context) and stay warm across jobs; each job's real
:class:`~repro.core.runtime.FleetContext` — its config, corpus
namespace, telemetry run — ships with its shard messages via the
runtime's per-call context override. Jobs therefore pay zero pool
start-up after the first, which is the entire point of fronting the
runtime with a service.

Dispatch is a single thread draining a priority heap ordered by
``(priority, submission sequence)`` — strict FIFO within a priority
band. One job runs at a time: the supervised dispatch loop assumes
exclusive pool ownership (deadlines, restarts), so job concurrency is
queueing concurrency, exactly like a CI runner with one executor.

**Quotas** are enforced exactly at submit time under the scheduler
lock: a tenant's queued+running job count must stay within
``max_active_jobs`` and its cumulative worst-case packet spend within
``packet_budget`` — both computed from the registry, which the same
lock serialises against concurrent submits.

**Cancel** sets the job's abort event. A queued job flips to
``cancelled`` immediately; a running one is interrupted at the
runtime's next dispatch step (in-flight shards finish and checkpoint
— the resume trail), surfaces as
:class:`~repro.core.runtime.AbortRequested`, and the orchestrator's
failure path records an ``aborted`` manifest before the job lands in
``cancelled``.

**Resume** submits a new job that reuses the terminal job's spec and
telemetry run id; the orchestrator's checkpoint/resume machinery
re-runs only the missing campaigns and merges byte-identically.
"""

from __future__ import annotations

import heapq
import logging
import threading
import time

from repro.core.config import FuzzConfig
from repro.core.fleet import FleetOrchestrator
from repro.core.runtime import (
    AbortRequested,
    FleetContext,
    FleetRuntime,
    SupervisionPolicy,
)
from repro.l2cap.states import ChannelState
from repro.service.jobs import (
    JobRecord,
    JobSpec,
    JobStateError,
    QuotaExceededError,
    UnknownJobError,
)
from repro.service.registry import SessionRegistry
from repro.service.tenants import TenantManager
from repro.telemetry import MetricsRegistry

_log = logging.getLogger(__name__)


def _bootstrap_context() -> FleetContext:
    """The inert context the shared pool's workers initialise with.

    Never used to run anything — every job overrides it per call — but
    the pool initializer needs *a* context, and making it obviously
    harmless (disarmed, one packet) beats making it somebody's job.
    """
    return FleetContext(
        base_config=FuzzConfig(max_packets=1),
        armed=False,
        target_state_value=ChannelState.OPEN.value,
        corpus_dir=None,
        retain_trace=False,
        prior_visits=(),
        dictionary=(),
    )


class JobScheduler:
    """Priority queue + dispatcher thread + shared warm runtime."""

    def __init__(
        self,
        registry: SessionRegistry,
        tenants: TenantManager,
        pool_workers: int = 2,
        supervision: SupervisionPolicy | None = None,
    ) -> None:
        if pool_workers < 1:
            raise ValueError("pool_workers must be >= 1")
        self.registry = registry
        self.tenants = tenants
        self.pool_workers = pool_workers
        self.supervision = supervision
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._heap: list[tuple[int, int, str]] = []
        self._sequence = 0
        self._abort_events: dict[str, threading.Event] = {}
        self._runtime: FleetRuntime | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._current_job: str | None = None

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Recover persisted jobs and start the dispatcher thread."""
        for record in self.registry.recover():
            with self._lock:
                self._push(record)
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="job-dispatcher", daemon=True
        )
        self._thread.start()

    def stop(self, abort_running: bool = True, timeout: float = 30.0) -> None:
        """Stop dispatching; optionally abort the in-flight job.

        With ``abort_running`` (the default) the running job's abort
        event fires — it lands in ``cancelled`` with checkpoints on
        disk. Without it, the dispatcher finishes the current job
        before exiting (queued jobs stay queued; they re-enqueue on the
        next start via the registry).
        """
        with self._lock:
            self._stop.set()
            if abort_running and self._current_job is not None:
                event = self._abort_events.get(self._current_job)
                if event is not None:
                    event.set()
            self._wakeup.notify_all()
        if self._thread is not None:
            self._thread.join(timeout)
        if self._runtime is not None:
            self._runtime.close()
            self._runtime = None

    def _ensure_runtime(self) -> FleetRuntime:
        if self._runtime is None:
            self._runtime = FleetRuntime(
                context=_bootstrap_context(),
                workers=self.pool_workers,
                use_processes=self.pool_workers > 1,
                policy=self.supervision,
            )
        return self._runtime

    # -- submission ----------------------------------------------------------------

    def _push(self, record: JobRecord) -> None:
        self._sequence += 1
        heapq.heappush(
            self._heap, (record.spec.priority, self._sequence, record.job_id)
        )
        self._wakeup.notify_all()

    def _check_quota(self, spec: JobSpec, charge_packets: bool) -> None:
        quota = self.tenants.quota(spec.tenant)
        active = self.registry.active_count(spec.tenant)
        if active >= quota.max_active_jobs:
            raise QuotaExceededError(
                f"tenant {spec.tenant!r} already has {active} active job(s) "
                f"(limit {quota.max_active_jobs})"
            )
        if charge_packets:
            committed = self.registry.packets_committed(spec.tenant)
            if committed + spec.packets_requested > quota.packet_budget:
                raise QuotaExceededError(
                    f"tenant {spec.tenant!r} packet budget exhausted: "
                    f"{committed} committed + {spec.packets_requested} "
                    f"requested > {quota.packet_budget}"
                )

    def submit(self, spec: JobSpec) -> JobRecord:
        """Validate, admit against quotas, persist, enqueue."""
        spec.validate()
        with self._lock:
            # Quota check and job creation under one lock: two racing
            # submits cannot both pass a last-slot check.
            self._check_quota(spec, charge_packets=True)
            record = self.registry.create(spec)
            self._abort_events[record.job_id] = threading.Event()
            self._push(record)
        self.metrics.inc("service_jobs_submitted_total", tenant=spec.tenant)
        self._update_queue_gauge()
        return record

    def resume(self, job_id: str, tenant: str) -> JobRecord:
        """Submit a continuation of a cancelled/aborted job."""
        original = self.registry.get(job_id)
        if original.spec.tenant != tenant:
            raise UnknownJobError(job_id)
        if not original.resumable:
            raise JobStateError(
                f"job {job_id} is {original.status} and has "
                f"{'a' if original.run_id else 'no'} recorded run; only "
                "cancelled/aborted jobs with a run can be resumed"
            )
        with self._lock:
            self._check_quota(original.spec, charge_packets=False)
            record = self.registry.create(original.spec, resume_of=job_id)
            # The continuation records into the *same* telemetry run:
            # that is where the checkpoints live.
            self.registry.update(record.job_id, run_id=original.run_id)
            self._abort_events[record.job_id] = threading.Event()
            self._push(record)
        self.metrics.inc("service_jobs_resumed_total", tenant=tenant)
        self._update_queue_gauge()
        return self.registry.get(record.job_id)

    def cancel(self, job_id: str, tenant: str) -> JobRecord:
        """Cancel a queued or running job (idempotent per state)."""
        record = self.registry.get(job_id)
        if record.spec.tenant != tenant:
            raise UnknownJobError(job_id)
        with self._lock:
            record = self.registry.get(job_id)
            if record.status == "queued":
                record = self.registry.update(
                    job_id,
                    status="cancelled",
                    error="cancelled while queued",
                    finished=time.time(),
                )
            elif record.status == "running":
                self._abort_events[job_id].set()
            else:
                raise JobStateError(
                    f"job {job_id} is already {record.status}"
                )
        self.metrics.inc("service_jobs_cancelled_total", tenant=tenant)
        self._update_queue_gauge()
        return record

    # -- dispatch ------------------------------------------------------------------

    def _next_job(self) -> JobRecord | None:
        """Pop the next runnable job; None when stopping."""
        with self._lock:
            while True:
                if self._stop.is_set():
                    return None
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    try:
                        record = self.registry.get(job_id)
                    except UnknownJobError:
                        continue
                    if record.status != "queued":
                        continue  # cancelled while queued
                    self._current_job = job_id
                    return record
                self._wakeup.wait(timeout=0.2)

    def _dispatch_loop(self) -> None:
        while True:
            record = self._next_job()
            if record is None:
                return
            try:
                self._execute(record)
            except Exception:  # noqa: BLE001 — dispatcher must survive
                _log.exception("job %s dispatch failed", record.job_id)
            finally:
                with self._lock:
                    self._current_job = None
                self._update_queue_gauge()

    def _execute(self, record: JobRecord) -> None:
        from repro.testbed.profiles import PROFILES_BY_ID

        spec = record.spec
        abort_event = self._abort_events.setdefault(
            record.job_id, threading.Event()
        )
        if abort_event.is_set():
            self.registry.update(
                record.job_id,
                status="cancelled",
                error="cancelled before dispatch",
                finished=time.time(),
            )
            return
        started = time.time()
        self.registry.update(record.job_id, status="running", started=started)
        self.metrics.inc("service_jobs_started_total", tenant=spec.tenant)
        orchestrator = FleetOrchestrator(
            profiles=[PROFILES_BY_ID[device_id] for device_id in spec.profiles],
            strategies=list(spec.strategies),
            fleet_seed=spec.seed,
            workers=self.pool_workers,
            base_config=FuzzConfig(max_packets=spec.budget),
            armed=spec.armed,
            target_state=ChannelState(spec.target_state),
            corpus_dir=(
                str(self.tenants.corpus_dir(spec.tenant))
                if spec.use_corpus
                else None
            ),
            targets=list(spec.targets),
            batch=spec.batch,
            telemetry_dir=str(self.tenants.runs_dir(spec.tenant)),
            resume_run_id=record.run_id if record.resume_of else None,
            runtime=self._ensure_runtime(),
            abort_check=abort_event.is_set,
        )
        # Publish the run id before dispatch so status/cancel/resume can
        # find the run directory while the job runs.
        self.registry.update(record.job_id, run_id=orchestrator.run_id)
        try:
            report = orchestrator.run()
        except AbortRequested:
            self.registry.update(
                record.job_id,
                status="cancelled",
                error="cancelled by request",
                finished=time.time(),
            )
            self.metrics.inc(
                "service_jobs_finished_total",
                tenant=spec.tenant,
                status="cancelled",
            )
            return
        except BaseException as error:  # noqa: BLE001 — record, keep serving
            self.registry.update(
                record.job_id,
                status="aborted",
                error=f"{type(error).__name__}: {error}",
                finished=time.time(),
            )
            self.metrics.inc(
                "service_jobs_finished_total",
                tenant=spec.tenant,
                status="aborted",
            )
            return
        finally:
            orchestrator.close()
        self.registry.save_report(record.job_id, report.to_json())
        self.registry.update(
            record.job_id,
            status="finished",
            finished=time.time(),
            campaigns=len(report.campaigns),
            packets=report.total_packets,
            findings=len(report.findings),
            merged_state_count=report.merged_state_count,
        )
        self.metrics.inc(
            "service_jobs_finished_total", tenant=spec.tenant, status="finished"
        )
        self.metrics.inc(
            "service_packets_total", report.total_packets, tenant=spec.tenant
        )
        self.metrics.observe(
            "service_job_wall_seconds",
            time.time() - started,
            buckets=(0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0),
        )

    # -- introspection -------------------------------------------------------------

    def _update_queue_gauge(self) -> None:
        records = self.registry.jobs()
        for status in ("queued", "running"):
            self.metrics.set_gauge(
                "service_jobs_active",
                sum(1 for record in records if record.status == status),
                status=status,
            )

    def wait(self, job_id: str, timeout: float = 60.0) -> JobRecord:
        """Poll until the job reaches a terminal status (tests, CLI)."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.registry.get(job_id)
            if not record.active:
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record.status} after {timeout}s"
                )
            time.sleep(0.02)
