"""Minimal asyncio HTTP/1.1 server primitives (stdlib only).

Just enough HTTP for a control plane: request-line + header parsing
over ``StreamReader``, Content-Length bodies, JSON helpers, fixed and
chunked (streaming) responses, connection-per-request semantics
(``Connection: close`` on every response — the clients here are curl,
Prometheus and the CLI, none of which need keep-alive to a localhost
service).

Handlers signal failures by raising :class:`HttpError`; the server
renders them as ``{"error": ...}`` JSON with the carried status.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from collections.abc import AsyncIterator
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import ReproError

#: Upper bounds that keep a misbehaving client from ballooning memory.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024

STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(ReproError):
    """A handler-level failure with an HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclasses.dataclass
class Request:
    """One parsed request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)

    def json(self) -> dict:
        """The body parsed as a JSON object.

        :raises HttpError: 400 on malformed or non-object JSON.
        """
        if not self.body:
            return {}
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"malformed JSON body: {error}") from error
        if not isinstance(data, dict):
            raise HttpError(400, "JSON body must be an object")
        return data


@dataclasses.dataclass
class Response:
    """A fully materialised response."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = dataclasses.field(default_factory=dict)

    @classmethod
    def json_response(cls, payload, status: int = 200) -> "Response":
        return cls(
            status=status,
            body=(json.dumps(payload, indent=2) + "\n").encode("utf-8"),
        )

    @classmethod
    def text(
        cls, text: str, status: int = 200, content_type: str = "text/plain"
    ) -> "Response":
        return cls(
            status=status,
            body=text.encode("utf-8"),
            content_type=f"{content_type}; charset=utf-8",
        )


@dataclasses.dataclass
class StreamingResponse:
    """A chunked (Transfer-Encoding: chunked) response.

    *chunks* is an async iterator of ``bytes``/``str`` pieces; each
    piece becomes one HTTP chunk, so line-oriented consumers (``curl``,
    ``tail``-style scripts) see journal events as they happen.
    """

    chunks: AsyncIterator
    status: int = 200
    content_type: str = "application/x-ndjson"


def error_response(status: int, message: str) -> Response:
    return Response.json_response({"error": message}, status=status)


async def read_request(
    reader: asyncio.StreamReader,
) -> Request | None:
    """Parse one request off *reader*; None on clean EOF.

    :raises HttpError: on malformed or oversized requests.
    """
    try:
        raw_header = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between requests
        raise HttpError(400, "truncated request") from error
    except asyncio.LimitOverrunError as error:
        raise HttpError(431, "request header too large") from error
    if len(raw_header) > MAX_HEADER_BYTES:
        raise HttpError(431, "request header too large")
    try:
        header_text = raw_header.decode("latin-1")
    except UnicodeDecodeError as error:  # pragma: no cover - latin-1 total
        raise HttpError(400, "undecodable request header") from error
    request_line, _, header_block = header_text.partition("\r\n")
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {request_line!r}")
    method, target, _version = parts
    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    headers: dict[str, str] = {}
    for line in header_block.split("\r\n"):
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as error:
            raise HttpError(400, "malformed Content-Length") from error
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError(400, "unacceptable Content-Length")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as error:
                raise HttpError(400, "truncated request body") from error
    return Request(
        method=method.upper(),
        path=path,
        query=query,
        headers=headers,
        body=body,
    )


def _status_line(status: int) -> bytes:
    text = STATUS_TEXT.get(status, "Unknown")
    return f"HTTP/1.1 {status} {text}\r\n".encode("latin-1")


async def write_response(
    writer: asyncio.StreamWriter, response: "Response | StreamingResponse"
) -> None:
    """Serialise *response* (fixed or chunked) onto *writer*."""
    if isinstance(response, StreamingResponse):
        writer.write(
            _status_line(response.status)
            + f"Content-Type: {response.content_type}\r\n".encode("latin-1")
            + b"Transfer-Encoding: chunked\r\n"
            + b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        async for chunk in response.chunks:
            data = chunk.encode("utf-8") if isinstance(chunk, str) else chunk
            if not data:
                continue
            writer.write(f"{len(data):x}\r\n".encode("latin-1"))
            writer.write(data + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return
    headers = {
        "Content-Type": response.content_type,
        "Content-Length": str(len(response.body)),
        "Connection": "close",
        **response.headers,
    }
    header_block = "".join(
        f"{name}: {value}\r\n" for name, value in headers.items()
    )
    writer.write(
        _status_line(response.status)
        + header_block.encode("latin-1")
        + b"\r\n"
        + response.body
    )
    await writer.drain()
