"""Stdlib HTTP client for the control plane.

The ``repro jobs`` CLI, the service tests and the benchmark all speak
through this thin :mod:`http.client` wrapper — one connection per
request (the server answers ``Connection: close``), tenant identity in
the ``X-Repro-Tenant`` header, JSON in/out, and error payloads raised
as :class:`ServiceError` with the HTTP status attached.
"""

from __future__ import annotations

import http.client
import json
import time
from collections.abc import Iterator
from urllib.parse import urlencode, urlsplit

from repro.errors import ReproError
from repro.service.jobs import JOB_STATUSES

TENANT_HEADER = "X-Repro-Tenant"


class ServiceError(ReproError):
    """An HTTP-level failure from the control plane."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talks to one control plane on behalf of one tenant."""

    def __init__(
        self, base_url: str, tenant: str | None = None, timeout: float = 30.0
    ) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise ValueError(
                f"base_url must be an http://host:port URL, got {base_url!r}"
            )
        self.host = split.hostname
        self.port = split.port or 80
        self.tenant = tenant
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------------------

    def _headers(self) -> dict[str, str]:
        headers = {"Accept": "application/json"}
        if self.tenant:
            headers[TENANT_HEADER] = self.tenant
        return headers

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        query: dict | None = None,
    ) -> tuple[int, bytes, str]:
        if query:
            filtered = {k: v for k, v in query.items() if v is not None}
            if filtered:
                path = f"{path}?{urlencode(filtered)}"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = self._headers()
            payload = None
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
            content_type = response.getheader("Content-Type", "")
            return response.status, data, content_type
        finally:
            connection.close()

    def _json(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        query: dict | None = None,
    ) -> dict:
        status, data, _ = self._request(method, path, body=body, query=query)
        try:
            payload = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(
                status, f"undecodable response body: {error}"
            ) from error
        if status >= 400:
            message = (
                payload.get("error", data.decode("utf-8", "replace"))
                if isinstance(payload, dict)
                else str(payload)
            )
            raise ServiceError(status, message)
        return payload

    def _raw(self, path: str, query: dict | None = None) -> bytes:
        status, data, _ = self._request("GET", path, query=query)
        if status >= 400:
            try:
                message = json.loads(data.decode("utf-8")).get("error", "")
            except (ValueError, AttributeError):
                message = data.decode("utf-8", "replace")
            raise ServiceError(status, message)
        return data

    # -- endpoints -----------------------------------------------------------------

    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def submit(self, spec: dict) -> dict:
        """Submit a job spec; returns the created job record."""
        return self._json("POST", "/v1/jobs", body=spec)

    def jobs(self) -> list[dict]:
        return self._json("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._json("POST", f"/v1/jobs/{job_id}/cancel")

    def resume(self, job_id: str) -> dict:
        """Resume a cancelled/aborted job; returns the new job record."""
        return self._json("POST", f"/v1/jobs/{job_id}/resume")

    def report_text(self, job_id: str) -> str:
        """The merged FleetReport JSON, byte-for-byte as stored."""
        return self._raw(f"/v1/jobs/{job_id}/report").decode("utf-8")

    def report(self, job_id: str) -> dict:
        return json.loads(self.report_text(job_id))

    def status(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}/status")

    def run_metrics(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}/metrics")

    def run_metrics_prometheus(self, job_id: str) -> str:
        return self._raw(f"/v1/jobs/{job_id}/metrics.prom").decode("utf-8")

    def service_metrics(self) -> str:
        return self._raw("/metrics").decode("utf-8")

    def runs(self) -> list[dict]:
        return self._json("GET", f"/v1/tenants/{self.tenant}/runs")["runs"]

    def findings(self, **filters: str | None) -> list[dict]:
        return self._json(
            "GET", f"/v1/tenants/{self.tenant}/findings", query=filters
        )["findings"]

    def corpus(self) -> dict:
        return self._json("GET", f"/v1/tenants/{self.tenant}/corpus")

    def corpus_entry(self, entry_id: str) -> dict:
        return self._json(
            "GET", f"/v1/tenants/{self.tenant}/corpus/{entry_id}"
        )

    def shutdown(self) -> dict:
        return self._json("POST", "/v1/admin/shutdown")

    def events(self, job_id: str, follow: bool = False) -> Iterator[dict]:
        """Stream the job's journal events (chunked NDJSON) as dicts."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            path = f"/v1/jobs/{job_id}/events"
            if follow:
                path += "?follow=1"
            connection.request("GET", path, headers=self._headers())
            response = connection.getresponse()
            if response.status >= 400:
                data = response.read()
                try:
                    message = json.loads(data.decode("utf-8"))["error"]
                except (ValueError, KeyError):
                    message = data.decode("utf-8", "replace")
                raise ServiceError(response.status, message)
            buffer = b""
            # http.client de-chunks for us; reassemble NDJSON lines.
            while True:
                piece = response.read(65536)
                if not piece:
                    break
                buffer += piece
                while b"\n" in buffer:
                    line, _, buffer = buffer.partition(b"\n")
                    if line.strip():
                        yield json.loads(line.decode("utf-8"))
            if buffer.strip():
                yield json.loads(buffer.decode("utf-8"))
        finally:
            connection.close()

    # -- helpers -------------------------------------------------------------------

    def wait(self, job_id: str, timeout: float = 120.0) -> dict:
        """Poll until the job reaches a terminal status."""
        terminal = set(JOB_STATUSES) - {"queued", "running"}
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["status"] in terminal:
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['status']} after {timeout}s"
                )
            time.sleep(0.05)
