"""Stdlib HTTP client for the control plane.

The ``repro jobs`` CLI, the service tests and the benchmark all speak
through this thin :mod:`http.client` wrapper — one connection per
request (the server answers ``Connection: close``), tenant identity in
the ``X-Repro-Tenant`` header, JSON in/out, and error payloads raised
as :class:`ServiceError` with the HTTP status attached.

**Retries.** Requests that are safe to replay — GETs, cancels,
shutdowns, and submits that carry an ``Idempotency-Key`` — retry on
dropped connections and on 503 (honouring the server's ``Retry-After``)
with capped exponential backoff plus jitter. A submit *without* a key
never retries: the client cannot know whether the lost response
admitted a job. Resume never retries either (each resume creates a new
continuation job).
"""

from __future__ import annotations

import http.client
import json
import random
import time
from collections.abc import Iterator
from urllib.parse import urlencode, urlsplit

from repro.errors import ReproError
from repro.service.jobs import JOB_STATUSES

TENANT_HEADER = "X-Repro-Tenant"

#: Exceptions that mean "the bytes may not have reached the server".
RETRYABLE_EXCEPTIONS = (OSError, http.client.HTTPException)


class ServiceError(ReproError):
    """An HTTP-level failure from the control plane."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talks to one control plane on behalf of one tenant."""

    def __init__(
        self,
        base_url: str,
        tenant: str | None = None,
        timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
    ) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise ValueError(
                f"base_url must be an http://host:port URL, got {base_url!r}"
            )
        self.host = split.hostname
        self.port = split.port or 80
        self.tenant = tenant
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap

    # -- plumbing ------------------------------------------------------------------

    def _headers(self) -> dict[str, str]:
        headers = {"Accept": "application/json"}
        if self.tenant:
            headers[TENANT_HEADER] = self.tenant
        return headers

    def _sleep_before_retry(self, attempt: int, floor: float = 0.0) -> None:
        """Capped exponential backoff with full jitter (attempt is 0-based)."""
        ceiling = min(self.backoff_cap, self.backoff * (2**attempt))
        time.sleep(max(floor, random.uniform(0, ceiling)))

    def _once(
        self,
        method: str,
        path: str,
        payload: bytes | None,
        headers: dict[str, str],
    ) -> tuple[int, bytes, dict[str, str]]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
            response_headers = {
                name.lower(): value for name, value in response.getheaders()
            }
            return response.status, data, response_headers
        finally:
            connection.close()

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        query: dict | None = None,
        headers: dict[str, str] | None = None,
        retryable: bool = False,
    ) -> tuple[int, bytes, dict[str, str]]:
        if query:
            filtered = {k: v for k, v in query.items() if v is not None}
            if filtered:
                path = f"{path}?{urlencode(filtered)}"
        request_headers = self._headers()
        if headers:
            request_headers.update(headers)
        payload = None
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            request_headers["Content-Type"] = "application/json"
        attempts = self.retries if retryable else 0
        for attempt in range(attempts + 1):
            try:
                status, data, response_headers = self._once(
                    method, path, payload, request_headers
                )
            except RETRYABLE_EXCEPTIONS:
                # Dropped connection / timeout: the server may be
                # restarting under us — worth another try iff replaying
                # the request cannot double anything.
                if attempt >= attempts:
                    raise
                self._sleep_before_retry(attempt)
                continue
            if status == 503 and retryable and attempt < attempts:
                try:
                    floor = float(response_headers.get("retry-after", 0))
                except ValueError:
                    floor = 0.0
                self._sleep_before_retry(
                    attempt, floor=min(floor, self.backoff_cap)
                )
                continue
            return status, data, response_headers
        raise AssertionError("unreachable")  # pragma: no cover

    def _json(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        query: dict | None = None,
        headers: dict[str, str] | None = None,
        retryable: bool = False,
    ) -> dict:
        status, data, _ = self._request(
            method,
            path,
            body=body,
            query=query,
            headers=headers,
            retryable=retryable,
        )
        try:
            payload = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(
                status, f"undecodable response body: {error}"
            ) from error
        if status >= 400:
            message = (
                payload.get("error", data.decode("utf-8", "replace"))
                if isinstance(payload, dict)
                else str(payload)
            )
            raise ServiceError(status, message)
        return payload

    def _raw(self, path: str, query: dict | None = None) -> bytes:
        status, data, _ = self._request(
            "GET", path, query=query, retryable=True
        )
        if status >= 400:
            try:
                message = json.loads(data.decode("utf-8")).get("error", "")
            except (ValueError, AttributeError):
                message = data.decode("utf-8", "replace")
            raise ServiceError(status, message)
        return data

    # -- endpoints -----------------------------------------------------------------

    def health(self) -> dict:
        return self._json("GET", "/healthz", retryable=True)

    def submit(self, spec: dict, idempotency_key: str | None = None) -> dict:
        """Submit a job spec; returns the created (or replayed) record.

        With *idempotency_key* the submit is safe to retry — and this
        client does, across dropped connections and 503s; the server
        deduplicates on the key, so at most one job is ever admitted.
        """
        headers = (
            {"Idempotency-Key": idempotency_key}
            if idempotency_key is not None
            else None
        )
        return self._json(
            "POST",
            "/v1/jobs",
            body=spec,
            headers=headers,
            retryable=idempotency_key is not None,
        )

    def jobs(self) -> list[dict]:
        return self._json("GET", "/v1/jobs", retryable=True)["jobs"]

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}", retryable=True)

    def cancel(self, job_id: str) -> dict:
        return self._json(
            "POST", f"/v1/jobs/{job_id}/cancel", retryable=True
        )

    def resume(self, job_id: str) -> dict:
        """Resume a cancelled/aborted job; returns the new job record."""
        return self._json("POST", f"/v1/jobs/{job_id}/resume")

    def report_text(self, job_id: str) -> str:
        """The merged FleetReport JSON, byte-for-byte as stored."""
        return self._raw(f"/v1/jobs/{job_id}/report").decode("utf-8")

    def report(self, job_id: str) -> dict:
        return json.loads(self.report_text(job_id))

    def status(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}/status", retryable=True)

    def run_metrics(self, job_id: str) -> dict:
        return self._json(
            "GET", f"/v1/jobs/{job_id}/metrics", retryable=True
        )

    def run_metrics_prometheus(self, job_id: str) -> str:
        return self._raw(f"/v1/jobs/{job_id}/metrics.prom").decode("utf-8")

    def service_metrics(self) -> str:
        return self._raw("/metrics").decode("utf-8")

    def runs(self) -> list[dict]:
        return self._json(
            "GET", f"/v1/tenants/{self.tenant}/runs", retryable=True
        )["runs"]

    def findings(self, **filters: str | None) -> list[dict]:
        return self._json(
            "GET",
            f"/v1/tenants/{self.tenant}/findings",
            query=filters,
            retryable=True,
        )["findings"]

    def corpus(self) -> dict:
        return self._json(
            "GET", f"/v1/tenants/{self.tenant}/corpus", retryable=True
        )

    def corpus_entry(self, entry_id: str) -> dict:
        return self._json(
            "GET",
            f"/v1/tenants/{self.tenant}/corpus/{entry_id}",
            retryable=True,
        )

    def shutdown(self) -> dict:
        return self._json("POST", "/v1/admin/shutdown", retryable=True)

    def events(self, job_id: str, follow: bool = False) -> Iterator[dict]:
        """Stream the job's journal events (chunked NDJSON) as dicts."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            path = f"/v1/jobs/{job_id}/events"
            if follow:
                path += "?follow=1"
            connection.request("GET", path, headers=self._headers())
            response = connection.getresponse()
            if response.status >= 400:
                data = response.read()
                try:
                    message = json.loads(data.decode("utf-8"))["error"]
                except (ValueError, KeyError):
                    message = data.decode("utf-8", "replace")
                raise ServiceError(response.status, message)
            buffer = b""
            # http.client de-chunks for us; reassemble NDJSON lines.
            while True:
                piece = response.read(65536)
                if not piece:
                    break
                buffer += piece
                while b"\n" in buffer:
                    line, _, buffer = buffer.partition(b"\n")
                    if line.strip():
                        yield json.loads(line.decode("utf-8"))
            if buffer.strip():
                yield json.loads(buffer.decode("utf-8"))
        finally:
            connection.close()

    # -- helpers -------------------------------------------------------------------

    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll_floor: float = 0.05,
        poll_cap: float = 1.0,
    ) -> dict:
        """Poll until the job reaches a terminal status.

        The poll interval backs off exponentially from *poll_floor* to
        *poll_cap* with jitter — a long job is not hammered at 20 Hz —
        and dropped connections are tolerated until the deadline, so a
        wait spanning a service restart keeps waiting instead of dying
        with the old server's socket.
        """
        terminal = set(JOB_STATUSES) - {"queued", "running"}
        deadline = time.monotonic() + timeout
        interval = poll_floor
        while True:
            try:
                record = self.job(job_id)
            except RETRYABLE_EXCEPTIONS:
                record = None  # server momentarily unreachable
            if record is not None and record["status"] in terminal:
                return record
            if time.monotonic() >= deadline:
                if record is None:
                    raise TimeoutError(
                        f"service unreachable while waiting for job {job_id}"
                    )
                raise TimeoutError(
                    f"job {job_id} still {record['status']} after {timeout}s"
                )
            time.sleep(random.uniform(poll_floor, interval))
            interval = min(poll_cap, interval * 1.6)
