"""Job model: the spec a tenant submits and the lifecycle record.

A :class:`JobSpec` is the service-side mirror of one
:class:`~repro.core.fleet.FleetOrchestrator` invocation — the
profile × strategy × target matrix, budget and seed — plus the
service-only fields (tenant, priority, corpus opt-in). Validation is
eager and happens at submit time against the same registries the
orchestrator resolves from, so a bad spec is a 400 at the API boundary,
never a dead job.

A :class:`JobRecord` is the registry's unit of persistence: one job's
spec, status, timestamps and result totals, serialised to one JSON
manifest. Statuses move ``queued → running → finished`` on the happy
path; ``cancelled`` (operator asked) and ``aborted`` (run failed, or
the service restarted under it) are the terminal failures — both
resumable when the run left checkpoints.
"""

from __future__ import annotations

import dataclasses
import datetime
import secrets
import time

from repro.errors import ReproError

#: Every job lifecycle state, in rough lifecycle order.
JOB_STATUSES = ("queued", "running", "finished", "cancelled", "aborted")

#: Statuses a job can be resumed from (given a recorded run).
RESUMABLE_STATUSES = ("cancelled", "aborted")

#: Lowest .. highest submittable priority (0 runs first).
PRIORITY_RANGE = (0, 9)


class JobError(ReproError):
    """Base class for job-layer failures."""


class JobValidationError(JobError, ValueError):
    """A submitted spec that references unknown names or bad values."""


class QuotaExceededError(JobError):
    """A submission the tenant's quota does not admit."""


class UnknownJobError(JobError, KeyError):
    """A job id that does not exist (or belongs to another tenant)."""


class JobStateError(JobError):
    """An operation the job's current status does not allow."""


class ServiceSaturatedError(JobError):
    """A submission the service's bounded queue cannot admit right now.

    Maps to HTTP 503 with a ``Retry-After`` header — the client should
    back off and retry, nothing about the request itself is wrong.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


def new_job_id() -> str:
    """A sortable, collision-safe job identifier."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"job-{stamp}-{secrets.token_hex(4)}"


def _iso(epoch: float | None) -> str | None:
    if epoch is None:
        return None
    return datetime.datetime.fromtimestamp(
        epoch, datetime.timezone.utc
    ).isoformat(timespec="seconds")


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """What a tenant asks the fleet to run.

    :param tenant: namespace the job (and its corpus/findings) belongs
        to.
    :param profiles: testbed profile ids (``D1``..).
    :param strategies: exploration strategy registry names.
    :param targets: protocol fuzz-target registry names.
    :param budget: per-campaign packet budget (``max_packets``).
    :param seed: fleet seed (campaign seeds derive from it).
    :param armed: False disarms the injected bugs fleet-wide.
    :param priority: 0 (first) .. 9 (last); FIFO within a priority.
    :param use_corpus: write findings/entries back to the tenant's
        corpus namespace and seed campaigns from it.
    :param target_state: focus state for the ``targeted`` strategy.
    :param batch: campaigns per worker shard; None auto-sizes.
    """

    tenant: str
    profiles: tuple[str, ...]
    strategies: tuple[str, ...] = ("sequential",)
    targets: tuple[str, ...] = ("l2cap",)
    budget: int = 600
    seed: int = 7
    armed: bool = True
    priority: int = 5
    use_corpus: bool = False
    target_state: str = "OPEN"
    batch: int | None = None

    @property
    def campaigns(self) -> int:
        """Matrix size: one campaign per profile × strategy × target."""
        return len(self.profiles) * len(self.strategies) * len(self.targets)

    @property
    def packets_requested(self) -> int:
        """Worst-case packet spend — what the budget quota charges."""
        return self.campaigns * self.budget

    def validate(self) -> None:
        """Check every field against the live registries.

        :raises JobValidationError: naming the first offending field.
        """
        from repro.core.strategies import STRATEGY_NAMES
        from repro.corpus.backend import NAMESPACE_RE
        from repro.l2cap.states import ChannelState
        from repro.targets import target_names
        from repro.testbed.profiles import PROFILES_BY_ID

        if not NAMESPACE_RE.match(self.tenant):
            raise JobValidationError(f"invalid tenant name {self.tenant!r}")
        if not self.profiles:
            raise JobValidationError("job needs at least one profile")
        for device_id in self.profiles:
            if device_id not in PROFILES_BY_ID:
                raise JobValidationError(
                    f"unknown profile {device_id!r}; choose from "
                    f"{', '.join(PROFILES_BY_ID)}"
                )
        if not self.strategies:
            raise JobValidationError("job needs at least one strategy")
        for strategy in self.strategies:
            if strategy not in STRATEGY_NAMES:
                raise JobValidationError(
                    f"unknown strategy {strategy!r}; choose from "
                    f"{', '.join(STRATEGY_NAMES)}"
                )
        known_targets = target_names()
        if not self.targets:
            raise JobValidationError("job needs at least one fuzz target")
        for target in self.targets:
            if target not in known_targets:
                raise JobValidationError(
                    f"unknown fuzz target {target!r}; choose from "
                    f"{', '.join(known_targets)}"
                )
        if self.budget < 1:
            raise JobValidationError("budget must be >= 1 packet")
        low, high = PRIORITY_RANGE
        if not low <= self.priority <= high:
            raise JobValidationError(
                f"priority must be {low}..{high}, got {self.priority}"
            )
        if self.batch is not None and self.batch < 1:
            raise JobValidationError("batch must be >= 1")
        try:
            ChannelState(self.target_state)
        except ValueError as error:
            raise JobValidationError(
                f"unknown target state {self.target_state!r}"
            ) from error

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        for field in ("profiles", "strategies", "targets"):
            data[field] = list(data[field])
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        try:
            return cls(
                tenant=str(data["tenant"]),
                profiles=tuple(data["profiles"]),
                strategies=tuple(data.get("strategies", ("sequential",))),
                targets=tuple(data.get("targets", ("l2cap",))),
                budget=int(data.get("budget", 600)),
                seed=int(data.get("seed", 7)),
                armed=bool(data.get("armed", True)),
                priority=int(data.get("priority", 5)),
                use_corpus=bool(data.get("use_corpus", False)),
                target_state=str(data.get("target_state", "OPEN")),
                batch=(
                    int(data["batch"]) if data.get("batch") is not None else None
                ),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise JobValidationError(f"malformed job spec: {error}") from error


@dataclasses.dataclass
class JobRecord:
    """One job's lifecycle, as the registry persists it.

    Timestamps are epoch floats (ISO renderings are derived in
    :meth:`to_dict`); ``run_id`` is the telemetry run the job records
    into — set as soon as the orchestrator is constructed, so cancel,
    status and resume can find the run directory while the job is still
    running. ``resume_of`` links a resume job back to the terminal job
    it continues (both share ``run_id``).
    """

    job_id: str
    spec: JobSpec
    status: str = "queued"
    created: float = 0.0
    started: float | None = None
    finished: float | None = None
    run_id: str | None = None
    error: str | None = None
    resume_of: str | None = None
    campaigns: int | None = None
    packets: int | None = None
    findings: int | None = None
    merged_state_count: int | None = None
    #: The tenant's Idempotency-Key for the submit that created this
    #: job; a replayed submit with the same key returns this record.
    idempotency_key: str | None = None
    #: True once a cancelled-while-queued job's packet-budget charge
    #: has been handed back — set atomically with the status flip, so
    #: the refund happens exactly once even across restarts.
    quota_refunded: bool = False
    #: How many automatic (watchdog/restart) resumes the chain ending
    #: in this job has consumed; the cap lives in the scheduler.
    auto_resume_attempts: int = 0

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "status": self.status,
            "created": self.created,
            "created_at": _iso(self.created),
            "started": self.started,
            "started_at": _iso(self.started),
            "finished": self.finished,
            "finished_at": _iso(self.finished),
            "run_id": self.run_id,
            "error": self.error,
            "resume_of": self.resume_of,
            "campaigns": self.campaigns,
            "packets": self.packets,
            "findings": self.findings,
            "merged_state_count": self.merged_state_count,
            "idempotency_key": self.idempotency_key,
            "quota_refunded": self.quota_refunded,
            "auto_resume_attempts": self.auto_resume_attempts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        return cls(
            job_id=str(data["job_id"]),
            spec=JobSpec.from_dict(data["spec"]),
            status=str(data.get("status", "queued")),
            created=float(data.get("created", 0.0)),
            started=data.get("started"),
            finished=data.get("finished"),
            run_id=data.get("run_id"),
            error=data.get("error"),
            resume_of=data.get("resume_of"),
            campaigns=data.get("campaigns"),
            packets=data.get("packets"),
            findings=data.get("findings"),
            merged_state_count=data.get("merged_state_count"),
            idempotency_key=data.get("idempotency_key"),
            quota_refunded=bool(data.get("quota_refunded", False)),
            auto_resume_attempts=int(data.get("auto_resume_attempts", 0)),
        )

    @property
    def active(self) -> bool:
        """Whether the job still occupies a concurrent-job quota slot."""
        return self.status in ("queued", "running")

    @property
    def resumable(self) -> bool:
        """Whether a resume submission can pick this job up."""
        return self.status in RESUMABLE_STATUSES and self.run_id is not None
