"""Supervision thread over the scheduler: the service heals itself.

Three jobs, one small loop:

* **Dispatcher liveness** — if the dispatcher thread ever dies (a bug,
  an injected ``dispatcher_crash`` fault), the watchdog restarts it;
  a job that was running under the dead dispatcher is flipped to
  ``aborted(resumable)`` first so the restart cannot strand it.
* **Wedge detection** — the running job must make *observable*
  progress: its telemetry run directory (journal segments, merged
  events, checkpoints, run manifest) must change within
  ``wedge_deadline`` seconds. A wedged job — hung worker the pool
  supervision could not unstick, dead pool, livelock — is aborted with
  a watchdog reason and lands ``aborted(resumable)``.
* **Deferred auto-resumes** — capped-backoff resumes queued by the
  scheduler fire from here too, so they run even while the dispatcher
  is blocked inside a job.

The loop touches only public scheduler/registry surfaces and treats
every probe as fallible: a watchdog must never take the service down.
"""

from __future__ import annotations

import logging
import threading
import time
from pathlib import Path

from repro.service.jobs import UnknownJobError
from repro.service.scheduler import JobScheduler
from repro.service.tenants import TenantManager

_log = logging.getLogger(__name__)


def _progress_signature(run_dir: Path) -> tuple:
    """A cheap fingerprint that changes whenever the run advances.

    Folds (name, size, mtime_ns) over the run's journal, segments,
    checkpoints and manifest. Any packet dispatched, shard finished or
    checkpoint written perturbs at least one of these; a wedged run
    perturbs none.
    """
    entries: list[tuple[str, int, int]] = []
    candidates: list[Path] = [run_dir / "events.jsonl", run_dir / "run.json"]
    for sub in ("segments", "checkpoints"):
        directory = run_dir / sub
        if directory.is_dir():
            candidates.extend(sorted(directory.iterdir()))
    for path in candidates:
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((path.name, stat.st_size, stat.st_mtime_ns))
    return tuple(entries)


class Watchdog:
    """Background supervisor for one :class:`JobScheduler`."""

    def __init__(
        self,
        scheduler: JobScheduler,
        tenants: TenantManager,
        interval: float = 1.0,
        wedge_deadline: float | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be > 0")
        if wedge_deadline is not None and wedge_deadline <= 0:
            raise ValueError("wedge_deadline must be > 0 (or None)")
        self.scheduler = scheduler
        self.tenants = tenants
        self.interval = interval
        self.wedge_deadline = wedge_deadline
        self.metrics = scheduler.metrics
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # (job_id, signature, monotonic time the signature last changed)
        self._watched: tuple[str, tuple, float] | None = None

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._loop, name="service-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.tick()
            except Exception:  # noqa: BLE001 — the watchdog must survive
                _log.exception("watchdog tick failed")

    # -- one supervision pass ------------------------------------------------------

    def tick(self) -> None:
        """One supervision pass (public so tests can drive it directly)."""
        if self.scheduler.ensure_dispatcher_alive():
            self.metrics.inc("service_watchdog_restarts")
            self.metrics.inc(
                "service_recoveries_total", kind="dispatcher_restart"
            )
        if self.scheduler.auto_resume:
            self.scheduler.service_auto_resume()
        if self.wedge_deadline is not None:
            self._check_wedge()

    def _check_wedge(self) -> None:
        job_id = self.scheduler.current_job
        if job_id is None:
            self._watched = None
            return
        try:
            record = self.scheduler.registry.get(job_id)
        except UnknownJobError:
            self._watched = None
            return
        if record.run_id is None:
            # Orchestrator not constructed yet; nothing to fingerprint.
            self._watched = None
            return
        run_dir = Path(self.tenants.runs_dir(record.spec.tenant)) / record.run_id
        signature = _progress_signature(run_dir)
        now = time.monotonic()
        if self._watched is None or self._watched[0] != job_id:
            self._watched = (job_id, signature, now)
            return
        _, last_signature, since = self._watched
        if signature != last_signature:
            self._watched = (job_id, signature, now)
            return
        if now - since > self.wedge_deadline:
            _log.warning(
                "job %s made no observable progress for %.1fs; aborting it "
                "as wedged",
                job_id,
                now - since,
            )
            self.metrics.inc("service_recoveries_total", kind="wedge_abort")
            self.scheduler.abort_job(
                job_id,
                f"no journal progress for {self.wedge_deadline:.0f}s",
            )
            self._watched = None
