"""Multi-tenant isolation: namespaces, directories, quotas.

Each tenant owns a subtree of the service data directory::

    <data_dir>/tenants/<tenant>/
        runs/       telemetry runs (one per job) — run_status, journal
        corpus/     the tenant's corpus namespace (its own SQLite DB)

Tenant names are validated with the corpus namespace rules
(:data:`repro.corpus.backend.NAMESPACE_RE` — one path-safe segment),
so a tenant can never resolve outside the tenants root. Corpus
namespaces are materialised eagerly as SQLite backends via
:func:`repro.corpus.backend.open_namespace`, which pins the backend
before the first fleet worker autodetects the directory layout.

Quotas are **admission control**, enforced exactly at submit time
under the scheduler's lock:

* ``max_active_jobs`` — queued + running jobs a tenant may hold;
* ``packet_budget`` — cumulative worst-case packets
  (campaigns × budget) across every job the tenant ever submitted;
  resumes are free (charged at original admission).
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.corpus.backend import CorpusBackend, namespace_root, open_namespace

TENANTS_DIRNAME = "tenants"
RUNS_DIRNAME = "runs"
CORPUS_DIRNAME = "corpus"

DEFAULT_MAX_ACTIVE_JOBS = 4
DEFAULT_PACKET_BUDGET = 10_000_000


@dataclasses.dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits."""

    max_active_jobs: int = DEFAULT_MAX_ACTIVE_JOBS
    packet_budget: int = DEFAULT_PACKET_BUDGET


class TenantManager:
    """Resolves tenant names to directories, backends and quotas."""

    def __init__(
        self,
        root: str | Path,
        default_quota: TenantQuota | None = None,
        overrides: dict[str, TenantQuota] | None = None,
    ) -> None:
        self.root = Path(root) / TENANTS_DIRNAME
        self.default_quota = (
            default_quota if default_quota is not None else TenantQuota()
        )
        self.overrides = dict(overrides or {})

    def quota(self, tenant: str) -> TenantQuota:
        return self.overrides.get(tenant, self.default_quota)

    def home(self, tenant: str) -> Path:
        """The tenant's directory (validated name; created on demand)."""
        home = namespace_root(self.root, tenant)
        home.mkdir(parents=True, exist_ok=True)
        return home

    def runs_dir(self, tenant: str) -> Path:
        runs = self.home(tenant) / RUNS_DIRNAME
        runs.mkdir(parents=True, exist_ok=True)
        return runs

    def corpus_dir(self, tenant: str) -> Path:
        """The tenant's corpus namespace path (backend materialised)."""
        self.open_corpus(tenant).close()
        return self.home(tenant) / CORPUS_DIRNAME

    def open_corpus(self, tenant: str) -> CorpusBackend:
        """Open (creating as SQLite on first use) the tenant's corpus."""
        return open_namespace(self.home(tenant), CORPUS_DIRNAME)

    def exists(self, tenant: str) -> bool:
        """Whether the tenant has any on-disk footprint yet."""
        try:
            return namespace_root(self.root, tenant).is_dir()
        except ValueError:
            return False
