"""HCI transport substrate: ACL framing and the virtual link."""

from repro.hci.packets import AclPacket
from repro.hci.transport import SimClock, VirtualLink

__all__ = ["AclPacket", "SimClock", "VirtualLink"]
