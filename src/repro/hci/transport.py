"""Virtual duplex link between a fuzzer and a target device.

This is the reproduction's stand-in for the Bluetooth dongle and the air
interface. It is a synchronous, deterministic simulation: the initiator
pushes one ACL frame, the attached remote endpoint (a virtual device)
processes it immediately and may enqueue response frames.

The link also owns the campaign's *simulated clock*. Real Bluetooth
fuzzing throughput is dominated by radio turnaround and target processing
latency, so the clock charges a configurable cost per transmitted frame;
throughput and elapsed-time results (paper §IV.C pps, Table VI elapsed
times) are read off this clock rather than wall time.

When the remote endpoint crashes, the link transitions to ``down`` and
every later operation raises the :class:`~repro.errors.TransportError`
subclass the crash mapped to — exactly the error strings the paper's
detection phase matches on.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from collections.abc import Callable

from repro.errors import (
    TargetCrashedError,
    TargetTimeoutError,
    TransportError,
)
from repro.hci.packets import AclPacket


class SimClock:
    """Deterministic simulated clock, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward.

        :raises ValueError: if *seconds* is negative.
        """
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds


@dataclasses.dataclass
class LinkStats:
    """Frame counters kept by the link."""

    frames_sent: int = 0
    frames_received: int = 0
    frames_dropped: int = 0


class VirtualLink:
    """Duplex frame pipe with crash propagation and a per-frame time cost.

    :param clock: simulated clock shared by the campaign (a fresh one is
        created when omitted).
    :param tx_cost: seconds charged per transmitted frame — models radio
        turnaround plus target processing; drives pps and elapsed-time
        results.
    :param loss_rate: probability of silently dropping an outbound frame
        (failure-injection hook; default 0 keeps runs deterministic).
    :param rng: random source used only when *loss_rate* > 0.
    """

    def __init__(
        self,
        clock: SimClock | None = None,
        tx_cost: float = 0.0019,
        loss_rate: float = 0.0,
        rng=None,
    ) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss_rate must be within [0, 1]")
        self.clock = clock if clock is not None else SimClock()
        self.tx_cost = tx_cost
        self.loss_rate = loss_rate
        self._rng = rng
        self._remote: Callable[[bytes], list[bytes]] | None = None
        self._inbound: deque[bytes] = deque()
        self._down_error: type[TransportError] | None = None
        self.stats = LinkStats()

    # -- wiring ---------------------------------------------------------------

    def attach(self, handler: Callable[[bytes], list[bytes]]) -> None:
        """Register the remote endpoint's frame handler.

        The handler takes raw ACL bytes and returns the list of raw ACL
        response frames the remote produces.
        """
        self._remote = handler

    @property
    def is_up(self) -> bool:
        """True while the link (and the remote's Bluetooth service) lives."""
        return self._down_error is None

    @property
    def down_error(self) -> type[TransportError] | None:
        """The error class the link failed with, if any."""
        return self._down_error

    def take_down(self, error: type[TransportError]) -> None:
        """Force the link down with *error* (used by crash propagation)."""
        self._down_error = error

    def restore(self) -> None:
        """Bring a downed link back up (device reset in the testbed)."""
        self._down_error = None
        self._inbound.clear()

    # -- data path ------------------------------------------------------------

    def send_frame(self, frame: bytes) -> None:
        """Transmit one raw ACL frame to the remote endpoint.

        Charges :attr:`tx_cost` on the clock, then delivers synchronously.
        Responses the remote produces are queued for :meth:`receive_frame`.

        :raises TransportError: (a subclass) once the link is down.
        """
        self.clock.advance(self.tx_cost)
        if self._down_error is not None:
            raise self._down_error()
        if self._remote is None:
            raise TargetTimeoutError("no remote endpoint attached")
        if self.loss_rate > 0.0 and self._rng is not None:
            if self._rng.random() < self.loss_rate:
                self.stats.frames_dropped += 1
                return
        self.stats.frames_sent += 1
        try:
            responses = self._remote(frame)
        except TargetCrashedError as crash_exc:
            self._down_error = crash_exc.crash.transport_error
            raise self._down_error() from crash_exc
        for response in responses:
            self._inbound.append(response)
            self.stats.frames_received += 1

    def send_packet(self, packet: AclPacket) -> None:
        """Convenience: encode and transmit an :class:`AclPacket`."""
        self.send_frame(packet.encode())

    def receive_frame(self) -> bytes | None:
        """Pop the next queued response frame (None if the queue is empty).

        :raises TransportError: once the link is down and drained — a
            downed target cannot answer, which the fuzzer observes as the
            crash's error condition.
        """
        if self._inbound:
            return self._inbound.popleft()
        if self._down_error is not None:
            raise self._down_error()
        return None

    def receive_packet(self) -> AclPacket | None:
        """Convenience: receive and decode one :class:`AclPacket`."""
        frame = self.receive_frame()
        if frame is None:
            return None
        return AclPacket.decode(frame)

    def drain(self) -> list[bytes]:
        """Pop every currently queued response frame."""
        frames = list(self._inbound)
        self._inbound.clear()
        return frames

    def pending(self) -> int:
        """Number of response frames waiting to be received."""
        return len(self._inbound)
