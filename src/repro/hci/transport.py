"""Virtual duplex link between a fuzzer and a target device.

This is the reproduction's stand-in for the Bluetooth dongle and the air
interface. It is a synchronous, deterministic simulation: the initiator
pushes one ACL frame, the attached remote endpoint (a virtual device)
processes it immediately and may enqueue response frames.

The link also owns the campaign's *simulated clock*. Real Bluetooth
fuzzing throughput is dominated by radio turnaround and target processing
latency, so the clock charges a configurable cost per transmitted frame;
throughput and elapsed-time results (paper §IV.C pps, Table VI elapsed
times) are read off this clock rather than wall time.

When the remote endpoint crashes, the link transitions to ``down`` and
every later operation raises the :class:`~repro.errors.TransportError`
subclass the crash mapped to — exactly the error strings the paper's
detection phase matches on.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from collections.abc import Callable

from repro.errors import (
    TargetCrashedError,
    TargetTimeoutError,
    TransportError,
)
from repro.hci.packets import AclPacket


class SimClock:
    """Deterministic simulated clock, in seconds.

    :attr:`now` is a plain attribute (not a property): it is read two to
    three times per transmitted packet on the hot path, and callers are
    expected to move time only through :meth:`advance`.
    """

    def __init__(self, start: float = 0.0) -> None:
        #: Current simulated time in seconds.
        self.now = float(start)

    def advance(self, seconds: float) -> None:
        """Move the clock forward.

        :raises ValueError: if *seconds* is negative.
        """
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self.now += seconds


@dataclasses.dataclass
class LinkStats:
    """Frame counters kept by the link."""

    frames_sent: int = 0
    frames_received: int = 0
    frames_dropped: int = 0


class PacketFrame:
    """An in-flight ACL frame kept as its decoded L2CAP packet.

    The step past :class:`TaggedFrame`: where a tagged frame carries the
    wire bytes *plus* the decoded object, a packet frame defers the byte
    image entirely — the virtual device hands its response back as the
    packet object it just built, and neither the L2CAP nor the ACL
    serialisation ever happens unless someone asks for the bytes.

    Only emitted on the hinted loopback path (the sender passed its
    decoded packet down, proving the consumer is an in-process
    :class:`~repro.core.packet_queue.PacketQueue` that reads the
    ``l2cap`` attribute), and only for packets whose
    ``loopback_view()`` is the packet itself — anything else still
    travels as real bytes, so byte-reading consumers never meet one.
    """

    __slots__ = ("handle", "l2cap")

    def __init__(self, handle: int, l2cap) -> None:
        self.handle = handle
        self.l2cap = l2cap

    def to_bytes(self) -> bytes:
        """Materialise the wire image (offline export, debugging)."""
        from repro.hci.packets import encode_acl

        return encode_acl(self.handle, self.l2cap.encode())


class TaggedFrame(bytes):
    """ACL frame bytes carrying their already-decoded L2CAP packet.

    The in-process link is both wire and dongle: when the sending side
    already holds the decoded packet object — and the packet survives a
    decode round trip unchanged — the tag lets the receiving side skip
    re-parsing the bytes it just produced. The frame still *is* the wire
    bytes; anything that ignores the tag behaves exactly as before.
    """

    # bytes subclasses cannot carry __slots__; the implicit instance
    # __dict__ holds the single ``l2cap`` attribute.

    @classmethod
    def tag(cls, frame: bytes, l2cap) -> "TaggedFrame":
        """Wrap *frame* with its decoded L2CAP payload *l2cap*."""
        tagged = cls(frame)
        tagged.l2cap = l2cap
        return tagged


class VirtualLink:
    """Duplex frame pipe with crash propagation and a per-frame time cost.

    :param clock: simulated clock shared by the campaign (a fresh one is
        created when omitted).
    :param tx_cost: seconds charged per transmitted frame — models radio
        turnaround plus target processing; drives pps and elapsed-time
        results.
    :param loss_rate: probability of silently dropping an outbound frame
        (failure-injection hook; default 0 keeps runs deterministic).
    :param rng: random source used only when *loss_rate* > 0.
    """

    def __init__(
        self,
        clock: SimClock | None = None,
        tx_cost: float = 0.0019,
        loss_rate: float = 0.0,
        rng=None,
    ) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss_rate must be within [0, 1]")
        self.clock = clock if clock is not None else SimClock()
        self.tx_cost = tx_cost
        self.loss_rate = loss_rate
        self._rng = rng
        self._remote: Callable[..., list[bytes]] | None = None
        self._remote_accepts_l2cap = False
        self._inbound: deque[bytes] = deque()
        self._down_error: type[TransportError] | None = None
        self.stats = LinkStats()

    # -- wiring ---------------------------------------------------------------

    def attach(
        self,
        handler: Callable[..., list[bytes]],
        accepts_l2cap: bool = False,
    ) -> None:
        """Register the remote endpoint's frame handler.

        The handler takes raw ACL bytes and returns the list of raw ACL
        response frames the remote produces. With *accepts_l2cap* the
        handler is called as ``handler(frame, l2cap)`` where *l2cap* is
        the sender's already-decoded packet (or None) — the loopback fast
        path that spares the virtual device a re-parse.
        """
        self._remote = handler
        self._remote_accepts_l2cap = accepts_l2cap

    @property
    def is_up(self) -> bool:
        """True while the link (and the remote's Bluetooth service) lives."""
        return self._down_error is None

    @property
    def down_error(self) -> type[TransportError] | None:
        """The error class the link failed with, if any."""
        return self._down_error

    def take_down(self, error: type[TransportError]) -> None:
        """Force the link down with *error* (used by crash propagation)."""
        self._down_error = error

    def restore(self) -> None:
        """Bring a downed link back up (device reset in the testbed)."""
        self._down_error = None
        self._inbound.clear()

    # -- data path ------------------------------------------------------------

    def send_frame(self, frame: bytes, l2cap=None) -> None:
        """Transmit one raw ACL frame to the remote endpoint.

        Charges :attr:`tx_cost` on the clock, then delivers synchronously.
        Responses the remote produces are queued for :meth:`receive_frame`.

        :param l2cap: the sender's already-decoded L2CAP packet, passed
            through to a handler attached with ``accepts_l2cap=True`` so
            the remote can skip re-parsing (loopback fast path).

        :raises TransportError: (a subclass) once the link is down.
        """
        self.clock.advance(self.tx_cost)
        if self._down_error is not None:
            raise self._down_error()
        if self._remote is None:
            raise TargetTimeoutError("no remote endpoint attached")
        if self.loss_rate > 0.0 and self._rng is not None:
            if self._rng.random() < self.loss_rate:
                self.stats.frames_dropped += 1
                return
        self.stats.frames_sent += 1
        try:
            if self._remote_accepts_l2cap:
                responses = self._remote(frame, l2cap)
            else:
                responses = self._remote(frame)
        except TargetCrashedError as crash_exc:
            self._down_error = crash_exc.crash.transport_error
            raise self._down_error() from crash_exc
        for response in responses:
            self._inbound.append(response)
            self.stats.frames_received += 1

    def send_packet(self, packet: AclPacket) -> None:
        """Convenience: encode and transmit an :class:`AclPacket`."""
        self.send_frame(packet.encode())

    def receive_frame(self) -> bytes | None:
        """Pop the next queued response frame (None if the queue is empty).

        :raises TransportError: once the link is down and drained — a
            downed target cannot answer, which the fuzzer observes as the
            crash's error condition.
        """
        if self._inbound:
            return self._inbound.popleft()
        if self._down_error is not None:
            raise self._down_error()
        return None

    def receive_packet(self) -> AclPacket | None:
        """Convenience: receive and decode one :class:`AclPacket`."""
        frame = self.receive_frame()
        if frame is None:
            return None
        return AclPacket.decode(frame)

    def drain(self) -> list[bytes]:
        """Pop every currently queued response frame."""
        frames = list(self._inbound)
        self._inbound.clear()
        return frames

    def pending(self) -> int:
        """Number of response frames waiting to be received."""
        return len(self._inbound)
