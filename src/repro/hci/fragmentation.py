"""ACL fragmentation and recombination (Core 5.2 Vol 4 Part E §5.4.2).

Controllers carry L2CAP frames in ACL packets no larger than the
controller's ACL buffer: the first fragment is flagged
``PB_FIRST_FLUSHABLE`` and the rest ``PB_CONTINUATION``. The receiving
host recombines per connection handle, using the L2CAP basic-header
length to know when a frame is complete.

The virtual testbed defaults to an unfragmented path (one frame per ACL
packet); this module supplies the faithful fragmenting sender and the
reassembling receiver, exercised by the property tests and available on
the :class:`~repro.core.packet_queue.PacketQueue` via ``acl_mtu``.
"""

from __future__ import annotations

import struct

from repro.errors import PacketDecodeError
from repro.hci.packets import AclPacket, PB_CONTINUATION, PB_FIRST_FLUSHABLE
from repro.l2cap.constants import L2CAP_HEADER_LEN


def fragment(payload: bytes, handle: int, acl_mtu: int) -> list[AclPacket]:
    """Split one L2CAP frame into ACL packets of at most *acl_mtu* bytes.

    :raises ValueError: for a non-positive MTU.
    """
    if acl_mtu < 1:
        raise ValueError("ACL MTU must be positive")
    if not payload:
        return [AclPacket(handle=handle, payload=b"", pb_flag=PB_FIRST_FLUSHABLE)]
    packets = []
    for offset in range(0, len(payload), acl_mtu):
        chunk = payload[offset : offset + acl_mtu]
        pb_flag = PB_FIRST_FLUSHABLE if offset == 0 else PB_CONTINUATION
        packets.append(AclPacket(handle=handle, payload=chunk, pb_flag=pb_flag))
    return packets


class Reassembler:
    """Per-handle recombination of fragmented ACL traffic.

    Feed ACL packets in arrival order; completed L2CAP frames come back.
    Malformed sequences follow controller behaviour: a continuation with
    no start in progress is dropped, a fresh start discards any
    half-built frame, and over-long accumulations are discarded.
    """

    def __init__(self) -> None:
        self._pending: dict[int, bytearray] = {}
        self._expected: dict[int, int] = {}
        self.dropped_fragments = 0

    def feed(self, packet: AclPacket) -> bytes | None:
        """Consume one ACL packet; return a completed L2CAP frame or None."""
        handle = packet.handle
        if packet.pb_flag == PB_CONTINUATION:
            if handle not in self._pending:
                self.dropped_fragments += 1
                return None
            self._pending[handle].extend(packet.payload)
        else:
            if handle in self._pending:
                self.dropped_fragments += 1  # abandoned half-frame
            self._pending[handle] = bytearray(packet.payload)
            self._expected[handle] = self._frame_length(packet.payload)

        buffer = self._pending[handle]
        expected = self._expected.get(handle)
        if expected is None and len(buffer) >= L2CAP_HEADER_LEN:
            expected = self._frame_length(bytes(buffer))
            self._expected[handle] = expected
        if expected is None:
            return None
        if len(buffer) > expected:
            # The peer sent more than the L2CAP header promised: a
            # garbage tail riding the last fragment. Deliver everything —
            # judging it is the L2CAP layer's job.
            expected = len(buffer)
        if len(buffer) == expected:
            del self._pending[handle]
            self._expected.pop(handle, None)
            return bytes(buffer)
        return None

    @staticmethod
    def _frame_length(buffer: bytes) -> int | None:
        """Total frame size promised by the L2CAP basic header."""
        if len(buffer) < L2CAP_HEADER_LEN:
            return None
        (payload_len,) = struct.unpack_from("<H", buffer, 0)
        return L2CAP_HEADER_LEN + payload_len

    def pending_handles(self) -> frozenset[int]:
        """Handles with an incomplete frame in flight."""
        return frozenset(self._pending)


def defragment_stream(packets: list[AclPacket]) -> list[bytes]:
    """Convenience: recombine a whole packet list into L2CAP frames.

    :raises PacketDecodeError: if the stream ends mid-frame.
    """
    reassembler = Reassembler()
    frames = []
    for packet in packets:
        frame = reassembler.feed(packet)
        if frame is not None:
            frames.append(frame)
    if reassembler.pending_handles():
        raise PacketDecodeError("ACL stream ended with an incomplete frame")
    return frames
