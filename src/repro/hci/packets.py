"""HCI ACL framing (the outermost layer of paper Fig. 3).

The Host Controller Interface carries L2CAP traffic between host and
controller. One ACL data packet wraps one L2CAP frame::

    | Type (1) | Connection Handle + Flags (2) | Length (2) | payload |

The 12-bit connection handle identifies the baseband link; the top four
bits carry the packet-boundary and broadcast flags.
"""

from __future__ import annotations

import dataclasses
import struct

from repro.errors import PacketDecodeError, PacketEncodeError

#: HCI packet-type indicators (Core 5.2 Vol 4 Part A §2).
HCI_COMMAND_PKT = 0x01
HCI_ACL_DATA_PKT = 0x02
HCI_SYNC_DATA_PKT = 0x03
HCI_EVENT_PKT = 0x04

#: Packet-boundary flag: first automatically-flushable packet.
PB_FIRST_FLUSHABLE = 0b10

#: Packet-boundary flag: continuation fragment.
PB_CONTINUATION = 0b01

#: Largest connection-handle value (12 bits).
MAX_CONNECTION_HANDLE = 0x0EFF

ACL_HEADER_LEN = 5


@dataclasses.dataclass(frozen=True)
class AclPacket:
    """One HCI ACL data packet wrapping an L2CAP frame.

    :param handle: 12-bit connection handle of the baseband link.
    :param payload: the L2CAP frame bytes.
    :param pb_flag: packet-boundary flag (2 bits).
    :param bc_flag: broadcast flag (2 bits).
    """

    handle: int
    payload: bytes
    pb_flag: int = PB_FIRST_FLUSHABLE
    bc_flag: int = 0

    def encode(self) -> bytes:
        """Serialise to UART-style wire bytes (type octet included).

        :raises PacketEncodeError: for out-of-range handle or flags.
        """
        return encode_acl(self.handle, self.payload, self.pb_flag, self.bc_flag)

    @classmethod
    def decode(cls, raw: bytes) -> "AclPacket":
        """Parse wire bytes into an ACL packet.

        :raises PacketDecodeError: on truncation or wrong packet type.
        """
        if len(raw) < ACL_HEADER_LEN:
            raise PacketDecodeError(f"ACL packet too short: {len(raw)} bytes")
        packet_type, handle_and_flags, length = struct.unpack_from("<BHH", raw, 0)
        if packet_type != HCI_ACL_DATA_PKT:
            raise PacketDecodeError(f"not an ACL data packet (type={packet_type:#x})")
        payload = raw[ACL_HEADER_LEN:]
        if length != len(payload):
            raise PacketDecodeError(
                f"ACL length field {length} disagrees with payload {len(payload)}"
            )
        return cls(
            handle=handle_and_flags & 0x0FFF,
            payload=payload,
            pb_flag=(handle_and_flags >> 12) & 0b11,
            bc_flag=(handle_and_flags >> 14) & 0b11,
        )


def encode_acl(
    handle: int,
    payload: bytes,
    pb_flag: int = PB_FIRST_FLUSHABLE,
    bc_flag: int = 0,
) -> bytes:
    """Encode one ACL frame without the dataclass round trip.

    This is the single ACL serialiser — :meth:`AclPacket.encode`
    delegates here, so the function-call fast path the wire layer uses
    (one frame per L2CAP packet, no object construction per hop) can
    never diverge from the dataclass API.

    :raises PacketEncodeError: for out-of-range handle or flags, or an
        oversized payload.
    """
    if not 0 <= handle <= MAX_CONNECTION_HANDLE:
        raise PacketEncodeError(f"connection handle {handle:#x} out of range")
    if not 0 <= pb_flag <= 0b11 or not 0 <= bc_flag <= 0b11:
        raise PacketEncodeError("PB/BC flags are 2-bit values")
    if len(payload) > 0xFFFF:
        raise PacketEncodeError("ACL payload exceeds 65535 bytes")
    return (
        struct.pack(
            "<BHH",
            HCI_ACL_DATA_PKT,
            (handle & 0x0FFF) | (pb_flag << 12) | (bc_flag << 14),
            len(payload),
        )
        + payload
    )
