"""OBEX protocol constants (IrOBEX 1.3 as profiled by Bluetooth).

OBEX is the object-exchange layer at the top of the paper's Fig. 1
stack: file transfer runs OBEX over RFCOMM over L2CAP (§II.A). The
subset here covers session setup and object push/pull — enough to run
the paper's motivating file-transfer scenario end-to-end on the virtual
stack.
"""

from __future__ import annotations

import enum


class Opcode(enum.IntEnum):
    """Request opcodes (FINAL bit 0x80 included where mandatory)."""

    CONNECT = 0x80
    DISCONNECT = 0x81
    PUT = 0x02
    PUT_FINAL = 0x82
    GET = 0x03
    GET_FINAL = 0x83
    ABORT = 0xFF


class ResponseCode(enum.IntEnum):
    """Response codes (FINAL bit included)."""

    CONTINUE = 0x90
    SUCCESS = 0xA0
    BAD_REQUEST = 0xC0
    FORBIDDEN = 0xC3
    NOT_FOUND = 0xC4
    LENGTH_REQUIRED = 0xCB
    INTERNAL_ERROR = 0xD0


class HeaderId(enum.IntEnum):
    """Header identifiers; the top two bits encode the value layout."""

    NAME = 0x01  # unicode, length-prefixed
    TYPE = 0x42  # byte sequence
    BODY = 0x48  # byte sequence
    END_OF_BODY = 0x49  # byte sequence
    WHO = 0x4A  # byte sequence
    CONNECTION_ID = 0xCB  # 4-byte
    LENGTH = 0xC3  # 4-byte
    SRM = 0x97  # 1-byte


#: Layout of a header id, from its top two bits.
class HeaderLayout(enum.IntEnum):
    UNICODE = 0x00
    BYTES = 0x40
    ONE_BYTE = 0x80
    FOUR_BYTES = 0xC0


def layout_of(header_id: int) -> HeaderLayout:
    """Value layout encoded in a header id's top two bits."""
    return HeaderLayout(header_id & 0xC0)


#: OBEX protocol version 1.0 (the on-air value for IrOBEX 1.3).
OBEX_VERSION = 0x10

#: Default maximum OBEX packet size our server advertises.
DEFAULT_MAX_PACKET = 0x2000
