"""OBEX packet codec.

Packet layout::

    | opcode (1) | packet length (2, BE) | [connect extras] | headers |

CONNECT requests and their responses carry three extra octets (version,
flags, max packet size) before the headers. Headers are id-tagged values
whose layout (unicode / byte-sequence / 1-byte / 4-byte) is encoded in
the id's top two bits.
"""

from __future__ import annotations

import dataclasses
import struct

from repro.errors import PacketDecodeError, PacketEncodeError
from repro.obex.constants import (
    DEFAULT_MAX_PACKET,
    HeaderLayout,
    OBEX_VERSION,
    Opcode,
    layout_of,
)


@dataclasses.dataclass(frozen=True)
class ObexHeader:
    """One OBEX header (id + python-native value)."""

    header_id: int
    value: object

    def encode(self) -> bytes:
        """Serialise per the id's layout."""
        layout = layout_of(self.header_id)
        if layout is HeaderLayout.UNICODE:
            encoded = str(self.value).encode("utf-16-be") + b"\x00\x00"
            if len(encoded) + 3 > 0xFFFF:
                raise PacketEncodeError("unicode header too long")
            return struct.pack(">BH", self.header_id, len(encoded) + 3) + encoded
        if layout is HeaderLayout.BYTES:
            value = bytes(self.value)
            return struct.pack(">BH", self.header_id, len(value) + 3) + value
        if layout is HeaderLayout.ONE_BYTE:
            return struct.pack(">BB", self.header_id, int(self.value) & 0xFF)
        return struct.pack(">BI", self.header_id, int(self.value) & 0xFFFFFFFF)


def decode_headers(raw: bytes) -> list[ObexHeader]:
    """Parse a header region.

    :raises PacketDecodeError: on truncated or inconsistent headers.
    """
    headers = []
    offset = 0
    while offset < len(raw):
        header_id = raw[offset]
        layout = layout_of(header_id)
        if layout is HeaderLayout.ONE_BYTE:
            if offset + 2 > len(raw):
                raise PacketDecodeError("truncated 1-byte OBEX header")
            headers.append(ObexHeader(header_id, raw[offset + 1]))
            offset += 2
        elif layout is HeaderLayout.FOUR_BYTES:
            if offset + 5 > len(raw):
                raise PacketDecodeError("truncated 4-byte OBEX header")
            (value,) = struct.unpack_from(">I", raw, offset + 1)
            headers.append(ObexHeader(header_id, value))
            offset += 5
        else:
            if offset + 3 > len(raw):
                raise PacketDecodeError("truncated OBEX header length")
            (total,) = struct.unpack_from(">H", raw, offset + 1)
            if total < 3 or offset + total > len(raw):
                raise PacketDecodeError("OBEX header length out of bounds")
            body = raw[offset + 3 : offset + total]
            if layout is HeaderLayout.UNICODE:
                if body.endswith(b"\x00\x00"):
                    body = body[:-2]  # exactly one UTF-16 null terminator
                text = body.decode("utf-16-be", errors="replace")
                headers.append(ObexHeader(header_id, text))
            else:
                headers.append(ObexHeader(header_id, body))
            offset += total
    return headers


@dataclasses.dataclass(frozen=True)
class ObexPacket:
    """One OBEX request or response.

    :param code: opcode (requests) or response code (responses).
    :param headers: ordered headers.
    :param connect_extras: (version, flags, max_packet) for CONNECT
        requests and CONNECT responses; None otherwise.
    """

    code: int
    headers: tuple[ObexHeader, ...] = ()
    connect_extras: tuple[int, int, int] | None = None

    def encode(self) -> bytes:
        """Serialise the packet."""
        body = b""
        if self.connect_extras is not None:
            version, flags, max_packet = self.connect_extras
            body += struct.pack(">BBH", version, flags, max_packet)
        body += b"".join(header.encode() for header in self.headers)
        total = 3 + len(body)
        if total > 0xFFFF:
            raise PacketEncodeError("OBEX packet exceeds 65535 bytes")
        return struct.pack(">BH", self.code & 0xFF, total) + body

    @classmethod
    def decode(cls, raw: bytes, has_connect_extras: bool | None = None) -> "ObexPacket":
        """Parse a packet.

        :param has_connect_extras: force extras parsing; None infers from
            the opcode (CONNECT requests carry extras; for responses the
            caller must say, since response codes are ambiguous).
        :raises PacketDecodeError: on framing errors.
        """
        if len(raw) < 3:
            raise PacketDecodeError(f"OBEX packet too short: {len(raw)} bytes")
        code, total = struct.unpack_from(">BH", raw, 0)
        if total != len(raw):
            raise PacketDecodeError(
                f"OBEX length {total} disagrees with {len(raw)} bytes"
            )
        body = raw[3:]
        extras = None
        wants_extras = (
            has_connect_extras
            if has_connect_extras is not None
            else code == Opcode.CONNECT
        )
        if wants_extras:
            if len(body) < 4:
                raise PacketDecodeError("truncated OBEX connect extras")
            version, flags, max_packet = struct.unpack_from(">BBH", body, 0)
            extras = (version, flags, max_packet)
            body = body[4:]
        return cls(code, tuple(decode_headers(body)), extras)

    def header(self, header_id: int) -> object | None:
        """First header value with *header_id* (None when absent)."""
        for header in self.headers:
            if header.header_id == header_id:
                return header.value
        return None


def connect_request(max_packet: int = DEFAULT_MAX_PACKET) -> ObexPacket:
    """Build a CONNECT request."""
    return ObexPacket(
        Opcode.CONNECT, connect_extras=(OBEX_VERSION, 0x00, max_packet)
    )


def disconnect_request() -> ObexPacket:
    """Build a DISCONNECT request."""
    return ObexPacket(Opcode.DISCONNECT)


def put_request(name: str, body: bytes) -> ObexPacket:
    """Build a single-shot (final) PUT carrying a whole object."""
    from repro.obex.constants import HeaderId

    return ObexPacket(
        Opcode.PUT_FINAL,
        (
            ObexHeader(HeaderId.NAME, name),
            ObexHeader(HeaderId.LENGTH, len(body)),
            ObexHeader(HeaderId.END_OF_BODY, body),
        ),
    )


def get_request(name: str) -> ObexPacket:
    """Build a (final) GET for a named object."""
    from repro.obex.constants import HeaderId

    return ObexPacket(Opcode.GET_FINAL, (ObexHeader(HeaderId.NAME, name),))
