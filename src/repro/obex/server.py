"""Device-side OBEX object-push server.

Mounts on an RFCOMM DLCI (as a UIH service handler) and implements the
paper's §II.A file-transfer scenario: a connected peer can PUT objects
into the inbox and GET them back. Requests before CONNECT, unparseable
packets, and missing objects are answered with the proper OBEX error
codes — making the server a well-defined fuzzing surface of its own.
"""

from __future__ import annotations

from repro.errors import PacketDecodeError
from repro.obex.constants import (
    DEFAULT_MAX_PACKET,
    HeaderId,
    OBEX_VERSION,
    Opcode,
    ResponseCode,
)
from repro.obex.packets import ObexHeader, ObexPacket


class ObexServer:
    """A small object-push/pull server."""

    def __init__(self, max_packet: int = DEFAULT_MAX_PACKET) -> None:
        self.max_packet = max_packet
        self.connected = False
        self.inbox: dict[str, bytes] = {}
        self.requests_seen = 0

    def handle_request(self, raw: bytes) -> bytes:
        """Process one OBEX request; always returns a response packet."""
        self.requests_seen += 1
        try:
            packet = ObexPacket.decode(raw)
        except PacketDecodeError:
            return ObexPacket(ResponseCode.BAD_REQUEST).encode()
        handler = {
            Opcode.CONNECT: self._on_connect,
            Opcode.DISCONNECT: self._on_disconnect,
            Opcode.PUT: self._on_put,
            Opcode.PUT_FINAL: self._on_put,
            Opcode.GET: self._on_get,
            Opcode.GET_FINAL: self._on_get,
        }.get(packet.code)
        if handler is None:
            return ObexPacket(ResponseCode.BAD_REQUEST).encode()
        return handler(packet).encode()

    # -- handlers -----------------------------------------------------------------

    def _on_connect(self, packet: ObexPacket) -> ObexPacket:
        if packet.connect_extras is None:
            return ObexPacket(ResponseCode.BAD_REQUEST)
        self.connected = True
        return ObexPacket(
            ResponseCode.SUCCESS,
            connect_extras=(OBEX_VERSION, 0x00, self.max_packet),
        )

    def _on_disconnect(self, _packet: ObexPacket) -> ObexPacket:
        if not self.connected:
            return ObexPacket(ResponseCode.FORBIDDEN)
        self.connected = False
        return ObexPacket(ResponseCode.SUCCESS)

    def _on_put(self, packet: ObexPacket) -> ObexPacket:
        if not self.connected:
            return ObexPacket(ResponseCode.FORBIDDEN)
        name = packet.header(HeaderId.NAME)
        if not name:
            return ObexPacket(ResponseCode.BAD_REQUEST)
        body = packet.header(HeaderId.END_OF_BODY)
        if body is None:
            body = packet.header(HeaderId.BODY)
        if body is None:
            return ObexPacket(ResponseCode.LENGTH_REQUIRED)
        self.inbox[str(name)] = bytes(body)
        return ObexPacket(ResponseCode.SUCCESS)

    def _on_get(self, packet: ObexPacket) -> ObexPacket:
        if not self.connected:
            return ObexPacket(ResponseCode.FORBIDDEN)
        name = packet.header(HeaderId.NAME)
        if not name or str(name) not in self.inbox:
            return ObexPacket(ResponseCode.NOT_FOUND)
        body = self.inbox[str(name)]
        return ObexPacket(
            ResponseCode.SUCCESS,
            (
                ObexHeader(HeaderId.LENGTH, len(body)),
                ObexHeader(HeaderId.END_OF_BODY, body),
            ),
        )
