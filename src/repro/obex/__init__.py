"""OBEX substrate: the object-exchange top of the Fig. 1 stack."""

from repro.obex.constants import HeaderId, Opcode, ResponseCode
from repro.obex.packets import (
    ObexHeader,
    ObexPacket,
    connect_request,
    disconnect_request,
    get_request,
    put_request,
)
from repro.obex.server import ObexServer

__all__ = [
    "HeaderId",
    "ObexHeader",
    "ObexPacket",
    "ObexServer",
    "Opcode",
    "ResponseCode",
    "connect_request",
    "disconnect_request",
    "get_request",
    "put_request",
]
