"""AFL-style energy scheduling over the state plan.

The :class:`EnergyScheduler` is an exploration strategy (registry name
``coverage_guided``) that feeds the per-state visit counts the fuzzer
already records back into mutation scheduling:

* **explore** — while any plan state is still unvisited, every state
  gets a minimal mutation budget (``explore_budget`` packets per
  command). Routing dominates, so the campaign touches the whole state
  machine in a fraction of the packets a fixed-budget sweep spends;
* **exploit** — once the visit map is complete, each state's budget is
  scaled by how rare it is: ``base × mean(visits) / visits(state)``,
  clamped to ``[1, base × max_energy]``. Rare states get up to
  ``max_energy`` times the base budget, over-visited states are starved
  — the classic AFL energy assignment, with plan states playing the
  role of queue entries.

Cross-campaign seed sharing enters through *prior_visits*: a visit
prior distilled from a shared :class:`~repro.corpus.store.CorpusStore`
(see :func:`prior_from_corpus`). A campaign seeded with a corpus that
already covers the whole machine skips straight to exploit mode and
concentrates on the states the fleet has historically starved.

Determinism: the schedule is a pure function of the prior, the base
plan and the visit counts, so campaigns remain byte-reproducible given
a seed. The scheduler keeps a reference to the live visit mapping the
fuzzer hands :meth:`plan` so per-state budgets track visits *within*
a sweep as well — still deterministic, since visit accounting itself
is.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.l2cap.states import ChannelState


def _state_name(state) -> str:
    """Coverage-token name of a plan state (any target's enum, or str)."""
    return state.value if hasattr(state, "value") else str(state)


def _normalise_prior(
    prior_visits: Mapping[ChannelState, int] | Mapping[str, int] | None,
) -> dict[str, int]:
    """Key the prior by state *name* so it is protocol-agnostic.

    Corpus tokens are plain strings; campaigns hand the scheduler enum
    states. Bridging on the name means one prior serves every fuzz
    target (state names are unique per protocol by construction).
    """
    prior: dict[str, int] = {}
    for key, count in (prior_visits or {}).items():
        name = _state_name(key)
        prior[name] = prior.get(name, 0) + int(count)
    return prior


class EnergyScheduler:
    """Coverage-feedback exploration strategy.

    :param prior_visits: cross-campaign visit prior, keyed by state (or
        state name); empty means a cold start.
    :param explore_budget: packets per command while the visit map is
        incomplete.
    :param max_energy: upper clamp on the exploit-phase boost factor.
    """

    name = "coverage_guided"

    def __init__(
        self,
        prior_visits: Mapping[ChannelState, int] | Mapping[str, int] | None = None,
        explore_budget: int = 1,
        max_energy: int = 4,
    ) -> None:
        if explore_budget < 1:
            raise ValueError("explore_budget must be >= 1")
        if max_energy < 1:
            raise ValueError("max_energy must be >= 1")
        self.prior_visits = _normalise_prior(prior_visits)
        self.explore_budget = explore_budget
        self.max_energy = max_energy
        self._plan: tuple[ChannelState, ...] = ()
        self._live: Mapping[ChannelState, int] = {}

    # -- ExplorationStrategy protocol ---------------------------------------------

    def plan(
        self,
        base_plan: Sequence[ChannelState],
        visits: Mapping[ChannelState, int],
    ) -> tuple[ChannelState, ...]:
        """Least-visited states first, counting the corpus prior."""
        self._plan = tuple(base_plan)
        self._live = visits
        order = {state: index for index, state in enumerate(base_plan)}
        return tuple(
            sorted(
                base_plan,
                key=lambda state: (self._merged(state, visits), order[state]),
            )
        )

    def packets_per_command(self, state: ChannelState, base: int) -> int:
        """Energy for *state*: explore minimally, then exploit rarity."""
        if not self._plan:
            return base
        counts = {s: self._merged(s, self._live) for s in self._plan}
        if min(counts.values()) == 0:
            return self.explore_budget
        mean = sum(counts.values()) / len(counts)
        visits = max(1, counts.get(state, 1))
        energy = int(round(base * mean / visits))
        return max(1, min(base * self.max_energy, energy))

    # -- internals ----------------------------------------------------------------

    def _merged(
        self, state: ChannelState, visits: Mapping[ChannelState, int]
    ) -> int:
        return self.prior_visits.get(_state_name(state), 0) + visits.get(state, 0)


def prior_from_corpus(store) -> dict[str, int]:
    """Distil a visit prior from a shared corpus store.

    The prior is the per-state entry frequency — how often the fleet's
    stored sequences exercise each state — keyed by state name so it
    survives pickling into worker processes.
    """
    return store.state_frequencies()
