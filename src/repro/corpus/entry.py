"""Corpus entries: content-addressed packet sequences + coverage keys.

A corpus entry is one fuzzer→target packet sequence that unlocked new
state or transition coverage when it was recorded, stored byte-exactly
as raw-frame hex (see :func:`repro.analysis.traceio.packets_to_hex`).
Entries are content-addressed: the entry ID is a SHA-256 over a
*canonical* JSON rendering of the replay-relevant content (packets,
target, armed flag), so

* the same sequence recorded twice — by two workers, or in two separate
  fleet runs — lands on the same ID and deduplicates for free, and
* the ID survives any JSON round-trip, whatever key order or whitespace
  the serialiser picked (the hypothesis property the tests pin down).

Coverage is carried as plain string tokens: a state name for a
state-plan visit (``"OPEN"``) and ``"A>B"`` for a traversed transition.
``unlocked`` is what *this* entry added when it was recorded; ``covered``
is everything the sequence demonstrably exercises (its own prefix
coverage), which is what ``cmin``-style minimisation selects over.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections.abc import Iterable

from repro.analysis.traceio import packets_from_hex, packets_to_hex
from repro.l2cap.packets import L2capPacket


def transition_token(source: str, destination: str) -> str:
    """Coverage token of one state-plan transition."""
    return f"{source}>{destination}"


def content_id(
    packets: Iterable[str], device_id: str, armed: bool, target: str = "l2cap"
) -> str:
    """Content-hash ID over the replay-relevant fields.

    The payload is canonical JSON — sorted keys, no whitespace — so the
    ID depends only on the content, never on how a particular dump
    happened to order or format its keys. The fuzz-target name is part
    of the content: the same wire bytes recorded by two protocol
    campaigns are two different replay recipes (each needs its own
    device preparation), so they must never collide on one ID.
    """
    payload = json.dumps(
        {
            "armed": bool(armed),
            "device_id": device_id,
            "packets": list(packets),
            "target": target,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


@dataclasses.dataclass(frozen=True)
class CorpusEntry:
    """One interesting packet sequence.

    :param packets: fuzzer→target raw frames, hex-encoded, send order.
    :param unlocked: coverage tokens this sequence newly unlocked when
        it was recorded.
    :param covered: every coverage token the sequence exercises.
    :param device_id: testbed profile the sequence was recorded against.
    :param strategy: exploration strategy of the recording campaign.
    :param seed: seed of the recording campaign.
    :param armed: whether the target's injected bugs were armed.
    :param target: fuzz-target (protocol) registry name of the
        recording campaign; part of the content ID.
    """

    packets: tuple[str, ...]
    unlocked: tuple[str, ...]
    covered: tuple[str, ...]
    device_id: str
    strategy: str
    seed: int
    armed: bool
    target: str = "l2cap"

    @property
    def entry_id(self) -> str:
        """The content-hash ID (stable across serialisation)."""
        return content_id(self.packets, self.device_id, self.armed, self.target)

    @property
    def packet_count(self) -> int:
        """Length of the sequence (the cmin minimisation cost)."""
        return len(self.packets)

    def decode_packets(self) -> list[L2capPacket]:
        """Materialise the sequence as packet objects, for replay."""
        return packets_from_hex(self.packets)


def entry_from_packets(
    packets: Iterable[L2capPacket],
    unlocked: Iterable[str],
    covered: Iterable[str],
    device_id: str,
    strategy: str,
    seed: int,
    armed: bool,
    target: str = "l2cap",
) -> CorpusEntry:
    """Build an entry from live packet objects."""
    return CorpusEntry(
        packets=tuple(packets_to_hex(packets)),
        unlocked=tuple(sorted(set(unlocked))),
        covered=tuple(sorted(set(covered))),
        device_id=device_id,
        strategy=strategy,
        seed=seed,
        armed=armed,
        target=target,
    )


def entry_to_dict(entry: CorpusEntry) -> dict:
    """Render an entry as a JSON-ready dict (one JSONL line)."""
    return {
        "id": entry.entry_id,
        "packets": list(entry.packets),
        "unlocked": list(entry.unlocked),
        "covered": list(entry.covered),
        "device_id": entry.device_id,
        "strategy": entry.strategy,
        "seed": entry.seed,
        "armed": entry.armed,
        "target": entry.target,
    }


def dict_to_entry(record: dict) -> CorpusEntry:
    """Rebuild an entry from its dict form.

    :raises KeyError: on missing fields.
    :raises ValueError: when a stored ``id`` disagrees with the
        recomputed content hash (corrupted or hand-edited entry).
    """
    entry = CorpusEntry(
        packets=tuple(record["packets"]),
        unlocked=tuple(record["unlocked"]),
        covered=tuple(record["covered"]),
        device_id=record["device_id"],
        strategy=record["strategy"],
        seed=int(record["seed"]),
        armed=bool(record["armed"]),
        target=record.get("target", "l2cap"),
    )
    stored = record.get("id")
    if stored is not None and stored != entry.entry_id:
        raise ValueError(
            f"corpus entry id mismatch: stored {stored}, content {entry.entry_id}"
        )
    return entry
