"""The persistent finding database: crash buckets that survive runs.

Findings are bucketed by :func:`repro.core.detection.finding_key` over
``(vendor, vulnerability class, minimised-trigger hash)`` — the same key
the fleet merge deduplicates with, except that here the trigger is the
content hash of the *minimised* reproducer rather than a human-readable
rendering, so cosmetic differences between campaigns (identifiers,
garbage-tail noise that minimisation strips) collapse into one bucket.

Storage is delegated to the corpus directory's pluggable backend (see
:mod:`repro.corpus.backend`): one JSON file per bucket under
``findings/`` on the file layout, one indexed row per bucket on SQLite.
Recording an already-known bucket increments its occurrence count —
that is the cross-run duplicate detection, and the count is **exact**
under concurrent workers on both backends (a per-bucket exclusive lock
around the file rewrite; a transactional ``UPDATE`` on SQLite).
:func:`repro.corpus.replay.replay_finding` re-fires stored reproducers
against a fresh target, which is the regression half: a bucket that no
longer reproduces (or reproduces differently) is flagged instead of
silently trusted.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.traceio import packets_from_hex, packets_to_hex
from repro.core.detection import Finding, finding_key
from repro.core.triage import minimize_trigger, profile_target_factory, replay
from repro.corpus.backend import CorpusBackend, open_backend
from repro.l2cap.packets import L2capPacket

FINDINGS_DIR = "findings"


def trigger_hash(packets: Sequence[L2capPacket]) -> str:
    """Bucketing hash of a minimised reproducer.

    Hashes the reproducer's *shape* — the command sequence — rather
    than its raw bytes: two campaigns that hit the same bug with
    different seeds minimise to the same command skeleton but different
    identifiers, CIDs and garbage, and must land in the same bucket.
    This is the crash-bucketing analogue of stack-hash dedup; distinct
    vulnerabilities on one stack minimise to distinct command shapes.
    """
    shape = ",".join(
        f"DATA_0x{packet.header_cid:04X}" if packet.is_data_frame
        else packet.command_name
        for packet in packets
    )
    return hashlib.sha256(shape.encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class FindingRecord:
    """One persistent crash bucket.

    :param vendor: vendor stack the trigger knocked over.
    :param vulnerability_class: "DoS" or "Crash" (Table VI labels).
    :param trigger: human-readable rendering of the trigger packet.
    :param trigger_hash: content hash of the minimised reproducer.
    :param device_id: profile the finding was first recorded against.
    :param state: state-plan entry under test at detection.
    :param error_message: canonical socket error observed.
    :param packets: the minimised reproducer, hex frames in send order.
    :param crash_id: vulnerability ID confirmed by replay, if any.
    :param sim_time: simulated first-detection time.
    :param occurrences: campaign findings collapsed into this bucket.
    :param target: fuzz-target (protocol) registry name of the campaign
        that recorded the finding; part of the dedup key and the replay
        recipe (the device must be prepared for the same protocol).
    """

    vendor: str
    vulnerability_class: str
    trigger: str
    trigger_hash: str
    device_id: str
    state: str
    error_message: str
    packets: tuple[str, ...]
    crash_id: str | None
    sim_time: float
    occurrences: int = 1
    target: str = "l2cap"

    @property
    def key(self) -> tuple[str, str, str, str]:
        """The shared dedup key (trigger slot carries the hash)."""
        return finding_key(
            self.vendor, self.vulnerability_class, self.trigger_hash, self.target
        )

    @property
    def bucket_id(self) -> str:
        """Filesystem-safe bucket name derived from :attr:`key`."""
        payload = json.dumps(list(self.key), separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]

    def decode_packets(self) -> list[L2capPacket]:
        """Materialise the reproducer for replay."""
        return packets_from_hex(self.packets)


def record_to_dict(record: FindingRecord) -> dict:
    """Render a record as a JSON-ready dict."""
    return {
        "vendor": record.vendor,
        "class": record.vulnerability_class,
        "trigger": record.trigger,
        "trigger_hash": record.trigger_hash,
        "device_id": record.device_id,
        "state": record.state,
        "error": record.error_message,
        "packets": list(record.packets),
        "crash_id": record.crash_id,
        "sim_time": round(record.sim_time, 6),
        "occurrences": record.occurrences,
        "target": record.target,
    }


def dict_to_record(data: dict) -> FindingRecord:
    """Rebuild a record from its dict form."""
    return FindingRecord(
        vendor=data["vendor"],
        vulnerability_class=data["class"],
        trigger=data["trigger"],
        trigger_hash=data["trigger_hash"],
        device_id=data["device_id"],
        state=data["state"],
        error_message=data["error"],
        packets=tuple(data["packets"]),
        crash_id=data.get("crash_id"),
        sim_time=float(data["sim_time"]),
        occurrences=int(data.get("occurrences", 1)),
        target=data.get("target", "l2cap"),
    )


class FindingDatabase:
    """Finding-side facade over a corpus directory's storage backend.

    :param root: the corpus directory.
    :param backend: ``None`` autodetects from the directory layout; a
        registry name forces one; a backend instance is shared as-is
        (see :class:`~repro.corpus.store.CorpusStore`).
    """

    def __init__(self, root, backend: str | CorpusBackend | None = None) -> None:
        self.root = Path(root)
        self.backend = open_backend(self.root, backend)

    @property
    def findings_dir(self) -> Path:
        """File-layout findings directory (file backend only)."""
        return self.root / FINDINGS_DIR

    def record(self, record: FindingRecord) -> str:
        """Store *record*; returns ``"new"`` or ``"duplicate"``.

        A duplicate (same bucket key, possibly from an earlier run)
        keeps the first-seen record and bumps its occurrence count —
        that is the cross-run deduplication. The bump is transactional
        on both backends, so occurrence counts stay exact under
        arbitrarily parallel ingestion.
        """
        return self.backend.record_finding(record)

    def records(self) -> list[FindingRecord]:
        """Every bucket, sorted by bucket ID (deterministic order)."""
        return self.backend.finding_records()

    def query(
        self,
        target: str | None = None,
        vendor: str | None = None,
        vulnerability_class: str | None = None,
        state: str | None = None,
    ) -> list[FindingRecord]:
        """Buckets matching every given filter, sorted by bucket ID.

        Served by the ``(target, vendor, class, state)`` index on the
        SQLite backend; a filtered scan on the file layout.
        """
        return self.backend.query_findings(
            target=target,
            vendor=vendor,
            vulnerability_class=vulnerability_class,
            state=state,
        )

    def __len__(self) -> int:
        return self.backend.finding_count()

    def garbage_dictionary(self) -> tuple[bytes, ...]:
        """Known-crashing garbage tails, for cross-campaign splicing.

        Collects the garbage tail of every stored reproducer's trigger
        packet (deduplicated, sorted — deterministic), which the
        mutator can splice into fresh campaigns against other vendors.
        """
        return self.backend.garbage_dictionary()


def record_from_campaign(
    database: FindingDatabase,
    finding: Finding,
    profile,
    packets: Sequence[L2capPacket],
    minimize: bool = True,
) -> str:
    """Minimise a campaign finding and store it in *database*.

    *packets* is the fuzzer→target prefix up to the detection; it is
    delta-debugged down to the essential trigger (unless *minimize* is
    off), replayed once to confirm and to harvest the crash ID, and
    bucketed under the minimised-trigger hash. Reproducers always
    minimise to the *earliest* trigger in the prefix, so auto-reset
    campaigns that re-hit the same bug collapse into one bucket.

    Returns the database status, or ``"not-reproducible"`` when the
    prefix does not crash a fresh target (nothing is stored).
    """
    fuzz_target = getattr(finding, "target", "l2cap")
    factory = profile_target_factory(profile, armed=True, fuzz_target=fuzz_target)
    sequence = list(packets)
    if not replay(sequence, factory).crashed:
        return "not-reproducible"
    if minimize:
        sequence = minimize_trigger(sequence, factory)
    outcome = replay(sequence, factory)
    record = FindingRecord(
        vendor=profile.vendor,
        vulnerability_class=finding.vulnerability_class.value,
        trigger=finding.trigger,
        trigger_hash=trigger_hash(sequence),
        device_id=profile.device_id,
        state=finding.state,
        error_message=finding.error_message,
        packets=tuple(packets_to_hex(sequence)),
        crash_id=outcome.crash_id,
        sim_time=finding.sim_time,
        target=fuzz_target,
    )
    return database.record(record)
