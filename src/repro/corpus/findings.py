"""The persistent finding database: crash buckets that survive runs.

Findings are bucketed by :func:`repro.core.detection.finding_key` over
``(vendor, vulnerability class, minimised-trigger hash)`` — the same key
the fleet merge deduplicates with, except that here the trigger is the
content hash of the *minimised* reproducer rather than a human-readable
rendering, so cosmetic differences between campaigns (identifiers,
garbage-tail noise that minimisation strips) collapse into one bucket.

Each bucket is one JSON file under ``findings/`` in the corpus
directory, carrying the minimised packet sequence that reproduces the
crash. Recording an already-known bucket increments its occurrence
count — that is the cross-run duplicate detection — and
:func:`repro.corpus.replay.replay_finding` re-fires stored reproducers
against a fresh target, which is the regression half: a bucket that no
longer reproduces (or reproduces differently) is flagged instead of
silently trusted.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.traceio import packets_from_hex, packets_to_hex
from repro.core.detection import Finding, finding_key
from repro.core.triage import minimize_trigger, profile_target_factory, replay
from repro.corpus.store import _atomic_write
from repro.l2cap.packets import L2capPacket

FINDINGS_DIR = "findings"


def trigger_hash(packets: Sequence[L2capPacket]) -> str:
    """Bucketing hash of a minimised reproducer.

    Hashes the reproducer's *shape* — the command sequence — rather
    than its raw bytes: two campaigns that hit the same bug with
    different seeds minimise to the same command skeleton but different
    identifiers, CIDs and garbage, and must land in the same bucket.
    This is the crash-bucketing analogue of stack-hash dedup; distinct
    vulnerabilities on one stack minimise to distinct command shapes.
    """
    shape = ",".join(
        f"DATA_0x{packet.header_cid:04X}" if packet.is_data_frame
        else packet.command_name
        for packet in packets
    )
    return hashlib.sha256(shape.encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class FindingRecord:
    """One persistent crash bucket.

    :param vendor: vendor stack the trigger knocked over.
    :param vulnerability_class: "DoS" or "Crash" (Table VI labels).
    :param trigger: human-readable rendering of the trigger packet.
    :param trigger_hash: content hash of the minimised reproducer.
    :param device_id: profile the finding was first recorded against.
    :param state: state-plan entry under test at detection.
    :param error_message: canonical socket error observed.
    :param packets: the minimised reproducer, hex frames in send order.
    :param crash_id: vulnerability ID confirmed by replay, if any.
    :param sim_time: simulated first-detection time.
    :param occurrences: campaign findings collapsed into this bucket.
    :param target: fuzz-target (protocol) registry name of the campaign
        that recorded the finding; part of the dedup key and the replay
        recipe (the device must be prepared for the same protocol).
    """

    vendor: str
    vulnerability_class: str
    trigger: str
    trigger_hash: str
    device_id: str
    state: str
    error_message: str
    packets: tuple[str, ...]
    crash_id: str | None
    sim_time: float
    occurrences: int = 1
    target: str = "l2cap"

    @property
    def key(self) -> tuple[str, str, str, str]:
        """The shared dedup key (trigger slot carries the hash)."""
        return finding_key(
            self.vendor, self.vulnerability_class, self.trigger_hash, self.target
        )

    @property
    def bucket_id(self) -> str:
        """Filesystem-safe bucket name derived from :attr:`key`."""
        payload = json.dumps(list(self.key), separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]

    def decode_packets(self) -> list[L2capPacket]:
        """Materialise the reproducer for replay."""
        return packets_from_hex(self.packets)


def record_to_dict(record: FindingRecord) -> dict:
    """Render a record as a JSON-ready dict."""
    return {
        "vendor": record.vendor,
        "class": record.vulnerability_class,
        "trigger": record.trigger,
        "trigger_hash": record.trigger_hash,
        "device_id": record.device_id,
        "state": record.state,
        "error": record.error_message,
        "packets": list(record.packets),
        "crash_id": record.crash_id,
        "sim_time": round(record.sim_time, 6),
        "occurrences": record.occurrences,
        "target": record.target,
    }


def dict_to_record(data: dict) -> FindingRecord:
    """Rebuild a record from its dict form."""
    return FindingRecord(
        vendor=data["vendor"],
        vulnerability_class=data["class"],
        trigger=data["trigger"],
        trigger_hash=data["trigger_hash"],
        device_id=data["device_id"],
        state=data["state"],
        error_message=data["error"],
        packets=tuple(data["packets"]),
        crash_id=data.get("crash_id"),
        sim_time=float(data["sim_time"]),
        occurrences=int(data.get("occurrences", 1)),
        target=data.get("target", "l2cap"),
    )


class FindingDatabase:
    """Bucketed, persistent crash database inside a corpus directory.

    :param root: the corpus directory (buckets live in ``findings/``).
    """

    def __init__(self, root) -> None:
        self.root = Path(root)

    @property
    def findings_dir(self) -> Path:
        return self.root / FINDINGS_DIR

    def _bucket_path(self, record: FindingRecord) -> Path:
        return self.findings_dir / f"{record.bucket_id}.json"

    def record(self, record: FindingRecord) -> str:
        """Store *record*; returns ``"new"`` or ``"duplicate"``.

        A duplicate (same bucket key, possibly from an earlier run)
        keeps the first-seen record and bumps its occurrence count —
        that is the cross-run deduplication. The read-modify-write is
        not transactional, so occurrence counts may undercount under
        heavily parallel ingestion; bucket membership never does.
        """
        self.findings_dir.mkdir(parents=True, exist_ok=True)
        path = self._bucket_path(record)
        if path.exists():
            seen = dict_to_record(json.loads(path.read_text(encoding="utf-8")))
            updated = dataclasses.replace(
                seen, occurrences=seen.occurrences + record.occurrences
            )
            _atomic_write(path, json.dumps(record_to_dict(updated), sort_keys=True) + "\n")
            return "duplicate"
        _atomic_write(path, json.dumps(record_to_dict(record), sort_keys=True) + "\n")
        return "new"

    def records(self) -> list[FindingRecord]:
        """Every bucket, sorted by bucket ID (deterministic order)."""
        if not self.findings_dir.is_dir():
            return []
        return [
            dict_to_record(json.loads(path.read_text(encoding="utf-8")))
            for path in sorted(self.findings_dir.glob("*.json"))
        ]

    def __len__(self) -> int:
        if not self.findings_dir.is_dir():
            return 0
        return sum(1 for _ in self.findings_dir.glob("*.json"))

    def garbage_dictionary(self) -> tuple[bytes, ...]:
        """Known-crashing garbage tails, for cross-campaign splicing.

        Collects the garbage tail of every stored reproducer's trigger
        packet (deduplicated, sorted — deterministic), which the
        mutator can splice into fresh campaigns against other vendors.
        """
        tails: set[bytes] = set()
        for record in self.records():
            for packet in record.decode_packets():
                if packet.garbage:
                    tails.add(bytes(packet.garbage))
        return tuple(sorted(tails))


def record_from_campaign(
    database: FindingDatabase,
    finding: Finding,
    profile,
    packets: Sequence[L2capPacket],
    minimize: bool = True,
) -> str:
    """Minimise a campaign finding and store it in *database*.

    *packets* is the fuzzer→target prefix up to the detection; it is
    delta-debugged down to the essential trigger (unless *minimize* is
    off), replayed once to confirm and to harvest the crash ID, and
    bucketed under the minimised-trigger hash. Reproducers always
    minimise to the *earliest* trigger in the prefix, so auto-reset
    campaigns that re-hit the same bug collapse into one bucket.

    Returns the database status, or ``"not-reproducible"`` when the
    prefix does not crash a fresh target (nothing is stored).
    """
    fuzz_target = getattr(finding, "target", "l2cap")
    factory = profile_target_factory(profile, armed=True, fuzz_target=fuzz_target)
    sequence = list(packets)
    if not replay(sequence, factory).crashed:
        return "not-reproducible"
    if minimize:
        sequence = minimize_trigger(sequence, factory)
    outcome = replay(sequence, factory)
    record = FindingRecord(
        vendor=profile.vendor,
        vulnerability_class=finding.vulnerability_class.value,
        trigger=finding.trigger,
        trigger_hash=trigger_hash(sequence),
        device_id=profile.device_id,
        state=finding.state,
        error_message=finding.error_message,
        packets=tuple(packets_to_hex(sequence)),
        crash_id=outcome.crash_id,
        sim_time=finding.sim_time,
        target=fuzz_target,
    )
    return database.record(record)
