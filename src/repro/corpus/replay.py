"""Replay stored corpus artefacts against fresh targets.

Two workloads:

* **coverage replay** — re-send a corpus entry's packets through a full
  :class:`~repro.core.packet_queue.PacketQueue` (sniffer attached) and
  re-derive the wire-inferred state coverage, verifying that the stored
  sequence still drives a fresh target somewhere interesting;
* **regression replay** — re-fire a finding bucket's minimised
  reproducer via :func:`repro.core.triage.replay` and check that the
  crash still reproduces with the same error and crash ID. A bucket
  that stops reproducing (or reproduces differently) is a regression
  signal, not a silent pass.

Everything is deterministic: virtual targets are rebuilt from their
profiles with zero latency, so two replays of the same artefact give
identical outcomes.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.state_coverage import state_coverage
from repro.core.packet_queue import PacketQueue
from repro.core.triage import ReplayOutcome, profile_target_factory, replay
from repro.corpus.entry import CorpusEntry
from repro.corpus.findings import FindingRecord
from repro.errors import TransportError
from repro.hci.transport import VirtualLink


@dataclasses.dataclass(frozen=True)
class EntryReplayOutcome:
    """Result of re-sending one corpus entry."""

    entry_id: str
    packets_replayed: int
    crashed: bool
    error_message: str | None
    covered_states: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class FindingReplayOutcome:
    """Result of re-firing one finding bucket's reproducer."""

    bucket_id: str
    outcome: ReplayOutcome
    reproduced: bool
    error_matches: bool
    crash_id_matches: bool

    @property
    def regression(self) -> bool:
        """The stored crash no longer reproduces the stored way."""
        return not (self.reproduced and self.error_matches and self.crash_id_matches)


def replay_entry(entry: CorpusEntry, profiles_by_id: dict) -> EntryReplayOutcome:
    """Re-send *entry* against a fresh target and re-derive coverage.

    :raises KeyError: when the entry's profile is unknown.
    """
    profile = profiles_by_id[entry.device_id]
    device = profile.build(armed=entry.armed, zero_latency=True)
    if entry.target != "l2cap":
        from repro.targets import make_target

        make_target(entry.target).prepare_device(device, armed=entry.armed)
    link = VirtualLink(clock=device.clock)
    device.attach_to(link)
    queue = PacketQueue(link)
    crashed = False
    error_message = None
    replayed = 0
    for packet in entry.decode_packets():
        try:
            queue.send(packet)
            queue.drain()
        except TransportError as error:
            crashed = True
            error_message = error.message
            replayed += 1
            break
        replayed += 1
    covered = state_coverage(queue.sniffer)
    return EntryReplayOutcome(
        entry_id=entry.entry_id,
        packets_replayed=replayed,
        crashed=crashed,
        error_message=error_message,
        covered_states=tuple(sorted(state.value for state in covered)),
    )


def replay_finding(
    record: FindingRecord, profiles_by_id: dict
) -> FindingReplayOutcome:
    """Re-fire *record*'s reproducer; flag any behavioural drift.

    :raises KeyError: when the record's profile is unknown.
    """
    profile = profiles_by_id[record.device_id]
    factory = profile_target_factory(
        profile, armed=True, fuzz_target=record.target
    )
    outcome = replay(record.decode_packets(), factory)
    return FindingReplayOutcome(
        bucket_id=record.bucket_id,
        outcome=outcome,
        reproduced=outcome.crashed,
        error_matches=outcome.error_message == record.error_message,
        crash_id_matches=outcome.crash_id == record.crash_id,
    )
