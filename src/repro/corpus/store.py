"""The persistent, shareable corpus store (backend facade).

:class:`CorpusStore` is the entry-side view over a pluggable
:class:`~repro.corpus.backend.CorpusBackend` — the file layout by
default, SQLite (WAL) when the directory holds a ``corpus.sqlite3``
database (see :func:`~repro.corpus.backend.open_backend` for the
autodetection rules and ``repro corpus migrate`` for conversion). Every
consumer — campaign write-back, the fleet runtime's batched shards, the
scheduler prior, replay, the CLI — talks to this facade and works
against whichever backend owns the directory.

:meth:`CorpusStore.minimize` is the ``afl-cmin`` equivalent: for every
coverage token pick the cheapest entry (fewest packets, then lowest ID)
that exercises it, and the canonical corpus is the union of winners —
a minimal-ish seed set that still reaches everything the fleet reached.
:meth:`CorpusStore.seed_entries` is the safe way to consume it: the
canonical set when it is still fresh, the live entry set once new
entries have been recorded past the last ``minimize``.
"""

from __future__ import annotations

from pathlib import Path

from repro.corpus.backend import (
    CorpusBackend,
    CorpusStats,
    _atomic_write,
    open_backend,
)
from repro.corpus.entry import (
    CorpusEntry,
    entry_from_packets,
    transition_token,
)

ENTRIES_DIR = "entries"
CANONICAL_FILE = "corpus.jsonl"


def state_frequencies_of(entries: list[CorpusEntry]) -> dict[str, int]:
    """Per-state coverage counts over an entry list (transitions —
    tokens carrying ``>`` — never count towards the state prior)."""
    counts: dict[str, int] = {}
    for entry in entries:
        for token in entry.covered:
            if ">" not in token:
                counts[token] = counts.get(token, 0) + 1
    return counts


class CorpusStore:
    """Entry-side facade over a corpus directory's storage backend.

    :param root: corpus directory (created lazily on first write).
    :param backend: ``None`` autodetects from the directory layout; a
        registry name ("file"/"sqlite") forces one; a
        :class:`~repro.corpus.backend.CorpusBackend` instance is used
        directly (shared-handle batching).
    """

    def __init__(self, root, backend: str | CorpusBackend | None = None) -> None:
        self.root = Path(root)
        self.backend = open_backend(self.root, backend)

    # -- paths --------------------------------------------------------------------

    @property
    def entries_dir(self) -> Path:
        """File-layout entries directory (file backend only)."""
        return self.root / ENTRIES_DIR

    @property
    def canonical_path(self) -> Path:
        """File-layout canonical corpus path (file backend only)."""
        return self.root / CANONICAL_FILE

    def exists(self) -> bool:
        """Whether anything has ever been written to this corpus."""
        return self.backend.exists()

    # -- writing ------------------------------------------------------------------

    def add(self, entry: CorpusEntry) -> bool:
        """Persist *entry*; returns False when it was already stored.

        Content-addressed and atomic on either backend: concurrent
        adders of the same sequence converge on one stored row/file.
        """
        return self.backend.add_entry(entry)

    # -- reading ------------------------------------------------------------------

    def entries(self) -> list[CorpusEntry]:
        """Every stored entry, sorted by ID (deterministic order)."""
        return self.backend.entries()

    def __len__(self) -> int:
        return self.backend.entry_count()

    def coverage(self) -> frozenset[str]:
        """Union of every entry's coverage tokens."""
        return self.backend.coverage()

    def state_frequencies(self) -> dict[str, int]:
        """Per-state entry counts — the cross-campaign visit prior.

        How many stored entries exercise each state token; rare states
        score low, which is exactly what the
        :class:`~repro.corpus.scheduler.EnergyScheduler` boosts. An
        indexed ``GROUP BY`` on the SQLite backend.
        """
        return self.backend.state_frequencies()

    def stats(self) -> CorpusStats:
        """One-shot aggregate view (single pass / single query)."""
        return self.backend.stats()

    # -- minimisation -------------------------------------------------------------

    def minimize(self, write: bool = True) -> list[CorpusEntry]:
        """``cmin``: reduce the corpus to a canonical covering seed set.

        For every coverage token keep the cheapest entry covering it
        (fewest packets, ties by entry ID); the canonical corpus is the
        deduplicated union, sorted by ID. When *write* is set the result
        is persisted (``corpus.jsonl`` plus a freshness marker on the
        file backend; the ``canonical`` table on SQLite, where the scan
        is incremental over entries added since the previous cmin).
        """
        return self.backend.minimize(write=write)

    def canonical_entries(self) -> list[CorpusEntry]:
        """The minimised corpus, if one has been written.

        May be stale — check :meth:`canonical_is_stale`, or use
        :meth:`seed_entries` which does.
        """
        return self.backend.canonical_entries()

    def canonical_is_stale(self) -> bool:
        """True when entries were added after the last ``minimize``."""
        return self.backend.canonical_is_stale()

    def seed_entries(self) -> list[CorpusEntry]:
        """The best seed set available right now.

        The canonical (minimised) corpus while it still reflects the
        live entry set; the live entry set itself as soon as the
        canonical one is stale or absent — guided seeding must never
        silently run on a snapshot that predates newer coverage.
        """
        if not self.canonical_is_stale():
            canonical = self.canonical_entries()
            if canonical:
                return canonical
        return self.entries()

    def export_jsonl(self, path) -> int:
        """Write the whole corpus (all entries) as one JSONL document.

        Published atomically: a crash mid-export can never leave a
        truncated document at *path*.
        """
        from repro.corpus.file_backend import entry_line

        entries = self.entries()
        _atomic_write(
            Path(path), "".join(entry_line(entry) for entry in entries)
        )
        return len(entries)


def record_campaign(root, profile, fuzzer, report, armed: bool = True) -> dict:
    """Write one finished campaign back into the shared corpus.

    Persists every coverage-unlock prefix the fuzzer logged as a corpus
    entry, and every finding into the finding database (minimised to its
    essential trigger). Returns a small summary dict
    ``{"entries_added", "findings_new", "findings_duplicate"}``.
    """
    from repro.corpus.findings import FindingDatabase

    backend = open_backend(root)
    return _record_into(
        CorpusStore(root, backend=backend),
        FindingDatabase(root, backend=backend),
        profile,
        fuzzer,
        report,
        armed,
    )


def record_campaigns(root, campaigns, armed: bool = True) -> list[dict]:
    """Batched write-back: many campaigns through one backend handle.

    *campaigns* is an iterable of ``(profile, fuzzer, report)`` triples.
    One backend is opened for the whole batch — a fleet worker records
    its entire shard this way instead of paying a handle per campaign.
    Writes stay safe under parallel workers on either backend (atomic
    content-addressed publishes on the file layout, WAL transactions on
    SQLite), so batches from concurrent shards interleave exactly as
    safely as individual campaigns always did. Returns one stats dict
    per campaign, in input order.
    """
    from repro.corpus.findings import FindingDatabase

    backend = open_backend(root)
    store = CorpusStore(root, backend=backend)
    database = FindingDatabase(root, backend=backend)
    return [
        _record_into(store, database, profile, fuzzer, report, armed)
        for profile, fuzzer, report in campaigns
    ]


def _detection_prefix(sent_entries, finding) -> list:
    """The fuzzer→target packets that led to *finding*, trigger last.

    Cut by the finding's recorded send index — the number of packets on
    the wire at detection — so packets transmitted *after* the
    detection but at the same simulated tick (the detector's liveness
    probes, auto-reset traffic) never leak into the stored reproducer.
    Findings recorded before send indices existed fall back to the old
    timestamp rule (every packet at or before the detection tick).
    """
    cut = getattr(finding, "sent_index", None)
    if cut is None:
        return [
            traced.packet
            for traced in sent_entries
            if traced.sim_time <= finding.sim_time
        ]
    return [traced.packet for traced in sent_entries[:cut]]


def _record_into(
    store: CorpusStore, database, profile, fuzzer, report, armed: bool
) -> dict:
    """One campaign's write-back through already-open handles."""
    from repro.corpus.findings import record_from_campaign

    target_name = getattr(getattr(fuzzer, "target", None), "name", "l2cap")
    sent_entries = fuzzer.sniffer.sent()
    cumulative: set[str] = set()
    added = 0
    for tokens, prefix_len in fuzzer.coverage_log:
        cumulative.update(tokens)
        if prefix_len == 0:
            # Coverage unlocked before anything was sent (the plan's
            # entry posture): nothing to replay, nothing worth storing.
            continue
        entry = entry_from_packets(
            packets=[traced.packet for traced in sent_entries[:prefix_len]],
            unlocked=tokens,
            covered=cumulative,
            device_id=profile.device_id,
            strategy=report.strategy,
            seed=fuzzer.config.seed,
            armed=armed,
            target=target_name,
        )
        if store.add(entry):
            added += 1

    statuses = {"new": 0, "duplicate": 0}
    for finding in report.findings:
        prefix = _detection_prefix(sent_entries, finding)
        status = record_from_campaign(database, finding, profile, prefix)
        if status in statuses:
            statuses[status] += 1
    return {
        "entries_added": added,
        "findings_new": statuses["new"],
        "findings_duplicate": statuses["duplicate"],
    }


__all__ = [
    "CorpusStore",
    "record_campaign",
    "record_campaigns",
    "state_frequencies_of",
    "transition_token",
]
