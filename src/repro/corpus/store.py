"""The persistent, shareable corpus store.

Layout of a corpus directory::

    corpus/
    ├── entries/<content-hash>.json   one JSONL-style line per entry
    ├── findings/<bucket>.json        persistent finding database
    └── corpus.jsonl                  canonical minimised corpus (cmin)

Entries are written write-once under their content-hash ID with an
atomic rename, which makes the store safe to share between fleet
workers (process or thread pools) without locking: two workers that
record the same sequence race to publish byte-identical files, and
whoever loses the race simply finds the entry already present. The same
property makes ingestion idempotent across repeated runs.

:func:`CorpusStore.minimize` is the ``afl-cmin`` equivalent: for every
coverage token pick the cheapest entry (fewest packets, then lowest ID)
that exercises it, and the canonical corpus is the union of winners —
a minimal-ish seed set that still reaches everything the fleet reached.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from repro.corpus.entry import (
    CorpusEntry,
    dict_to_entry,
    entry_from_packets,
    entry_to_dict,
    transition_token,
)

ENTRIES_DIR = "entries"
CANONICAL_FILE = "corpus.jsonl"


def _atomic_write(path: Path, text: str) -> None:
    """Publish *text* at *path* atomically (same-directory rename).

    The temp name carries both pid and thread id: fleet workers may be
    threads of one process, and two writers racing on one bucket must
    never share a temp file (the loser's rename would raise).
    """
    tmp = path.with_name(
        f".tmp-{os.getpid()}-{threading.get_ident()}-{path.name}"
    )
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def state_frequencies_of(entries: list[CorpusEntry]) -> dict[str, int]:
    """Per-state coverage counts over an entry list (transitions —
    tokens carrying ``>`` — never count towards the state prior)."""
    counts: dict[str, int] = {}
    for entry in entries:
        for token in entry.covered:
            if ">" not in token:
                counts[token] = counts.get(token, 0) + 1
    return counts


class CorpusStore:
    """Directory-backed corpus of interesting packet sequences.

    :param root: corpus directory (created lazily on first write).
    """

    def __init__(self, root) -> None:
        self.root = Path(root)

    # -- paths --------------------------------------------------------------------

    @property
    def entries_dir(self) -> Path:
        return self.root / ENTRIES_DIR

    @property
    def canonical_path(self) -> Path:
        return self.root / CANONICAL_FILE

    def exists(self) -> bool:
        """Whether anything has ever been written to this corpus."""
        return self.entries_dir.is_dir() or self.canonical_path.is_file()

    # -- writing ------------------------------------------------------------------

    def add(self, entry: CorpusEntry) -> bool:
        """Persist *entry*; returns False when it was already stored.

        Content-addressed and atomic: concurrent adders of the same
        sequence converge on one byte-identical file.
        """
        self.entries_dir.mkdir(parents=True, exist_ok=True)
        path = self.entries_dir / f"{entry.entry_id}.json"
        if path.exists():
            return False
        _atomic_write(path, json.dumps(entry_to_dict(entry), sort_keys=True) + "\n")
        return True

    # -- reading ------------------------------------------------------------------

    def entries(self) -> list[CorpusEntry]:
        """Every stored entry, sorted by ID (deterministic order)."""
        if not self.entries_dir.is_dir():
            return []
        entries = []
        for path in sorted(self.entries_dir.glob("*.json")):
            entries.append(dict_to_entry(json.loads(path.read_text(encoding="utf-8"))))
        return entries

    def __len__(self) -> int:
        if not self.entries_dir.is_dir():
            return 0
        return sum(1 for _ in self.entries_dir.glob("*.json"))

    def coverage(self) -> frozenset[str]:
        """Union of every entry's coverage tokens."""
        covered: set[str] = set()
        for entry in self.entries():
            covered.update(entry.covered)
        return frozenset(covered)

    def state_frequencies(self) -> dict[str, int]:
        """Per-state entry counts — the cross-campaign visit prior.

        How many stored entries exercise each state token; rare states
        score low, which is exactly what the
        :class:`~repro.corpus.scheduler.EnergyScheduler` boosts.
        """
        return state_frequencies_of(self.entries())

    # -- minimisation -------------------------------------------------------------

    def minimize(self, write: bool = True) -> list[CorpusEntry]:
        """``cmin``: reduce the corpus to a canonical covering seed set.

        For every coverage token keep the cheapest entry covering it
        (fewest packets, ties by entry ID); the canonical corpus is the
        deduplicated union, sorted by ID. When *write* is set the result
        is persisted to ``corpus.jsonl``.
        """
        best: dict[str, CorpusEntry] = {}
        for entry in self.entries():
            cost = (entry.packet_count, entry.entry_id)
            for token in entry.covered:
                seen = best.get(token)
                if seen is None or cost < (seen.packet_count, seen.entry_id):
                    best[token] = entry
        canonical = sorted(
            {entry.entry_id: entry for entry in best.values()}.values(),
            key=lambda entry: entry.entry_id,
        )
        if write:
            self.root.mkdir(parents=True, exist_ok=True)
            _atomic_write(
                self.canonical_path,
                "".join(
                    json.dumps(entry_to_dict(entry), sort_keys=True) + "\n"
                    for entry in canonical
                ),
            )
        return canonical

    def canonical_entries(self) -> list[CorpusEntry]:
        """The minimised corpus, if one has been written."""
        if not self.canonical_path.is_file():
            return []
        return [
            dict_to_entry(json.loads(line))
            for line in self.canonical_path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]

    def export_jsonl(self, path) -> int:
        """Write the whole corpus (all entries) as one JSONL document."""
        entries = self.entries()
        Path(path).write_text(
            "".join(
                json.dumps(entry_to_dict(entry), sort_keys=True) + "\n"
                for entry in entries
            ),
            encoding="utf-8",
        )
        return len(entries)


def record_campaign(root, profile, fuzzer, report, armed: bool = True) -> dict:
    """Write one finished campaign back into the shared corpus.

    Persists every coverage-unlock prefix the fuzzer logged as a corpus
    entry, and every finding into the finding database (minimised to its
    essential trigger). Returns a small summary dict
    ``{"entries_added", "findings_new", "findings_duplicate"}``.
    """
    from repro.corpus.findings import FindingDatabase

    return _record_into(
        CorpusStore(root), FindingDatabase(root), profile, fuzzer, report, armed
    )


def record_campaigns(root, campaigns, armed: bool = True) -> list[dict]:
    """Batched write-back: many campaigns through one pair of handles.

    *campaigns* is an iterable of ``(profile, fuzzer, report)`` triples.
    The store and finding database are opened once for the whole batch —
    a fleet worker records its entire shard this way instead of paying a
    handle per campaign. Entry files stay content-addressed and atomic,
    so batches from parallel workers interleave exactly as safely as
    individual campaigns always did. Returns one stats dict per
    campaign, in input order.
    """
    from repro.corpus.findings import FindingDatabase

    store = CorpusStore(root)
    database = FindingDatabase(root)
    return [
        _record_into(store, database, profile, fuzzer, report, armed)
        for profile, fuzzer, report in campaigns
    ]


def _record_into(
    store: CorpusStore, database, profile, fuzzer, report, armed: bool
) -> dict:
    """One campaign's write-back through already-open handles."""
    from repro.corpus.findings import record_from_campaign

    target_name = getattr(getattr(fuzzer, "target", None), "name", "l2cap")
    sent_entries = fuzzer.sniffer.sent()
    cumulative: set[str] = set()
    added = 0
    for tokens, prefix_len in fuzzer.coverage_log:
        cumulative.update(tokens)
        if prefix_len == 0:
            # Coverage unlocked before anything was sent (the plan's
            # entry posture): nothing to replay, nothing worth storing.
            continue
        entry = entry_from_packets(
            packets=[traced.packet for traced in sent_entries[:prefix_len]],
            unlocked=tokens,
            covered=cumulative,
            device_id=profile.device_id,
            strategy=report.strategy,
            seed=fuzzer.config.seed,
            armed=armed,
            target=target_name,
        )
        if store.add(entry):
            added += 1

    statuses = {"new": 0, "duplicate": 0}
    for finding in report.findings:
        prefix = [
            traced.packet
            for traced in sent_entries
            if traced.sim_time <= finding.sim_time
        ]
        status = record_from_campaign(database, finding, profile, prefix)
        if status in statuses:
            statuses[status] += 1
    return {
        "entries_added": added,
        "findings_new": statuses["new"],
        "findings_duplicate": statuses["duplicate"],
    }


__all__ = [
    "CorpusStore",
    "record_campaign",
    "record_campaigns",
    "transition_token",
]
