"""Pluggable corpus storage: the backend interface and its registry.

A corpus directory is served by exactly one :class:`CorpusBackend`,
which owns all four persistent collections:

* **entries** — content-addressed packet sequences (the seed corpus);
* **findings** — deduplicated crash buckets with occurrence counts;
* **canonical** — the ``cmin``-minimised covering seed set;
* **stats** — the aggregate queries (coverage, per-state frequencies,
  packet totals) every CLI/scheduler read path runs.

Two implementations ship:

* :class:`~repro.corpus.file_backend.FileCorpusBackend` — the original
  atomic-per-entry JSON layout (``entries/``, ``findings/``,
  ``corpus.jsonl``). Migration-free default; writes stay lock-free and
  content-addressed, finding-occurrence bumps take a per-bucket
  exclusive lock.
* :class:`~repro.corpus.sqlite_backend.SqliteCorpusBackend` — one WAL
  SQLite database (``corpus.sqlite3``) with indexed queries by
  (target, vendor, class, state), transactional O(1) occurrence bumps
  and incremental minimisation. Built for heavy parallel ingestion and
  millions-of-findings scale.

The backend for a directory is **autodetected from its layout** (a
``corpus.sqlite3`` file wins over the JSON layout), so every caller —
``record_campaigns``, the fleet runtime's batched write-back, the
scheduler prior, replay, the CLI — opens a corpus with
:func:`open_backend` and works against whichever format is on disk.
``repro corpus migrate`` converts a file corpus in place.

Both backends answer every query identically for the same operation
history — pinned by the backend-parity test suite.
"""

from __future__ import annotations

import abc
import dataclasses
import os
import re
import threading
from collections.abc import Iterable, Sequence
from pathlib import Path
from typing import TYPE_CHECKING

from repro.corpus.entry import CorpusEntry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.corpus.findings import FindingRecord

#: Registry names, in autodetection priority order.
BACKEND_NAMES = ("sqlite", "file")

#: Database file whose presence marks a directory as SQLite-backed.
SQLITE_FILE = "corpus.sqlite3"

#: Legal corpus namespace names: a path-safe single segment. Separators
#: and a leading dot are excluded by construction, so a namespace can
#: never escape its root or shadow the root's own layout files.
NAMESPACE_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def _atomic_write(path: Path, text: str) -> None:
    """Publish *text* at *path* atomically (same-directory rename).

    The temp name carries both pid and thread id: fleet workers may be
    threads of one process, and two writers racing on one bucket must
    never share a temp file (the loser's rename would raise).
    """
    tmp = path.with_name(
        f".tmp-{os.getpid()}-{threading.get_ident()}-{path.name}"
    )
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


@dataclasses.dataclass(frozen=True)
class CorpusStats:
    """One-shot aggregate view of a corpus (the CLI ``stats`` payload).

    Backends compute this in a single pass/query instead of having every
    caller re-read the whole entry set.
    """

    entry_count: int
    packet_total: int
    canonical_count: int
    canonical_stale: bool
    state_tokens: tuple[str, ...]
    transition_tokens: tuple[str, ...]
    state_frequencies: dict[str, int]
    finding_count: int
    occurrence_total: int


def cmin_update(
    winners: dict[str, tuple[int, str]], entries: Iterable[CorpusEntry]
) -> dict[str, CorpusEntry]:
    """Fold *entries* into a token → cheapest-witness winner map.

    *winners* maps coverage token → ``(packet_count, entry_id)`` of the
    cheapest entry seen so far; the fold is associative, which is what
    makes the SQLite backend's incremental minimisation (old winners +
    only-new entries) produce exactly the full-scan answer. Returns the
    entries (keyed by ID) that won or retained at least one token this
    round, for callers that need the objects.
    """
    touched: dict[str, CorpusEntry] = {}
    for entry in entries:
        cost = (entry.packet_count, entry.entry_id)
        for token in entry.covered:
            if token not in winners or cost < winners[token]:
                winners[token] = cost
                touched[entry.entry_id] = entry
    return touched


class CorpusBackend(abc.ABC):
    """Storage interface every corpus consumer programs against.

    All methods are safe to call on a corpus that does not exist yet
    (reads return empty, writes create the storage lazily), and all
    write methods are safe under concurrent workers — thread pools,
    process pools, or both at once.
    """

    #: Registry name ("file" or "sqlite").
    name: str = ""

    def __init__(self, root) -> None:
        self.root = Path(root)

    # -- entries ------------------------------------------------------------------

    @abc.abstractmethod
    def add_entry(self, entry: CorpusEntry) -> bool:
        """Persist *entry*; False when it was already stored."""

    @abc.abstractmethod
    def entries(self) -> list[CorpusEntry]:
        """Every stored entry, sorted by ID (deterministic order)."""

    @abc.abstractmethod
    def entry_count(self) -> int:
        """Number of stored entries."""

    @abc.abstractmethod
    def coverage(self) -> frozenset[str]:
        """Union of every entry's coverage tokens."""

    @abc.abstractmethod
    def state_frequencies(self) -> dict[str, int]:
        """Per-state entry counts (transition tokens excluded)."""

    # -- canonical corpus ---------------------------------------------------------

    @abc.abstractmethod
    def minimize(self, write: bool = True) -> list[CorpusEntry]:
        """``cmin`` over the current entry set; persist when *write*."""

    @abc.abstractmethod
    def canonical_entries(self) -> list[CorpusEntry]:
        """The minimised corpus, if one has been written."""

    @abc.abstractmethod
    def canonical_is_stale(self) -> bool:
        """Whether entries were added after the last ``minimize``.

        False when no canonical corpus exists at all; True when one
        exists but the live entry set has since changed (or its
        freshness can no longer be established — pre-upgrade corpora
        without freshness metadata are conservatively stale). Callers
        seeding from the canonical set must fall back to
        :meth:`entries` when this is True.
        """

    @abc.abstractmethod
    def describe_canonical(self) -> str:
        """Human-readable location of the canonical corpus."""

    # -- findings -----------------------------------------------------------------

    @abc.abstractmethod
    def record_finding(self, record: "FindingRecord") -> str:
        """Store *record*; returns ``"new"`` or ``"duplicate"``.

        A duplicate keeps the first-seen record and adds the incoming
        occurrence count to the bucket's — exactly, under any number of
        concurrent workers.
        """

    @abc.abstractmethod
    def finding_records(self) -> list["FindingRecord"]:
        """Every bucket, sorted by bucket ID (deterministic order)."""

    @abc.abstractmethod
    def finding_count(self) -> int:
        """Number of finding buckets."""

    @abc.abstractmethod
    def query_findings(
        self,
        target: str | None = None,
        vendor: str | None = None,
        vulnerability_class: str | None = None,
        state: str | None = None,
    ) -> list["FindingRecord"]:
        """Buckets matching every given filter, sorted by bucket ID.

        Indexed on the SQLite backend; a filtered scan on the file
        backend. ``None`` filters match everything.
        """

    # -- aggregates / lifecycle ---------------------------------------------------

    @abc.abstractmethod
    def exists(self) -> bool:
        """Whether anything has ever been written to this corpus."""

    def stats(self) -> CorpusStats:
        """Aggregate corpus statistics (one pass; see :class:`CorpusStats`)."""
        entries = self.entries()
        tokens: set[str] = set()
        frequencies: dict[str, int] = {}
        for entry in entries:
            for token in entry.covered:
                tokens.add(token)
                if ">" not in token:
                    frequencies[token] = frequencies.get(token, 0) + 1
        records = self.finding_records()
        return CorpusStats(
            entry_count=len(entries),
            packet_total=sum(entry.packet_count for entry in entries),
            canonical_count=len(self.canonical_entries()),
            canonical_stale=self.canonical_is_stale(),
            state_tokens=tuple(sorted(t for t in tokens if ">" not in t)),
            transition_tokens=tuple(sorted(t for t in tokens if ">" in t)),
            state_frequencies=frequencies,
            finding_count=len(records),
            occurrence_total=sum(record.occurrences for record in records),
        )

    def garbage_dictionary(self) -> tuple[bytes, ...]:
        """Known-crashing garbage tails across all stored reproducers."""
        tails: set[bytes] = set()
        for record in self.finding_records():
            for packet in record.decode_packets():
                if packet.garbage:
                    tails.add(bytes(packet.garbage))
        return tuple(sorted(tails))

    def initialize(self) -> None:
        """Materialise the storage so autodetection recognises it.

        The base implementation creates the corpus directory; the
        SQLite backend additionally creates its (otherwise lazily
        created) database file, so a namespace carved out for a tenant
        keeps its chosen backend even when the first writer opens it
        via layout autodetection.
        """
        self.root.mkdir(parents=True, exist_ok=True)

    def close(self) -> None:
        """Release any held resources (connections, locks)."""

    @staticmethod
    def _filter_records(
        records: Sequence["FindingRecord"],
        target: str | None,
        vendor: str | None,
        vulnerability_class: str | None,
        state: str | None,
    ) -> list["FindingRecord"]:
        """Shared in-memory filter (the non-indexed query path)."""
        return [
            record
            for record in records
            if (target is None or record.target == target)
            and (vendor is None or record.vendor == vendor)
            and (
                vulnerability_class is None
                or record.vulnerability_class == vulnerability_class
            )
            and (state is None or record.state == state)
        ]


def detect_backend_name(root) -> str:
    """Pick the backend for a corpus directory from its on-disk layout.

    A ``corpus.sqlite3`` database marks the directory SQLite-backed;
    anything else (including a directory that does not exist yet) is
    served by the migration-free file backend.
    """
    return "sqlite" if (Path(root) / SQLITE_FILE).is_file() else "file"


def open_backend(root, spec: "str | CorpusBackend | None" = None) -> CorpusBackend:
    """Open the corpus at *root* with the right backend.

    :param spec: ``None`` autodetects from the directory layout; a
        registry name ("file"/"sqlite") forces a backend; an already
        constructed backend is passed through (so one backend instance
        can serve several facades).
    :raises ValueError: on an unknown backend name.
    """
    if isinstance(spec, CorpusBackend):
        return spec
    name = spec or detect_backend_name(root)
    if name == "file":
        from repro.corpus.file_backend import FileCorpusBackend

        return FileCorpusBackend(root)
    if name == "sqlite":
        from repro.corpus.sqlite_backend import SqliteCorpusBackend

        return SqliteCorpusBackend(root)
    raise ValueError(
        f"unknown corpus backend {name!r}; choose from {', '.join(BACKEND_NAMES)}"
    )


def namespace_root(root, namespace: str) -> Path:
    """The directory serving *namespace* under the corpus root *root*.

    Namespaces are the multi-tenant unit: each one is an independent
    corpus directory (its own backend, entries, findings) living at
    ``<root>/<namespace>``. Names are validated against
    :data:`NAMESPACE_RE` — a single path-safe segment — so a namespace
    can never resolve outside *root*.

    :raises ValueError: on a name that fails validation.
    """
    if not NAMESPACE_RE.match(namespace):
        raise ValueError(
            f"invalid corpus namespace {namespace!r}: use 1-64 letters, "
            "digits, '.', '_' or '-', starting with a letter or digit"
        )
    return Path(root) / namespace


def open_namespace(
    root, namespace: str, spec: "str | None" = "sqlite"
) -> CorpusBackend:
    """Open (creating on first use) the corpus namespace *namespace*.

    New namespaces are materialised immediately — including the SQLite
    database file when *spec* selects (or defaults to) the SQLite
    backend — so later opens that autodetect from the directory layout
    (the fleet workers' write-back path) land on the same backend the
    namespace was created with. An existing namespace is opened by
    autodetection, ignoring *spec*: the on-disk layout is the truth.
    """
    target = namespace_root(root, namespace)
    if target.is_dir():
        return open_backend(target)
    backend = open_backend(target, spec)
    backend.initialize()
    return backend


__all__ = [
    "BACKEND_NAMES",
    "CorpusBackend",
    "CorpusStats",
    "NAMESPACE_RE",
    "SQLITE_FILE",
    "cmin_update",
    "detect_backend_name",
    "namespace_root",
    "open_backend",
    "open_namespace",
]
