"""The original file-layout corpus backend.

Layout of a file-backed corpus directory::

    corpus/
    ├── entries/<content-hash>.json   one JSONL-style line per entry
    ├── findings/<bucket>.json        persistent finding database
    ├── corpus.jsonl                  canonical minimised corpus (cmin)
    └── corpus.meta.json              canonical freshness marker

Entries are written write-once under their content-hash ID with an
atomic rename, which makes the store safe to share between fleet
workers (process or thread pools) without locking: two workers that
record the same sequence race to publish byte-identical files, and
whoever loses the race simply finds the entry already present. The same
property makes ingestion idempotent across repeated runs.

Finding buckets are the one read-modify-write in the layout (an
occurrence bump rewrites the bucket file), so each bump holds an
exclusive per-bucket ``flock`` for the read→increment→publish cycle —
occurrence counts are exact under concurrent workers, whether they are
threads of one process or separate processes (``flock`` excludes per
open file description, so both compose).

``corpus.meta.json`` records the entry census — ``(entry count, max
entry ID)`` — at the moment ``minimize`` wrote the canonical corpus;
:meth:`FileCorpusBackend.canonical_is_stale` compares it against the
live census so consumers can tell a fresh canonical set from one that
predates newer entries.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import threading
from pathlib import Path

from repro.corpus.backend import CorpusBackend, _atomic_write, cmin_update
from repro.corpus.entry import CorpusEntry, dict_to_entry, entry_to_dict
from repro.corpus.findings import (
    FindingRecord,
    dict_to_record,
    record_to_dict,
)

try:  # pragma: no cover - fcntl is always present on the target platform
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

ENTRIES_DIR = "entries"
FINDINGS_DIR = "findings"
CANONICAL_FILE = "corpus.jsonl"
CANONICAL_META_FILE = "corpus.meta.json"

#: Process-local fallback locks (per bucket path) when flock is missing.
_LOCAL_LOCKS: dict[str, threading.Lock] = {}
_LOCAL_LOCKS_GUARD = threading.Lock()


@contextlib.contextmanager
def _exclusive_lock(lock_path: Path):
    """Hold an exclusive advisory lock on *lock_path*.

    ``flock`` locks the open file description, so two threads of one
    process (each with its own fd) exclude each other just like two
    processes do. Without ``fcntl`` the fallback is a process-local
    mutex — cross-process exclusion then matches the pre-lock
    behaviour, which only POSIX platforms ever relied on.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        with _LOCAL_LOCKS_GUARD:
            lock = _LOCAL_LOCKS.setdefault(str(lock_path), threading.Lock())
        with lock:
            yield
        return
    fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)


def entry_line(entry: CorpusEntry) -> str:
    """The canonical one-line JSON rendering of *entry*.

    This exact string is what both backends persist and export, which
    is what makes migration byte-equal by construction.
    """
    return json.dumps(entry_to_dict(entry), sort_keys=True) + "\n"


class FileCorpusBackend(CorpusBackend):
    """Directory-of-JSON-files backend (the migration-free default)."""

    name = "file"

    # -- paths --------------------------------------------------------------------

    @property
    def entries_dir(self) -> Path:
        return self.root / ENTRIES_DIR

    @property
    def findings_dir(self) -> Path:
        return self.root / FINDINGS_DIR

    @property
    def canonical_path(self) -> Path:
        return self.root / CANONICAL_FILE

    @property
    def canonical_meta_path(self) -> Path:
        return self.root / CANONICAL_META_FILE

    def exists(self) -> bool:
        return (
            self.entries_dir.is_dir()
            or self.findings_dir.is_dir()
            or self.canonical_path.is_file()
        )

    # -- entries ------------------------------------------------------------------

    def add_entry(self, entry: CorpusEntry) -> bool:
        """Content-addressed atomic publish; concurrent adders converge."""
        self.entries_dir.mkdir(parents=True, exist_ok=True)
        path = self.entries_dir / f"{entry.entry_id}.json"
        if path.exists():
            return False
        _atomic_write(path, entry_line(entry))
        return True

    def entries(self) -> list[CorpusEntry]:
        if not self.entries_dir.is_dir():
            return []
        return [
            dict_to_entry(json.loads(path.read_text(encoding="utf-8")))
            for path in sorted(self.entries_dir.glob("*.json"))
        ]

    def entry_count(self) -> int:
        if not self.entries_dir.is_dir():
            return 0
        return sum(1 for _ in self.entries_dir.glob("*.json"))

    def coverage(self) -> frozenset[str]:
        covered: set[str] = set()
        for entry in self.entries():
            covered.update(entry.covered)
        return frozenset(covered)

    def state_frequencies(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for entry in self.entries():
            for token in entry.covered:
                if ">" not in token:
                    counts[token] = counts.get(token, 0) + 1
        return counts

    # -- canonical corpus ---------------------------------------------------------

    def _census(self, entries: list[CorpusEntry]) -> tuple[int, str]:
        """Freshness fingerprint of an entry set: (count, max ID)."""
        max_id = max((entry.entry_id for entry in entries), default="")
        return (len(entries), max_id)

    def minimize(self, write: bool = True) -> list[CorpusEntry]:
        """Full-scan ``cmin``: cheapest witness per token, deduplicated."""
        entries = self.entries()
        winners: dict[str, tuple[int, str]] = {}
        by_id = cmin_update(winners, entries)
        canonical = sorted(
            {
                by_id[entry_id]
                for _, entry_id in winners.values()
            },
            key=lambda entry: entry.entry_id,
        )
        if write:
            self.root.mkdir(parents=True, exist_ok=True)
            _atomic_write(
                self.canonical_path,
                "".join(entry_line(entry) for entry in canonical),
            )
            count, max_id = self._census(entries)
            _atomic_write(
                self.canonical_meta_path,
                json.dumps(
                    {"entry_count": count, "max_entry_id": max_id},
                    sort_keys=True,
                )
                + "\n",
            )
        return canonical

    def canonical_entries(self) -> list[CorpusEntry]:
        if not self.canonical_path.is_file():
            return []
        return [
            dict_to_entry(json.loads(line))
            for line in self.canonical_path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]

    def canonical_is_stale(self) -> bool:
        if not self.canonical_path.is_file():
            return False
        if not self.canonical_meta_path.is_file():
            # Pre-upgrade corpus: freshness cannot be established.
            return True
        try:
            meta = json.loads(
                self.canonical_meta_path.read_text(encoding="utf-8")
            )
            recorded = (int(meta["entry_count"]), str(meta["max_entry_id"]))
        except (ValueError, KeyError, TypeError):
            return True
        return recorded != self._census(self.entries())

    def describe_canonical(self) -> str:
        return str(self.canonical_path)

    # -- findings -----------------------------------------------------------------

    def _bucket_path(self, record: FindingRecord) -> Path:
        return self.findings_dir / f"{record.bucket_id}.json"

    def record_finding(self, record: FindingRecord) -> str:
        """Exact-count bucket upsert under a per-bucket exclusive lock.

        The lock serialises the whole read→increment→publish cycle, so
        concurrent workers bumping one bucket never drop an increment;
        distinct buckets proceed in parallel (one lock file each).
        """
        self.findings_dir.mkdir(parents=True, exist_ok=True)
        path = self._bucket_path(record)
        with _exclusive_lock(path.with_suffix(".lock")):
            if path.exists():
                seen = dict_to_record(
                    json.loads(path.read_text(encoding="utf-8"))
                )
                updated = dataclasses.replace(
                    seen, occurrences=seen.occurrences + record.occurrences
                )
                _atomic_write(
                    path,
                    json.dumps(record_to_dict(updated), sort_keys=True) + "\n",
                )
                return "duplicate"
            _atomic_write(
                path, json.dumps(record_to_dict(record), sort_keys=True) + "\n"
            )
            return "new"

    def finding_records(self) -> list[FindingRecord]:
        if not self.findings_dir.is_dir():
            return []
        return [
            dict_to_record(json.loads(path.read_text(encoding="utf-8")))
            for path in sorted(self.findings_dir.glob("*.json"))
        ]

    def finding_count(self) -> int:
        if not self.findings_dir.is_dir():
            return 0
        return sum(1 for _ in self.findings_dir.glob("*.json"))

    def query_findings(
        self,
        target: str | None = None,
        vendor: str | None = None,
        vulnerability_class: str | None = None,
        state: str | None = None,
    ) -> list[FindingRecord]:
        return self._filter_records(
            self.finding_records(), target, vendor, vulnerability_class, state
        )


__all__ = [
    "CANONICAL_FILE",
    "CANONICAL_META_FILE",
    "ENTRIES_DIR",
    "FINDINGS_DIR",
    "FileCorpusBackend",
    "entry_line",
]
