"""SQLite (WAL) corpus backend: one database, indexed, transactional.

Everything the file layout spreads over thousands of JSON files lives
in one ``corpus.sqlite3`` database in the corpus directory:

* ``entries`` — one row per content-addressed entry. The ``data``
  column stores the exact canonical JSON line the file backend would
  have written, so migration and export are byte-equal by construction;
  the indexed metadata columns (target, device, strategy, packet count)
  make the hot queries index scans instead of full-directory reads.
* ``coverage`` — one row per (entry, coverage token), indexed by token:
  per-state frequencies and coverage unions are ``GROUP BY`` queries.
* ``findings`` — one row per crash bucket, indexed by
  (target, vendor, class, state). An occurrence bump is a transactional
  ``UPDATE … SET occurrences = occurrences + ?`` — O(1), exact under
  any number of concurrent writers, no read-modify-write to lose.
* ``canonical`` + ``cmin_winners`` + ``meta`` — the minimised corpus,
  the per-token cheapest-witness map and the last-minimised cursor.
  ``minimize`` only scans entries inserted since the previous run and
  folds them into the stored winner map (the fold is associative, see
  :func:`repro.corpus.backend.cmin_update`), so repeated cmin on a
  growing corpus is O(new entries), not O(corpus).

Concurrency model: WAL journal with a generous busy timeout, one
connection per (process, thread) via thread-local storage — fleet
workers of either pool flavour write concurrently; readers never block
writers and vice versa.
"""

from __future__ import annotations

import json
import logging
import sqlite3
import threading
import time
from pathlib import Path

from repro.corpus.backend import (
    SQLITE_FILE,
    CorpusBackend,
    CorpusStats,
    cmin_update,
)
from repro.corpus.entry import CorpusEntry, dict_to_entry
from repro.corpus.findings import FindingRecord, dict_to_record, record_to_dict

_log = logging.getLogger(__name__)

#: Schema version stamped into ``meta`` on creation.
SCHEMA_VERSION = 1

#: How long a writer waits on a locked database before giving up (ms).
BUSY_TIMEOUT_MS = 30_000

#: Total tries a write transaction gets on a locked database.
WRITE_RETRY_ATTEMPTS = 6

#: First-retry sleep (doubles per retry) and its ceiling, in seconds.
WRITE_RETRY_BASE_SECONDS = 0.02
WRITE_RETRY_CAP_SECONDS = 0.5


def _is_lock_error(error: sqlite3.OperationalError) -> bool:
    message = str(error).lower()
    return "locked" in message or "busy" in message


def _write_with_retry(operation, describe: str):
    """Run a write transaction, retrying lock contention with backoff.

    The busy timeout already absorbs waits *within* a statement, but a
    writer can still surface ``database is locked`` when it loses the
    upgrade race for the write lock (or the timeout elapses under
    pathological contention). Shard corpus write-back must survive
    that transient instead of failing a whole shard, so locked/busy
    errors are retried with capped exponential backoff; any other
    operational error propagates untouched.
    """
    for attempt in range(1, WRITE_RETRY_ATTEMPTS + 1):
        try:
            return operation()
        except sqlite3.OperationalError as error:
            if not _is_lock_error(error) or attempt == WRITE_RETRY_ATTEMPTS:
                raise
            delay = min(
                WRITE_RETRY_CAP_SECONDS,
                WRITE_RETRY_BASE_SECONDS * (2 ** (attempt - 1)),
            )
            _log.debug(
                "%s hit a locked database (attempt %d/%d); retrying in %.3fs",
                describe,
                attempt,
                WRITE_RETRY_ATTEMPTS,
                delay,
            )
            time.sleep(delay)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS entries (
    seq          INTEGER PRIMARY KEY AUTOINCREMENT,
    id           TEXT NOT NULL UNIQUE,
    target       TEXT NOT NULL,
    device_id    TEXT NOT NULL,
    strategy     TEXT NOT NULL,
    seed         TEXT NOT NULL,
    armed        INTEGER NOT NULL,
    packet_count INTEGER NOT NULL,
    data         TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_entries_id ON entries(id);
CREATE INDEX IF NOT EXISTS idx_entries_target ON entries(target);
CREATE INDEX IF NOT EXISTS idx_entries_device ON entries(device_id);
CREATE TABLE IF NOT EXISTS coverage (
    entry_seq     INTEGER NOT NULL REFERENCES entries(seq),
    token         TEXT NOT NULL,
    is_transition INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_coverage_token ON coverage(token, is_transition);
CREATE INDEX IF NOT EXISTS idx_coverage_entry ON coverage(entry_seq);
CREATE TABLE IF NOT EXISTS findings (
    bucket_id   TEXT PRIMARY KEY,
    target      TEXT NOT NULL,
    vendor      TEXT NOT NULL,
    class       TEXT NOT NULL,
    state       TEXT NOT NULL,
    occurrences INTEGER NOT NULL,
    data        TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_findings_query
    ON findings(target, vendor, class, state);
CREATE TABLE IF NOT EXISTS canonical (
    entry_id TEXT PRIMARY KEY
);
CREATE TABLE IF NOT EXISTS cmin_winners (
    token        TEXT PRIMARY KEY,
    packet_count INTEGER NOT NULL,
    entry_id     TEXT NOT NULL
);
"""


class SqliteCorpusBackend(CorpusBackend):
    """WAL-mode SQLite backend for heavy parallel ingestion."""

    name = "sqlite"

    def __init__(self, root) -> None:
        super().__init__(root)
        self._local = threading.local()

    # -- connection management ----------------------------------------------------

    @property
    def database_path(self) -> Path:
        return self.root / SQLITE_FILE

    def _connect(self, create: bool) -> sqlite3.Connection | None:
        """Thread-local connection; ``None`` for reads of a cold corpus."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            return connection
        if not self.database_path.is_file():
            if not create:
                return None
            self.root.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(
            self.database_path, timeout=BUSY_TIMEOUT_MS / 1000
        )
        connection.execute(f"PRAGMA busy_timeout = {BUSY_TIMEOUT_MS}")
        connection.execute("PRAGMA journal_mode = WAL")
        connection.execute("PRAGMA synchronous = NORMAL")
        connection.executescript(_SCHEMA)
        connection.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
            ("schema_version", str(SCHEMA_VERSION)),
        )
        connection.commit()
        self._local.connection = connection
        return connection

    def initialize(self) -> None:
        """Create the database (and schema) eagerly.

        The connection path creates lazily, on first write — fine for a
        solo corpus, wrong for a tenant namespace whose later writers
        autodetect the backend from the directory layout: without the
        database file they would land on the file backend. Namespace
        creation calls this to pin the layout up front.
        """
        self._connect(create=True)

    def close(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    def _meta(self, connection: sqlite3.Connection, key: str) -> str | None:
        row = connection.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row else None

    # -- entries ------------------------------------------------------------------

    def add_entry(self, entry: CorpusEntry) -> bool:
        return _write_with_retry(
            lambda: self._add_entry_once(entry), "add_entry"
        )

    def _add_entry_once(self, entry: CorpusEntry) -> bool:
        from repro.corpus.file_backend import entry_line

        connection = self._connect(create=True)
        with connection:
            cursor = connection.execute(
                "INSERT OR IGNORE INTO entries"
                " (id, target, device_id, strategy, seed, armed,"
                "  packet_count, data)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    entry.entry_id,
                    entry.target,
                    entry.device_id,
                    entry.strategy,
                    # TEXT: fleet campaign seeds are SHA-256-derived and
                    # overflow SQLite's 64-bit INTEGER.
                    str(entry.seed),
                    int(entry.armed),
                    entry.packet_count,
                    entry_line(entry),
                ),
            )
            if cursor.rowcount == 0:
                return False
            connection.executemany(
                "INSERT INTO coverage (entry_seq, token, is_transition)"
                " VALUES (?, ?, ?)",
                [
                    (cursor.lastrowid, token, int(">" in token))
                    for token in entry.covered
                ],
            )
        return True

    def entries(self) -> list[CorpusEntry]:
        connection = self._connect(create=False)
        if connection is None:
            return []
        return [
            dict_to_entry(json.loads(data))
            for (data,) in connection.execute(
                "SELECT data FROM entries ORDER BY id"
            )
        ]

    def entry_count(self) -> int:
        connection = self._connect(create=False)
        if connection is None:
            return 0
        return connection.execute("SELECT COUNT(*) FROM entries").fetchone()[0]

    def coverage(self) -> frozenset[str]:
        connection = self._connect(create=False)
        if connection is None:
            return frozenset()
        return frozenset(
            token
            for (token,) in connection.execute(
                "SELECT DISTINCT token FROM coverage"
            )
        )

    def state_frequencies(self) -> dict[str, int]:
        connection = self._connect(create=False)
        if connection is None:
            return {}
        return dict(
            connection.execute(
                "SELECT token, COUNT(*) FROM coverage"
                " WHERE is_transition = 0 GROUP BY token"
            )
        )

    # -- canonical corpus ---------------------------------------------------------

    def _census(self, connection: sqlite3.Connection) -> tuple[int, str]:
        count, max_id = connection.execute(
            "SELECT COUNT(*), COALESCE(MAX(id), '') FROM entries"
        ).fetchone()
        return (int(count), str(max_id))

    def _stored_winners(
        self, connection: sqlite3.Connection
    ) -> dict[str, tuple[int, str]]:
        return {
            token: (packet_count, entry_id)
            for token, packet_count, entry_id in connection.execute(
                "SELECT token, packet_count, entry_id FROM cmin_winners"
            )
        }

    def minimize(self, write: bool = True) -> list[CorpusEntry]:
        """Incremental ``cmin``: fold only entries newer than the last run.

        The stored winner map is the fold state; merging it with the
        entries inserted since ``cmin_last_seq`` yields exactly the
        full-scan answer (associativity — entries are never deleted).
        ``write=False`` computes the same canonical set without
        persisting the fold, so it re-scans from the stored cursor but
        leaves the cursor untouched.
        """
        # Retried as a unit: the fold is associative and the entries
        # table is append-only, so a rerun after a lock error computes
        # the identical winner map.
        return _write_with_retry(
            lambda: self._minimize_once(write), "minimize"
        )

    def _minimize_once(self, write: bool) -> list[CorpusEntry]:
        connection = self._connect(create=write)
        if connection is None:
            return []
        with connection:
            last_seq = int(self._meta(connection, "cmin_last_seq") or 0)
            winners = self._stored_winners(connection)
            new_rows = connection.execute(
                "SELECT seq, data FROM entries WHERE seq > ? ORDER BY seq",
                (last_seq,),
            ).fetchall()
            cmin_update(
                winners,
                (dict_to_entry(json.loads(data)) for _, data in new_rows),
            )
            canonical_ids = sorted({entry_id for _, entry_id in winners.values()})
            if write:
                connection.executemany(
                    "INSERT OR REPLACE INTO cmin_winners"
                    " (token, packet_count, entry_id) VALUES (?, ?, ?)",
                    [
                        (token, packet_count, entry_id)
                        for token, (packet_count, entry_id) in winners.items()
                    ],
                )
                connection.execute("DELETE FROM canonical")
                connection.executemany(
                    "INSERT INTO canonical (entry_id) VALUES (?)",
                    [(entry_id,) for entry_id in canonical_ids],
                )
                max_seq = max((seq for seq, _ in new_rows), default=last_seq)
                count, max_id = self._census(connection)
                connection.executemany(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    [
                        ("cmin_last_seq", str(max_seq)),
                        ("cmin_entry_count", str(count)),
                        ("cmin_max_entry_id", max_id),
                    ],
                )
            if not canonical_ids:
                return []
            placeholders = ",".join("?" * len(canonical_ids))
            return [
                dict_to_entry(json.loads(data))
                for (data,) in connection.execute(
                    f"SELECT data FROM entries WHERE id IN ({placeholders})"
                    " ORDER BY id",
                    canonical_ids,
                )
            ]

    def canonical_entries(self) -> list[CorpusEntry]:
        connection = self._connect(create=False)
        if connection is None:
            return []
        return [
            dict_to_entry(json.loads(data))
            for (data,) in connection.execute(
                "SELECT e.data FROM entries e"
                " JOIN canonical c ON c.entry_id = e.id ORDER BY e.id"
            )
        ]

    def canonical_is_stale(self) -> bool:
        connection = self._connect(create=False)
        if connection is None:
            return False
        has_canonical = connection.execute(
            "SELECT EXISTS(SELECT 1 FROM canonical)"
        ).fetchone()[0]
        if not has_canonical:
            return False
        count = self._meta(connection, "cmin_entry_count")
        max_id = self._meta(connection, "cmin_max_entry_id")
        if count is None or max_id is None:
            # Migrated canonical without freshness metadata.
            return True
        return (int(count), max_id) != self._census(connection)

    def describe_canonical(self) -> str:
        return f"{self.database_path} (canonical table)"

    # -- findings -----------------------------------------------------------------

    def record_finding(self, record: FindingRecord) -> str:
        """Transactional upsert: insert the bucket or bump its count.

        Both statements run inside one transaction, so the
        count-or-create decision and the increment are atomic — exact
        occurrence totals under arbitrarily parallel ingestion.
        """
        return _write_with_retry(
            lambda: self._record_finding_once(record), "record_finding"
        )

    def _record_finding_once(self, record: FindingRecord) -> str:
        connection = self._connect(create=True)
        with connection:
            cursor = connection.execute(
                "INSERT OR IGNORE INTO findings"
                " (bucket_id, target, vendor, class, state, occurrences, data)"
                " VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    record.bucket_id,
                    record.target,
                    record.vendor,
                    record.vulnerability_class,
                    record.state,
                    record.occurrences,
                    json.dumps(record_to_dict(record), sort_keys=True),
                ),
            )
            if cursor.rowcount:
                return "new"
            connection.execute(
                "UPDATE findings SET occurrences = occurrences + ?"
                " WHERE bucket_id = ?",
                (record.occurrences, record.bucket_id),
            )
        return "duplicate"

    def _records_from_rows(self, rows) -> list[FindingRecord]:
        records = []
        for data, occurrences in rows:
            # The data column keeps the first-seen record; the
            # occurrences column is the transactional truth.
            payload = json.loads(data)
            payload["occurrences"] = occurrences
            records.append(dict_to_record(payload))
        return records

    def finding_records(self) -> list[FindingRecord]:
        connection = self._connect(create=False)
        if connection is None:
            return []
        return self._records_from_rows(
            connection.execute(
                "SELECT data, occurrences FROM findings ORDER BY bucket_id"
            )
        )

    def finding_count(self) -> int:
        connection = self._connect(create=False)
        if connection is None:
            return 0
        return connection.execute("SELECT COUNT(*) FROM findings").fetchone()[0]

    def query_findings(
        self,
        target: str | None = None,
        vendor: str | None = None,
        vulnerability_class: str | None = None,
        state: str | None = None,
    ) -> list[FindingRecord]:
        connection = self._connect(create=False)
        if connection is None:
            return []
        clauses, params = [], []
        for column, value in (
            ("target", target),
            ("vendor", vendor),
            ("class", vulnerability_class),
            ("state", state),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return self._records_from_rows(
            connection.execute(
                "SELECT data, occurrences FROM findings"
                f"{where} ORDER BY bucket_id",
                params,
            )
        )

    # -- aggregates / lifecycle ---------------------------------------------------

    def exists(self) -> bool:
        return self.database_path.is_file()

    def stats(self) -> CorpusStats:
        """All aggregates straight from the indexes — no entry parsing."""
        connection = self._connect(create=False)
        if connection is None:
            return super().stats()
        entry_count, packet_total = connection.execute(
            "SELECT COUNT(*), COALESCE(SUM(packet_count), 0) FROM entries"
        ).fetchone()
        canonical_count = connection.execute(
            "SELECT COUNT(*) FROM canonical"
        ).fetchone()[0]
        tokens = connection.execute(
            "SELECT DISTINCT token, is_transition FROM coverage"
        ).fetchall()
        finding_count, occurrence_total = connection.execute(
            "SELECT COUNT(*), COALESCE(SUM(occurrences), 0) FROM findings"
        ).fetchone()
        return CorpusStats(
            entry_count=entry_count,
            packet_total=packet_total,
            canonical_count=canonical_count,
            canonical_stale=self.canonical_is_stale(),
            state_tokens=tuple(
                sorted(token for token, is_transition in tokens if not is_transition)
            ),
            transition_tokens=tuple(
                sorted(token for token, is_transition in tokens if is_transition)
            ),
            state_frequencies=self.state_frequencies(),
            finding_count=finding_count,
            occurrence_total=occurrence_total,
        )


__all__ = [
    "BUSY_TIMEOUT_MS",
    "SCHEMA_VERSION",
    "WRITE_RETRY_ATTEMPTS",
    "SqliteCorpusBackend",
]
